//! The paper's core contrast, side by side: one Android workload vs one
//! SPEC CPU2006 baseline.
//!
//! ```text
//! cargo run --release --example spec_compare [agave-label] [spec-label]
//! ```

use agave_core::{all_workloads, run_workload, SuiteConfig, Workload};
use agave_trace::RunSummary;

fn pick(label: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.label() == label)
        .unwrap_or_else(|| panic!("unknown workload {label:?}"))
}

fn profile(s: &RunSummary) -> Vec<String> {
    let mut lines = Vec::new();
    lines.push(format!("benchmark          {}", s.benchmark));
    lines.push(format!("code regions       {}", s.code_region_count()));
    lines.push(format!("data regions       {}", s.data_region_count()));
    lines.push(format!("processes          {}", s.spawned_processes));
    lines.push(format!("threads            {}", s.spawned_threads));
    let mut top: Vec<(&String, &u64)> = s.instr_by_region.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    for (i, (name, count)) in top.into_iter().take(4).enumerate() {
        lines.push(format!(
            "instr region #{}    {name} ({:.1}%)",
            i + 1,
            *count as f64 * 100.0 / s.total_instr.max(1) as f64
        ));
    }
    let mut procs: Vec<(&String, &u64)> = s.instr_by_process.iter().collect();
    procs.sort_by(|a, b| b.1.cmp(a.1));
    for (i, (name, count)) in procs.into_iter().take(3).enumerate() {
        lines.push(format!(
            "process #{}         {name} ({:.1}%)",
            i + 1,
            *count as f64 * 100.0 / s.total_instr.max(1) as f64
        ));
    }
    lines
}

fn main() {
    let mut args = std::env::args().skip(1);
    let agave = pick(&args.next().unwrap_or_else(|| "frozenbubble.main".into()));
    let spec = pick(&args.next().unwrap_or_else(|| "429.mcf".into()));

    let config = SuiteConfig::quick();
    println!("running {agave} and {spec}…\n");
    let a = run_workload(agave, &config);
    let b = run_workload(spec, &config);

    let left = profile(&a);
    let right = profile(&b);
    let width = left.iter().map(String::len).max().unwrap_or(0).max(44);
    println!("{:width$}   | SPEC", "ANDROID");
    println!("{}", "-".repeat(width * 2 + 5));
    for i in 0..left.len().max(right.len()) {
        let l = left.get(i).map(String::as_str).unwrap_or("");
        let r = right.get(i).map(String::as_str).unwrap_or("");
        println!("{l:width$}   | {r}");
    }
    println!(
        "\nThe Android side spreads references over dozens of regions and \
         processes;\nthe SPEC side is the app binary, the kernel, and ata_sff/0 \
         — the paper's Figures 1–4 in miniature."
    );
}
