//! The full paper reproduction: run all 19 Agave workloads and 6 SPEC
//! baselines, then regenerate Figures 1–4, Table I and the claim
//! checklist.
//!
//! ```text
//! cargo run --release --example suite_report                 # reference sizing
//! cargo run --release --example suite_report -- --quick      # fast pass
//! cargo run --release --example suite_report -- --markdown   # EXPERIMENTS.md body
//! cargo run --release --example suite_report -- --json out.json
//! ```

use agave_core::{experiments_markdown, Experiments, SuiteConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (config, note) = if quick {
        (
            SuiteConfig::quick(),
            "quick (1.2 s simulated per app, 1/8 panel)",
        )
    } else {
        (
            SuiteConfig::reference(),
            "reference (4 s simulated per app, 1/4 panel)",
        )
    };

    eprintln!("running 25 workloads ({note})…");
    let started = std::time::Instant::now();
    let experiments = Experiments::from_config(&config);
    eprintln!("done in {:?}", started.elapsed());

    if let Some(path) = json_path {
        std::fs::write(&path, experiments.results().to_json()).expect("write json");
        eprintln!("wrote {path}");
    }

    if markdown {
        println!("{}", experiments_markdown(&experiments, note));
        return;
    }

    println!("{}", experiments.figure1().render());
    println!("{}", experiments.figure2().render());
    println!("{}", experiments.figure3().render());
    println!("{}", experiments.figure4().render());
    println!("{}", experiments.table1_extended(10).render());

    println!("claim checklist:");
    let claims = experiments.check_claims();
    let passed = claims.iter().filter(|c| c.pass).count();
    for claim in &claims {
        println!(
            "  [{}] {:<55} paper: {:<28} measured: {}",
            if claim.pass { "ok" } else { "!!" },
            claim.description,
            claim.paper,
            claim.measured
        );
    }
    println!(
        "\n{passed}/{} claims within the accepted band",
        claims.len()
    );
}
