//! Quickstart: run one Agave workload and print where its memory
//! references went.
//!
//! ```text
//! cargo run --release --example quickstart [workload-label]
//! ```

use agave_core::{all_workloads, run_workload, SuiteConfig, Workload};

fn main() {
    let label = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "frozenbubble.main".to_owned());
    let workload: Workload = all_workloads()
        .into_iter()
        .find(|w| w.label() == label)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {label:?}; available:");
            for w in all_workloads() {
                eprintln!("  {w}");
            }
            std::process::exit(2);
        });

    println!("running {workload} (quick configuration)…");
    let summary = run_workload(workload, &SuiteConfig::quick());

    println!(
        "\n{}: {} instruction + {} data references",
        summary.benchmark, summary.total_instr, summary.total_data
    );
    println!(
        "processes: {} spawned / {} active    threads: {} spawned / {} active",
        summary.spawned_processes,
        summary.active_processes,
        summary.spawned_threads,
        summary.active_threads
    );
    println!(
        "regions touched: {} code, {} data",
        summary.code_region_count(),
        summary.data_region_count()
    );

    let sections = [
        (
            "instruction references by region",
            &summary.instr_by_region,
            summary.total_instr,
        ),
        (
            "data references by region",
            &summary.data_by_region,
            summary.total_data,
        ),
        (
            "instruction references by process",
            &summary.instr_by_process,
            summary.total_instr,
        ),
    ];
    for (title, map, total) in sections {
        println!("\ntop {title}:");
        let mut rows: Vec<(&String, &u64)> = map.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1));
        for (name, count) in rows.into_iter().take(8) {
            println!(
                "  {:>5.1}%  {name}",
                *count as f64 * 100.0 / total.max(1) as f64
            );
        }
    }

    println!("\ntop threads (all references):");
    let total = summary.total_instr + summary.total_data;
    let mut rows: Vec<(&String, &u64)> = summary.refs_by_thread.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1));
    for (name, count) in rows.into_iter().take(8) {
        println!(
            "  {:>5.1}%  {name}",
            *count as f64 * 100.0 / total.max(1) as f64
        );
    }
}
