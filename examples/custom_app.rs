//! Building your own workload on the framework API.
//!
//! This example boots the simulated Android world, writes a tiny "app" —
//! real mini-DEX bytecode for its logic, a window from the WindowManager,
//! Skia-model drawing — runs it for two simulated seconds, and prints the
//! characterization a paper-style study would extract. It is the template
//! for extending the suite with a 20th workload.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use agave_android::{
    Actor, Android, AppEnv, Bitmap, Canvas, Ctx, DisplayConfig, Message, PixelFormat, Rect,
    SurfaceHandle, TICKS_PER_MS,
};
use agave_dalvik::{spawn_vm_service_threads, Value, Vm, VmRef};
use agave_dex::{BinOp, Cond, DexFile, MethodBuilder, MethodId, Reg};

/// The app's "Java" side: count collatz steps for a seed — real bytecode,
/// really interpreted (and JIT-compiled once hot).
fn build_dex() -> (DexFile, MethodId) {
    let mut dex = DexFile::new();
    let class = dex.add_class("Ldemo/Collatz;", 0, 0);
    let mut m = MethodBuilder::new(8, 1);
    let n = Reg(7);
    let (x, steps, one, two, three) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    m.mov(x, n);
    m.konst(steps, 0)
        .konst(one, 1)
        .konst(two, 2)
        .konst(three, 3);
    let head = m.new_label();
    let odd = m.new_label();
    let cont = m.new_label();
    let done = m.new_label();
    m.bind(head);
    m.if_cmp(Cond::Le, x, one, done);
    m.binop(BinOp::Rem, Reg(5), x, two);
    m.if_z(Cond::Ne, Reg(5), odd);
    m.binop(BinOp::Div, x, x, two);
    m.goto(cont);
    m.bind(odd);
    m.binop(BinOp::Mul, x, x, three);
    m.binop(BinOp::Add, x, x, one);
    m.bind(cont);
    m.binop(BinOp::Add, steps, steps, one);
    m.goto(head);
    m.bind(done);
    m.ret(Some(steps));
    let collatz = dex.add_method(class, "steps", m);
    (dex, collatz)
}

struct DemoApp {
    env: AppEnv,
    vm: Option<VmRef>,
    collatz: MethodId,
    window: Option<SurfaceHandle>,
    frame: u64,
}

impl Actor for DemoApp {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        // Load the dex and attach the standard VM service threads.
        let (dex, _) = build_dex();
        let vm = Vm::new(cx, dex, "demo.apk@classes.dex").into_shared();
        let pid = cx.pid();
        spawn_vm_service_threads(cx.kernel(), pid, &vm);
        self.vm = Some(vm);

        // Announce ourselves and get a window from the WindowManager.
        self.env.start_activity(cx, "demo/.Main");
        self.window = Some(self.env.create_fullscreen_window(cx, "demo"));
        cx.post_self(Message::new(1));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        self.frame += 1;
        // Java-side logic.
        let vm = self.vm.as_ref().expect("vm").clone();
        let steps = vm
            .borrow_mut()
            .invoke(cx, self.collatz, &[Value::Int(27 + self.frame as i64)])
            .expect("collatz returns")
            .as_int();

        // Draw a bar whose height is the step count.
        let win = self.window.as_ref().expect("window").clone();
        let mut canvas = Canvas::new(Bitmap::new(win.width(), win.height(), PixelFormat::Rgb565));
        canvas.clear(cx, 0x0010);
        let h = canvas.bitmap().height();
        let bar = (steps as u32).min(h - 1).max(1);
        canvas.fill_rect(cx, Rect::new(8, h - bar, 16, bar), 0x07e0);
        canvas.draw_text(cx, "collatz", 2, 2, 0xffff);
        win.post_buffer(cx, &canvas.into_bitmap());

        // A dash of framework overhead, then the next frame at 10 fps.
        self.env.framework_tail(cx, 4_000);
        cx.post_self_after(100 * TICKS_PER_MS, Message::new(1));
    }
}

fn main() {
    // Boot the world at 1/8 panel for speed.
    let mut android = Android::boot(DisplayConfig::wvga().scaled(8));
    let env = android.launch_app("org.example.demo", "/data/app/demo.apk");
    let (_, collatz) = build_dex();
    let pid = env.pid;
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(DemoApp {
            env,
            vm: None,
            collatz,
            window: None,
            frame: 0,
        }),
    );

    android.run_ms(2_000);
    let summary = android.kernel.tracer().summarize("custom.demo");

    println!(
        "custom app ran: {} frames composed, {} total references",
        android.frames_composed(),
        summary.total_instr + summary.total_data
    );
    println!("top instruction regions:");
    let mut rows: Vec<(&String, &u64)> = summary.instr_by_region.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1));
    for (name, count) in rows.into_iter().take(8) {
        println!(
            "  {:>5.1}%  {name}",
            *count as f64 * 100.0 / summary.total_instr.max(1) as f64
        );
    }
}
