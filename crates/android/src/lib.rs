//! The Android framework model: boot, zygote, system services, and the
//! application environment the 19 Agave workloads run on.
//!
//! [`Android::boot`] constructs the full Gingerbread process population —
//! kernel threads, `init`, `servicemanager`, `zygote` (with framework
//! class preloading), `system_server` (hosting SurfaceFlinger, the
//! Activity/Window/Package managers and a binder pool), `mediaserver`
//! (MediaPlayerService + AudioFlinger), the launcher, systemui, and the
//! usual zygote children — roughly the 20–34 processes the paper observes
//! behind every benchmark.
//!
//! [`Android::launch_app`] forks the benchmark process from zygote (running
//! `dexopt` on the way, as a first install would), and hands back an
//! [`AppEnv`] with which workload code opens windows, resolves services,
//! plays media and runs Dalvik bytecode.
//!
//! # Example
//!
//! ```
//! use agave_android::{Android, DisplayConfig};
//!
//! let mut android = Android::boot(DisplayConfig::wvga().scaled(8));
//! let app = android.launch_app("demo.app", "/data/app/demo.apk");
//! assert!(android.kernel.process_count() >= 20);
//! # let _ = app;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod boot;
mod fwdex;
mod input;
mod libs;
mod services;

pub use app::AppEnv;
pub use boot::Android;
pub use fwdex::{add_framework_methods, FrameworkMethods};
pub use input::{InputRouter, TouchAction, TouchEvent, MSG_INPUT_EVENT};
pub use libs::{LibMix, LibSet};
pub use services::{
    ActivityManagerService, PackageManagerService, WindowManagerService, AMS_BIND_SERVICE,
    AMS_START_ACTIVITY, PMS_GET_PACKAGE_INFO, PMS_QUERY_ACTIVITIES, WMS_CREATE_SURFACE,
    WMS_RELAYOUT,
};

// Re-exports forming the one-stop app-building surface.
pub use agave_binder::{BinderHost, BinderProxy, BinderService, Parcel, ServiceDirectory};
pub use agave_gfx::{
    Bitmap, Canvas, DisplayConfig, PixelFormat, Rect, SurfaceHandle, SurfaceStore, VSYNC_PERIOD,
};
pub use agave_kernel::{Actor, Ctx, Kernel, Message, NameId, Pid, RefKind, Tid, TICKS_PER_MS};
pub use agave_media::{AudioBus, MediaPlayer, MediaSession, SessionOutput};
