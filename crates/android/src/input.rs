//! The input pipeline: `InputReader` → `InputDispatcher` → focused app.
//!
//! Gingerbread's input stack polls the kernel event devices on the
//! `InputReader` thread, hands events to `InputDispatcher`, which delivers
//! them to the focused window's process. The model drives a deterministic
//! synthetic "user" (a gesture every ~800 ms) through the same two
//! `system_server` threads, so interactive workloads receive real touch
//! traffic and input-side references land where the paper saw them.

use agave_kernel::{Actor, Ctx, Message, RefKind, Tid, TICKS_PER_MS};
use std::cell::RefCell;
use std::rc::Rc;

/// Message code of a touch event delivered to the focused thread.
/// `arg1` = `(x << 16) | y`, `arg2` = [`TouchAction`] discriminant.
pub const MSG_INPUT_EVENT: u32 = 0x696e;

/// What the finger did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchAction {
    /// Finger down.
    Down,
    /// Finger drag.
    Move,
    /// Finger up.
    Up,
}

impl TouchAction {
    fn from_i64(v: i64) -> TouchAction {
        match v {
            0 => TouchAction::Down,
            1 => TouchAction::Move,
            _ => TouchAction::Up,
        }
    }

    fn as_i64(self) -> i64 {
        match self {
            TouchAction::Down => 0,
            TouchAction::Move => 1,
            TouchAction::Up => 2,
        }
    }
}

/// A decoded touch event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchEvent {
    /// Panel x.
    pub x: u32,
    /// Panel y.
    pub y: u32,
    /// Gesture phase.
    pub action: TouchAction,
}

impl TouchEvent {
    /// Packs the event into a mailbox message.
    pub fn into_message(self) -> Message {
        Message::new(MSG_INPUT_EVENT)
            .arg1(i64::from(self.x) << 16 | i64::from(self.y))
            .arg2(self.action.as_i64())
    }

    /// Decodes an event from a [`MSG_INPUT_EVENT`] message.
    ///
    /// Returns `None` for other message codes.
    pub fn from_message(msg: &Message) -> Option<TouchEvent> {
        if msg.what != MSG_INPUT_EVENT {
            return None;
        }
        Some(TouchEvent {
            x: (msg.arg1 >> 16) as u32,
            y: (msg.arg1 & 0xffff) as u32,
            action: TouchAction::from_i64(msg.arg2),
        })
    }
}

/// The shared focus registry: which thread currently receives input.
#[derive(Debug, Clone, Default)]
pub struct InputRouter {
    focused: Rc<RefCell<Option<Tid>>>,
}

impl InputRouter {
    /// Creates a router with nothing focused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Focuses input on `tid` (usually the app's main thread).
    pub fn set_focus(&self, tid: Tid) {
        *self.focused.borrow_mut() = Some(tid);
    }

    /// Clears focus (events are dropped, as with no focused window).
    pub fn clear_focus(&self) {
        *self.focused.borrow_mut() = None;
    }

    /// Currently focused thread.
    pub fn focused(&self) -> Option<Tid> {
        *self.focused.borrow()
    }
}

/// The `InputReader` thread: polls `/dev/input/event0` and synthesizes a
/// deterministic gesture stream for the dispatcher.
pub(crate) struct InputReader {
    pub dispatcher: Tid,
    pub width: u32,
    pub height: u32,
    seq: u64,
}

impl InputReader {
    pub fn new(dispatcher: Tid, width: u32, height: u32) -> Self {
        InputReader {
            dispatcher,
            width,
            height,
            seq: 0,
        }
    }
}

const READER_PERIOD: u64 = 50 * TICKS_PER_MS;
/// One gesture (down, 2 moves, up) every 16 polls ≈ 800 ms.
const POLLS_PER_GESTURE: u64 = 16;

impl Actor for InputReader {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(READER_PERIOD, Message::new(0));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        self.seq += 1;
        // Poll the event device.
        let ui = cx.intern_region("libui.so");
        cx.call_lib(ui, 500);
        cx.syscall(120);
        let evdev = cx.intern_region("/dev/input/event0");
        cx.charge(evdev, RefKind::DataRead, 4);

        let phase = self.seq % POLLS_PER_GESTURE;
        if phase < 4 {
            // Deterministic gesture position from the sequence number.
            let g = self.seq / POLLS_PER_GESTURE + 1;
            let x = (g.wrapping_mul(2654435761) % u64::from(self.width.max(1))) as u32;
            let y = (g.wrapping_mul(40503) % u64::from(self.height.max(1))) as u32;
            let action = match phase {
                0 => TouchAction::Down,
                3 => TouchAction::Up,
                _ => TouchAction::Move,
            };
            let event = TouchEvent {
                x,
                y: y + (phase as u32 * 2),
                action,
            };
            cx.charge(evdev, RefKind::DataRead, 16);
            cx.send(self.dispatcher, event.into_message());
        }
        cx.post_self_after(READER_PERIOD, Message::new(0));
    }
}

/// The `InputDispatcher` thread: routes reader events to the focused
/// window's thread.
pub(crate) struct InputDispatcher {
    pub router: InputRouter,
}

impl Actor for InputDispatcher {
    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        let Some(event) = TouchEvent::from_message(&msg) else {
            return;
        };
        // Window lookup + motion-event bookkeeping in services.jar code.
        let dvm = cx.well_known().libdvm;
        cx.call_lib(dvm, 2_000);
        let sj = cx.intern_region("/system/framework/services.jar@classes.dex");
        cx.charge(sj, RefKind::DataRead, 160);
        if let Some(target) = self.router.focused() {
            cx.send(target, event.into_message());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_message_round_trips() {
        let e = TouchEvent {
            x: 123,
            y: 456,
            action: TouchAction::Move,
        };
        let msg = e.into_message();
        assert_eq!(TouchEvent::from_message(&msg), Some(e));
        assert_eq!(TouchEvent::from_message(&Message::new(1)), None);
    }

    #[test]
    fn actions_encode_densely() {
        for a in [TouchAction::Down, TouchAction::Move, TouchAction::Up] {
            assert_eq!(TouchAction::from_i64(a.as_i64()), a);
        }
    }

    #[test]
    fn router_focus_is_shared() {
        let r1 = InputRouter::new();
        let r2 = r1.clone();
        assert!(r1.focused().is_none());
        let mut tracer = agave_trace::Tracer::new();
        let p = tracer.register_process("x");
        let t = tracer.register_thread(p, "main");
        r2.set_focus(t);
        assert_eq!(r1.focused(), Some(t));
        r1.clear_focus();
        assert_eq!(r2.focused(), None);
    }
}
