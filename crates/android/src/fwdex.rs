//! Reusable "framework" bytecode: the Java-library workhorses apps call.
//!
//! Real Agave applications spend much of their Dalvik time in framework
//! classes (`ArrayList`, `String`, layout code) whose bytecode lives in
//! `/system/framework/core.jar@classes.dex` rather than the app's own dex.
//! [`add_framework_methods`] appends a set of such utility methods to an
//! app's [`DexFile`]; [`FrameworkMethods::mark`] then attributes their
//! bytecode reads to the core-jar region, splitting dex-file traffic
//! between app and framework exactly as the paper's VMA accounting would.

use agave_dalvik::Vm;
use agave_dex::{BinOp, ClassId, Cond, DexFile, MethodBuilder, MethodId, Reg};
use agave_kernel::Ctx;

/// Handles to the shared framework methods.
#[derive(Debug, Clone, Copy)]
pub struct FrameworkMethods {
    /// The framework utility class.
    pub class: ClassId,
    /// `mix(x, rounds) -> i64`: an arithmetic churn loop (hashing,
    /// measure passes).
    pub mix: MethodId,
    /// `fill(arr, n, seed)`: fills an array from a seeded LCG.
    pub fill: MethodId,
    /// `sum(arr) -> i64`: sums an array.
    pub sum: MethodId,
    /// `copy(dst, src, n)`: element-wise array copy.
    pub copy: MethodId,
}

/// Appends the framework utility methods to `dex`.
pub fn add_framework_methods(dex: &mut DexFile) -> FrameworkMethods {
    let class = dex.add_class("Ljava/lang/FrameworkUtil;", 0, 0);

    // mix(x, rounds): acc = x; for i in 0..rounds { acc = acc*K + (acc>>13) + i }
    let mix = {
        let mut m = MethodBuilder::new(8, 2);
        let (x, rounds) = (Reg(6), Reg(7));
        let (i, one, k, acc, tmp, sh) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        m.konst(i, 0).konst(one, 1).konst(k, 6364136223846793005);
        m.konst(sh, 13);
        m.mov(acc, x);
        let head = m.new_label();
        m.bind(head);
        m.binop(BinOp::Mul, acc, acc, k);
        m.binop(BinOp::Shr, tmp, acc, sh);
        m.binop(BinOp::Add, acc, acc, tmp);
        m.binop(BinOp::Add, acc, acc, i);
        m.binop(BinOp::Add, i, i, one);
        m.if_cmp(Cond::Lt, i, rounds, head);
        m.ret(Some(acc));
        dex.add_method(class, "mix", m)
    };

    // fill(arr, n, seed)
    let fill = {
        let mut m = MethodBuilder::new(10, 3);
        let (arr, n, seed) = (Reg(7), Reg(8), Reg(9));
        let (i, one, a, c, x) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        m.konst(i, 0).konst(one, 1);
        m.konst(a, 1103515245).konst(c, 12345);
        m.mov(x, seed);
        let head = m.new_label();
        let done = m.new_label();
        m.bind(head);
        m.if_cmp(Cond::Ge, i, n, done);
        m.binop(BinOp::Mul, x, x, a);
        m.binop(BinOp::Add, x, x, c);
        m.aput(x, arr, i);
        m.binop(BinOp::Add, i, i, one);
        m.goto(head);
        m.bind(done);
        m.ret(None);
        dex.add_method(class, "fill", m)
    };

    // sum(arr)
    let sum = {
        let mut m = MethodBuilder::new(7, 1);
        let arr = Reg(6);
        let (i, acc, one, len, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        m.konst(i, 0).konst(acc, 0).konst(one, 1);
        m.array_len(len, arr);
        let head = m.new_label();
        let done = m.new_label();
        m.bind(head);
        m.if_cmp(Cond::Ge, i, len, done);
        m.aget(v, arr, i);
        m.binop(BinOp::Add, acc, acc, v);
        m.binop(BinOp::Add, i, i, one);
        m.goto(head);
        m.bind(done);
        m.ret(Some(acc));
        dex.add_method(class, "sum", m)
    };

    // copy(dst, src, n)
    let copy = {
        let mut m = MethodBuilder::new(9, 3);
        let (dst, src, n) = (Reg(6), Reg(7), Reg(8));
        let (i, one, v) = (Reg(0), Reg(1), Reg(2));
        m.konst(i, 0).konst(one, 1);
        let head = m.new_label();
        let done = m.new_label();
        m.bind(head);
        m.if_cmp(Cond::Ge, i, n, done);
        m.aget(v, src, i);
        m.aput(v, dst, i);
        m.binop(BinOp::Add, i, i, one);
        m.goto(head);
        m.bind(done);
        m.ret(None);
        dex.add_method(class, "copy", m)
    };

    FrameworkMethods {
        class,
        mix,
        fill,
        sum,
        copy,
    }
}

impl FrameworkMethods {
    /// Attributes these methods' bytecode reads to the core framework jar
    /// instead of the app's own dex.
    pub fn mark(&self, cx: &mut Ctx<'_>, vm: &mut Vm) {
        let core = cx.intern_region("/system/framework/core.jar@classes.dex");
        for id in [self.mix, self.fill, self.sum, self.copy] {
            vm.set_method_region(id, core);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_dalvik::Value;
    use agave_kernel::{Actor, Kernel, Message};

    fn run(f: impl FnOnce(&mut Ctx<'_>) + 'static) -> agave_trace::RunSummary {
        struct R<F>(Option<F>);
        impl<F: FnOnce(&mut Ctx<'_>) + 'static> Actor for R<F> {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _m: Message) {
                (self.0.take().unwrap())(cx);
            }
        }
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("app");
        let tid = kernel.spawn_thread(pid, "main", Box::new(R(Some(f))));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
        kernel.tracer().summarize("t")
    }

    #[test]
    fn framework_methods_compute_correctly() {
        run(|cx| {
            let mut dex = DexFile::new();
            let fw = add_framework_methods(&mut dex);
            let mut vm = Vm::new(cx, dex, "app.apk@classes.dex");
            // fill then sum a 10-element array with the same LCG in Rust.
            let arr = vm.heap.alloc_array(10);
            vm.invoke(
                cx,
                fw.fill,
                &[Value::Ref(arr), Value::Int(10), Value::Int(7)],
            );
            let got = vm.invoke(cx, fw.sum, &[Value::Ref(arr)]).unwrap().as_int();
            let mut x: i64 = 7;
            let mut expect: i64 = 0;
            for _ in 0..10 {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                expect = expect.wrapping_add(x);
            }
            assert_eq!(got, expect);
            // copy duplicates contents.
            let dst = vm.heap.alloc_array(10);
            vm.invoke(
                cx,
                fw.copy,
                &[Value::Ref(dst), Value::Ref(arr), Value::Int(10)],
            );
            let got2 = vm.invoke(cx, fw.sum, &[Value::Ref(dst)]).unwrap().as_int();
            assert_eq!(got2, expect);
            // mix is deterministic and sensitive to rounds.
            let a = vm
                .invoke(cx, fw.mix, &[Value::Int(42), Value::Int(100)])
                .unwrap();
            let b = vm
                .invoke(cx, fw.mix, &[Value::Int(42), Value::Int(101)])
                .unwrap();
            assert_ne!(a, b);
        });
    }

    #[test]
    fn marking_moves_dex_reads_to_core_jar() {
        let s = run(|cx| {
            let mut dex = DexFile::new();
            let fw = add_framework_methods(&mut dex);
            let mut vm = Vm::new(cx, dex, "app.apk@classes.dex");
            fw.mark(cx, &mut vm);
            vm.invoke(cx, fw.mix, &[Value::Int(1), Value::Int(5_000)]);
        });
        let core = s.data_by_region["/system/framework/core.jar@classes.dex"];
        assert!(core > 5_000, "core jar reads missing: {core}");
    }
}
