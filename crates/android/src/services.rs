//! The core system services hosted in `system_server`.

use crate::libs::LibMix;
use agave_binder::{BinderService, Parcel};
use agave_gfx::{PixelFormat, SurfaceStore};
use agave_kernel::{Ctx, RefKind};

/// `activity` transaction: start an activity. Parcel: component name.
pub const AMS_START_ACTIVITY: u32 = 1;
/// `activity` transaction: bind a service. Parcel: component name.
pub const AMS_BIND_SERVICE: u32 = 2;

/// `window` transaction: create a surface. Parcel: name, x, y, w, h.
/// Reply: status, surface index.
pub const WMS_CREATE_SURFACE: u32 = 1;
/// `window` transaction: relayout (cheap bookkeeping).
pub const WMS_RELAYOUT: u32 = 2;

/// `package` transaction: fetch package info. Parcel: package name.
pub const PMS_GET_PACKAGE_INFO: u32 = 1;
/// `package` transaction: query activities (heavier scan).
pub const PMS_QUERY_ACTIVITIES: u32 = 2;

fn services_dex_cost(cx: &mut Ctx<'_>, mix: &LibMix, dex_reads: u64, fetches: u64) {
    // System services are Dalvik code in services.jar running on libdvm.
    let wk = cx.well_known();
    let services_dex = cx.intern_region("/system/framework/services.jar@classes.dex");
    cx.call_lib(wk.libdvm, fetches);
    cx.charge(services_dex, RefKind::DataRead, dex_reads);
    let heap = wk.dalvik_heap;
    cx.data_rw(heap, dex_reads / 2, dex_reads / 4);
    mix.charge(cx, fetches / 4);
}

/// The ActivityManager: lifecycle bookkeeping for activities/services.
pub struct ActivityManagerService {
    mix: LibMix,
    activities_started: u64,
}

impl ActivityManagerService {
    /// Creates the service; `mix` is `system_server`'s library mix.
    pub fn new(mix: LibMix) -> Self {
        ActivityManagerService {
            mix,
            activities_started: 0,
        }
    }
}

impl BinderService for ActivityManagerService {
    fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel {
        let mut reply = Parcel::new();
        match code {
            AMS_START_ACTIVITY => {
                let _component = data.read_str();
                // Resolve intent, update task stack, schedule lifecycle.
                services_dex_cost(cx, &self.mix, 6_000, 45_000);
                self.activities_started += 1;
                reply.write_u32(0);
            }
            AMS_BIND_SERVICE => {
                let _component = data.read_str();
                services_dex_cost(cx, &self.mix, 3_000, 22_000);
                reply.write_u32(0);
            }
            other => panic!("activity: unknown transaction {other}"),
        }
        reply
    }
}

/// The WindowManager: owns surface creation on behalf of clients.
pub struct WindowManagerService {
    mix: LibMix,
    surfaces: SurfaceStore,
}

impl WindowManagerService {
    /// Creates the service over the global surface store.
    pub fn new(mix: LibMix, surfaces: SurfaceStore) -> Self {
        WindowManagerService { mix, surfaces }
    }
}

impl BinderService for WindowManagerService {
    fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel {
        let mut reply = Parcel::new();
        match code {
            WMS_CREATE_SURFACE => {
                let name = data.read_str();
                let x = data.read_u32();
                let y = data.read_u32();
                let w = data.read_u32();
                let h = data.read_u32();
                services_dex_cost(cx, &self.mix, 2_500, 18_000);
                // Gralloc allocation happens here, in system_server.
                let handle =
                    self.surfaces
                        .create_surface(cx, &name, x, y, w, h, PixelFormat::Rgb565);
                let _ = handle;
                reply.write_u32(0);
                reply.write_u32(self.surfaces.len() as u32 - 1);
            }
            WMS_RELAYOUT => {
                services_dex_cost(cx, &self.mix, 800, 6_000);
                reply.write_u32(0);
            }
            other => panic!("window: unknown transaction {other}"),
        }
        reply
    }
}

/// The PackageManager: package metadata queries (hammered by the
/// `pm.apk.view` workload).
pub struct PackageManagerService {
    mix: LibMix,
    packages: u32,
}

impl PackageManagerService {
    /// Creates the service with a synthetic installed-package count.
    pub fn new(mix: LibMix, packages: u32) -> Self {
        PackageManagerService { mix, packages }
    }
}

impl BinderService for PackageManagerService {
    fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel {
        let mut reply = Parcel::new();
        match code {
            PMS_GET_PACKAGE_INFO => {
                let _pkg = data.read_str();
                services_dex_cost(cx, &self.mix, 1_500, 12_000);
                let pkgs_xml = cx.intern_region("/data/system/packages.xml");
                cx.charge(pkgs_xml, RefKind::DataRead, 48);
                reply.write_u32(0);
                reply.write_u32(self.packages);
            }
            PMS_QUERY_ACTIVITIES => {
                // Linear scan over installed packages.
                let per_pkg = 400u64;
                services_dex_cost(
                    cx,
                    &self.mix,
                    per_pkg * u64::from(self.packages) / 4,
                    per_pkg * u64::from(self.packages),
                );
                reply.write_u32(0);
                reply.write_u32(self.packages);
            }
            other => panic!("package: unknown transaction {other}"),
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_binder::{BinderHost, BinderProxy};
    use agave_kernel::{Actor, Kernel, Message};

    fn client_runs(
        code: u32,
        parcel: Parcel,
        service: impl BinderService + 'static,
    ) -> agave_trace::RunSummary {
        struct Client {
            proxy: BinderProxy,
            code: u32,
            parcel: Option<Parcel>,
        }
        impl Actor for Client {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                let p = self.parcel.take().unwrap();
                let mut reply = self.proxy.transact(cx, self.code, &p);
                assert_eq!(reply.read_u32(), 0);
            }
        }
        let mut kernel = Kernel::new();
        let ss = kernel.spawn_process("system_server");
        let tid = kernel.spawn_thread(ss, "Binder Thread #1", Box::new(BinderHost::new(service)));
        let app = kernel.spawn_process("benchmark");
        let main = kernel.spawn_thread(
            app,
            "main",
            Box::new(Client {
                proxy: BinderProxy::new(tid),
                code,
                parcel: Some(parcel),
            }),
        );
        kernel.send(main, Message::new(0));
        kernel.run_to_idle();
        kernel.tracer().summarize("t")
    }

    #[test]
    fn start_activity_charges_system_server_dalvik() {
        let mut p = Parcel::new();
        p.write_str("com.example/.Main");
        let s = client_runs(
            AMS_START_ACTIVITY,
            p,
            ActivityManagerService::new(LibMix::default()),
        );
        assert!(s.instr_by_process["system_server"] > 40_000);
        assert!(s.data_by_region["/system/framework/services.jar@classes.dex"] >= 6_000);
        assert!(s.instr_by_region["libdvm.so"] >= 45_000);
    }

    #[test]
    fn create_surface_allocates_gralloc_in_system_server() {
        let mut p = Parcel::new();
        p.write_str("win");
        for v in [0u32, 0, 64, 64] {
            p.write_u32(v);
        }
        let store = SurfaceStore::new();
        let s = client_runs(
            WMS_CREATE_SURFACE,
            p,
            WindowManagerService::new(LibMix::default(), store.clone()),
        );
        assert_eq!(store.len(), 1);
        let _ = s;
    }

    #[test]
    fn package_scan_scales_with_package_count() {
        let mut p1 = Parcel::new();
        p1.write_str("q");
        let small = client_runs(
            PMS_QUERY_ACTIVITIES,
            p1,
            PackageManagerService::new(LibMix::default(), 10),
        );
        let mut p2 = Parcel::new();
        p2.write_str("q");
        let large = client_runs(
            PMS_QUERY_ACTIVITIES,
            p2,
            PackageManagerService::new(LibMix::default(), 200),
        );
        assert!(
            large.instr_by_process["system_server"] > small.instr_by_process["system_server"] * 5
        );
    }
}
