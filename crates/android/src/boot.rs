//! Booting the Gingerbread world.

use crate::app::{AppEnv, DexoptWorker, OneShot, Periodic};
use crate::libs::{LibMix, LibSet};
use crate::services::{ActivityManagerService, PackageManagerService, WindowManagerService};
use agave_binder::{BinderHost, ServiceDirectory, ServiceManager};
use agave_gfx::{Bitmap, Canvas, DisplayConfig, PixelFormat, Rect, SurfaceFlinger, SurfaceStore};
use agave_kernel::{Kernel, Message, Pid, RefKind, Tid, TICKS_PER_MS};
use agave_media::{AudioBus, AudioFlingerThread, MediaPlayerService};
use std::cell::Cell;
use std::rc::Rc;

/// Number of synthetic packages PackageManager knows about.
const INSTALLED_PACKAGES: u32 = 96;

/// A booted Android system: the full Gingerbread process population plus
/// the shared plumbing applications attach to.
///
/// See the [crate docs](crate) for an example.
pub struct Android {
    /// The simulated kernel (and tracer) everything runs on.
    pub kernel: Kernel,
    /// Binder service directory.
    pub directory: ServiceDirectory,
    /// Global window list.
    pub surfaces: SurfaceStore,
    /// Audio bus.
    pub audio: AudioBus,
    /// Panel geometry.
    pub display: DisplayConfig,
    zygote: Pid,
    system_server: Pid,
    mediaserver: Pid,
    system_mix: LibMix,
    input: crate::input::InputRouter,
    sf_frames: Rc<Cell<u64>>,
    launched: u32,
}

impl std::fmt::Debug for Android {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Android")
            .field("processes", &self.kernel.process_count())
            .field("threads", &self.kernel.thread_count())
            .field("display", &self.display)
            .finish()
    }
}

impl Android {
    /// Boots the world: kernel threads, daemons, servicemanager, zygote
    /// (with class preloading), system_server, mediaserver, launcher,
    /// systemui and the standard zygote children.
    pub fn boot(display: DisplayConfig) -> Android {
        let mut kernel = Kernel::new();
        let directory = ServiceDirectory::new();
        let surfaces = SurfaceStore::new();
        let audio = AudioBus::new();

        boot_kernel_threads(&mut kernel);
        boot_daemons(&mut kernel);

        // servicemanager.
        let sm_pid = kernel.spawn_process("servicemanager");
        let sm_tid = kernel.spawn_thread(
            sm_pid,
            "servicemanager",
            Box::new(BinderHost::new(ServiceManager::new(directory.clone()))),
        );
        directory.register("servicemanager", sm_tid);

        // zygote: the Dalvik template every app forks from.
        let zygote = kernel.spawn_process("zygote");
        let _zygote_mix = LibMix::map_into(
            &mut kernel,
            zygote,
            &[LibSet::Core, LibSet::Dalvik, LibSet::Graphics],
        );
        let libdvm = kernel.well_known().libdvm;
        let zygote_main = kernel.spawn_thread_in(zygote, "zygote", libdvm, inert());
        for name in ["GC", "Compiler", "Signal Catcher", "HeapWorker", "JDWP"] {
            kernel.spawn_thread_in(zygote, name, libdvm, inert());
        }
        charge_zygote_preload(&mut kernel, zygote, zygote_main);

        // system_server.
        let system_server = kernel.fork_process(zygote, "system_server");
        let mut system_mix = LibMix::map_into(
            &mut kernel,
            system_server,
            &[LibSet::Net, LibSet::SystemMisc],
        );
        let services_dex = kernel.intern_region("/system/framework/services.jar@classes.dex");
        kernel.map_lib(
            system_server,
            "/system/framework/services.jar@classes.dex",
            2_200 * 1024,
            4096,
        );
        kernel.map_lib(system_server, "libsurfaceflinger.so", 240 * 1024, 16 * 1024);
        kernel.map_lib(system_server, "libpixelflinger.so", 110 * 1024, 8 * 1024);
        system_mix.push(services_dex, 2);

        let sf_lib = kernel.intern_region("libsurfaceflinger.so");
        let wk = kernel.well_known();
        let fb = kernel.shm_create(wk.fb0, display.fb_bytes());
        let flinger = SurfaceFlinger::new(display, surfaces.clone(), fb);
        let sf_frames = flinger.frame_counter();
        kernel.spawn_thread_in(system_server, "SurfaceFlinger", sf_lib, Box::new(flinger));

        // ServerThread: periodic service housekeeping.
        {
            let mix = system_mix.clone();
            let dvm = kernel.well_known().libdvm;
            kernel.spawn_thread_in(
                system_server,
                "android.server.ServerThread",
                dvm,
                Box::new(Periodic::new(250 * TICKS_PER_MS, move |cx| {
                    cx.call_lib(dvm, 12_000);
                    let sj = cx.intern_region("/system/framework/services.jar@classes.dex");
                    cx.charge(sj, RefKind::DataRead, 900);
                    let stats = cx.intern_region("/data/system/batterystats.bin");
                    cx.charge(stats, RefKind::DataWrite, 24);
                    mix.charge(cx, 4_000);
                })),
            );
        }
        // Input pipeline: a synthetic user drives touch gestures through
        // the real InputReader → InputDispatcher path.
        let input_router = crate::input::InputRouter::new();
        let ui = kernel.intern_region("libui.so");
        let dispatcher_tid = kernel.spawn_thread_in(
            system_server,
            "InputDispatcher",
            ui,
            Box::new(crate::input::InputDispatcher {
                router: input_router.clone(),
            }),
        );
        kernel.spawn_thread_in(
            system_server,
            "InputReader",
            ui,
            Box::new(crate::input::InputReader::new(
                dispatcher_tid,
                display.width,
                display.height,
            )),
        );
        // Binder pool hosting the core services.
        let ams_tid = kernel.spawn_thread(
            system_server,
            "Binder Thread #1",
            Box::new(BinderHost::new(ActivityManagerService::new(
                system_mix.clone(),
            ))),
        );
        let wms_tid = kernel.spawn_thread(
            system_server,
            "Binder Thread #2",
            Box::new(BinderHost::new(WindowManagerService::new(
                system_mix.clone(),
                surfaces.clone(),
            ))),
        );
        let pms_tid = kernel.spawn_thread(
            system_server,
            "Binder Thread #3",
            Box::new(BinderHost::new(PackageManagerService::new(
                system_mix.clone(),
                INSTALLED_PACKAGES,
            ))),
        );
        kernel.spawn_thread(system_server, "Binder Thread #4", inert());
        directory.register("activity", ams_tid);
        directory.register("window", wms_tid);
        directory.register("package", pms_tid);
        for name in [
            "PowerManagerSer",
            "BatteryService",
            "AlarmManager",
            "WifiService",
            "AudioService",
            "SensorService",
            "WindowManagerPo",
        ] {
            kernel.spawn_thread(system_server, name, inert());
        }

        // mediaserver.
        let mediaserver = kernel.spawn_process("mediaserver");
        let _media_mix = LibMix::map_into(
            &mut kernel,
            mediaserver,
            &[LibSet::Core, LibSet::Media, LibSet::Graphics],
        );
        let media_main = kernel.spawn_thread(mediaserver, "mediaserver", inert());
        let _ = media_main;
        let mps_tid = kernel.spawn_thread(
            mediaserver,
            "Binder Thread #1",
            Box::new(BinderHost::new(MediaPlayerService::new(
                audio.clone(),
                surfaces.clone(),
            ))),
        );
        kernel.spawn_thread(mediaserver, "Binder Thread #2", inert());
        AudioFlingerThread::spawn(&mut kernel, mediaserver, audio.clone());
        directory.register("media.player", mps_tid);

        let mut android = Android {
            kernel,
            directory,
            surfaces,
            audio,
            display,
            input: input_router,
            zygote,
            system_server,
            mediaserver,
            system_mix,
            sf_frames,
            launched: 0,
        };
        android.boot_zygote_children();
        android
    }

    /// Standard zygote children: launcher, systemui, acore, phone, media
    /// provider.
    fn boot_zygote_children(&mut self) {
        let display = self.display;

        // Launcher: draws the wallpaper + icon grid once.
        let launcher = self.fork_dalvik_child("ndroid.launcher");
        let surfaces = self.surfaces.clone();
        let dvm = self.kernel.well_known().libdvm;
        self.kernel.spawn_thread_in(
            launcher,
            "ndroid.launcher",
            dvm,
            Box::new(OneShot::new(move |cx| {
                let handle = surfaces.create_surface(
                    cx,
                    "launcher",
                    0,
                    0,
                    display.width,
                    display.height,
                    PixelFormat::Rgb565,
                );
                let mut canvas = Canvas::new(Bitmap::new(
                    display.width,
                    display.height,
                    PixelFormat::Rgb565,
                ));
                canvas.draw_gradient(cx, canvas.bitmap().bounds(), 0x001f, 0x07e0);
                // Icon grid.
                let cell = (display.width / 6).max(4);
                for row in 0..4u32 {
                    for col in 0..4u32 {
                        canvas.fill_rect(
                            cx,
                            Rect::new(col * cell + 2, row * cell + 2, cell - 4, cell - 4),
                            0xffe0 ^ (row * 7 + col),
                        );
                    }
                }
                let frame = canvas.into_bitmap();
                handle.post_buffer(cx, &frame);
                // The launcher then sits behind the app; hide it so the
                // foreground app owns composition.
                handle.set_visible(false);
            })),
        );

        // SystemUI: the status bar clock ticks every second.
        let systemui = self.fork_dalvik_child("ndroid.systemui");
        let surfaces = self.surfaces.clone();
        let bar_h = (display.height / 25).max(4);
        self.kernel.spawn_thread_in(
            systemui,
            "ndroid.systemui",
            dvm,
            Box::new(StatusBar::new(surfaces, display.width, bar_h)),
        );

        for name in [
            "android.process.acore",
            "com.android.phone",
            "android.process.media",
        ] {
            let pid = self.fork_dalvik_child(name);
            let dvm = self.kernel.well_known().libdvm;
            let mix = self.system_mix.clone();
            self.kernel.spawn_thread_in(
                pid,
                name,
                dvm,
                Box::new(Periodic::new(2_000 * TICKS_PER_MS, move |cx| {
                    cx.call_lib(dvm, 3_000);
                    mix.charge(cx, 1_200);
                })),
            );
        }
    }

    /// Forks a Dalvik child from zygote with the standard VM thread set.
    fn fork_dalvik_child(&mut self, name: &str) -> Pid {
        let pid = self.kernel.fork_process(self.zygote, name);
        let dvm = self.kernel.well_known().libdvm;
        for t in [
            "GC",
            "Compiler",
            "Signal Catcher",
            "HeapWorker",
            "Binder Thread #1",
        ] {
            self.kernel.spawn_thread_in(pid, t, dvm, inert());
        }
        pid
    }

    /// Launches the benchmark application: registers the APK, runs
    /// `dexopt` and `id.defcontainer`, forks the app from zygote and maps
    /// its libraries. Returns the app's environment; the caller spawns the
    /// app's threads.
    pub fn launch_app(&mut self, package: &str, apk_path: &str) -> AppEnv {
        self.launched += 1;
        if self.kernel.vfs().file_len(apk_path).is_none() {
            self.kernel.vfs_mut().add_file(apk_path, 900 * 1024, 0x41);
        }

        // dexopt verifies/optimizes the package, then exits.
        let dexopt = self.kernel.spawn_process("dexopt");
        let dvm = self.kernel.well_known().libdvm;
        self.kernel.spawn_thread_in(
            dexopt,
            "dexopt",
            dvm,
            Box::new(DexoptWorker::new(apk_path, package)),
        );

        // The DefaultContainerService inspects the package.
        let defcontainer = self.fork_dalvik_child("id.defcontainer");
        let apk = apk_path.to_owned();
        self.kernel.spawn_thread_in(
            defcontainer,
            "id.defcontainer",
            dvm,
            Box::new(OneShot::new(move |cx| {
                let mut buf = vec![0u8; 8 * 1024];
                let n = cx.fs_read(&apk, 0, &mut buf);
                cx.call_lib(dvm, 3 * n as u64);
            })),
        );

        // The benchmark process itself (named as the paper's figures
        // label it).
        let pid = self.kernel.fork_process(self.zygote, "benchmark");
        let mut mix = LibMix::map_into(
            &mut self.kernel,
            pid,
            &[LibSet::Core, LibSet::Dalvik, LibSet::Graphics],
        );
        let apk_region = self.kernel.intern_region(&format!("{apk_path} (apk)"));
        self.kernel
            .map_lib(pid, &format!("{apk_path} (apk)"), 512 * 1024, 4096);
        mix.push(apk_region, 1);

        AppEnv {
            pid,
            package: package.to_owned(),
            input: self.input.clone(),
            zygote: self.zygote,
            directory: self.directory.clone(),
            surfaces: self.surfaces.clone(),
            audio: self.audio.clone(),
            display: self.display,
            mix,
        }
    }

    /// The input focus router (see [`crate::InputRouter`]).
    pub fn input(&self) -> &crate::input::InputRouter {
        &self.input
    }

    /// Runs the world for `ms` simulated milliseconds.
    ///
    /// Note a booted Android never goes idle (vsync, audio and service
    /// timers re-arm forever), so use this rather than `run_to_idle`.
    pub fn run_ms(&mut self, ms: u64) {
        self.kernel.run_for(ms * TICKS_PER_MS);
    }

    /// Frames composed by SurfaceFlinger so far.
    pub fn frames_composed(&self) -> u64 {
        self.sf_frames.get()
    }

    /// The zygote pid.
    pub fn zygote(&self) -> Pid {
        self.zygote
    }

    /// The system_server pid.
    pub fn system_server(&self) -> Pid {
        self.system_server
    }

    /// The mediaserver pid.
    pub fn mediaserver(&self) -> Pid {
        self.mediaserver
    }

    /// system_server's library mix (for service-side modeling).
    pub fn system_mix(&self) -> &LibMix {
        &self.system_mix
    }
}

/// The systemui status bar: redraws the clock strip every second.
struct StatusBar {
    surfaces: SurfaceStore,
    width: u32,
    height: u32,
    handle: Option<agave_gfx::SurfaceHandle>,
    ticks: u64,
}

impl StatusBar {
    fn new(surfaces: SurfaceStore, width: u32, height: u32) -> Self {
        StatusBar {
            surfaces,
            width,
            height,
            handle: None,
            ticks: 0,
        }
    }

    fn redraw(&mut self, cx: &mut agave_kernel::Ctx<'_>) {
        let handle = match &self.handle {
            Some(h) => h.clone(),
            None => {
                let h = self.surfaces.create_surface(
                    cx,
                    "StatusBar",
                    0,
                    0,
                    self.width,
                    self.height,
                    PixelFormat::Rgb565,
                );
                self.handle = Some(h.clone());
                h
            }
        };
        let mut canvas = Canvas::new(Bitmap::new(self.width, self.height, PixelFormat::Rgb565));
        canvas.clear(cx, 0x0000);
        let clock = format!("{:02}:{:02}", (self.ticks / 60) % 24, self.ticks % 60);
        canvas.draw_text(cx, &clock, 2, 2, 0xffff);
        handle.post_buffer(cx, &canvas.into_bitmap());
        self.ticks += 1;
    }
}

impl agave_kernel::Actor for StatusBar {
    fn on_start(&mut self, cx: &mut agave_kernel::Ctx<'_>) {
        cx.post_self_after(1_000 * TICKS_PER_MS, Message::new(0));
    }

    fn on_message(&mut self, cx: &mut agave_kernel::Ctx<'_>, _msg: Message) {
        self.redraw(cx);
        cx.post_self_after(1_000 * TICKS_PER_MS, Message::new(0));
    }
}

fn inert() -> Box<dyn agave_kernel::Actor> {
    struct I;
    impl agave_kernel::Actor for I {
        fn on_message(&mut self, _cx: &mut agave_kernel::Ctx<'_>, _msg: Message) {}
    }
    Box::new(I)
}

/// The standard Linux kernel worker threads.
fn boot_kernel_threads(kernel: &mut Kernel) {
    for name in [
        "kthreadd",
        "ksoftirqd/0",
        "events/0",
        "khelper",
        "kblockd/0",
        "suspend",
        "flush-179:0",
        "mmcqd/0",
    ] {
        kernel.spawn_kernel_thread(name);
    }
    // A couple of them do visible periodic work.
    let (events_pid, _) = kernel.spawn_kernel_thread("kondemand/0");
    let osk = kernel.well_known().os_kernel;
    kernel.spawn_thread_in(
        events_pid,
        "kondemand-worker/0",
        osk,
        Box::new(Periodic::new(500 * TICKS_PER_MS, move |cx| {
            cx.syscall(900);
        })),
    );
}

/// Native userspace daemons.
fn boot_daemons(kernel: &mut Kernel) {
    for name in [
        "init",
        "ueventd",
        "vold",
        "netd",
        "debuggerd",
        "rild",
        "keystore",
        "installd",
    ] {
        let pid = kernel.spawn_process(name);
        kernel.spawn_thread(pid, name, inert());
    }
}

/// Zygote's framework class preloading (~1,800 classes on Gingerbread).
fn charge_zygote_preload(kernel: &mut Kernel, zygote: Pid, zygote_main: Tid) {
    let wk = kernel.well_known();
    let core_dex = kernel.intern_region("/system/framework/core.jar@classes.dex");
    let fw_dex = kernel.intern_region("/system/framework/framework.jar@classes.dex");
    let tracer = kernel.tracer_mut();
    tracer.charge(zygote, zygote_main, wk.libdvm, RefKind::InstrFetch, 48_000);
    tracer.charge(zygote, zygote_main, core_dex, RefKind::DataRead, 8_000);
    tracer.charge(zygote, zygote_main, fw_dex, RefKind::DataRead, 5_500);
    tracer.charge(
        zygote,
        zygote_main,
        wk.dalvik_heap,
        RefKind::DataWrite,
        7_000,
    );
    tracer.charge(
        zygote,
        zygote_main,
        wk.dalvik_heap,
        RefKind::DataRead,
        3_000,
    );
    tracer.charge(
        zygote,
        zygote_main,
        wk.dalvik_linear_alloc,
        RefKind::DataWrite,
        4_000,
    );
}
