//! The application environment and small reusable actors.

use crate::libs::LibMix;
use crate::services::{AMS_START_ACTIVITY, WMS_CREATE_SURFACE};
use agave_binder::{BinderProxy, Parcel, ServiceDirectory};
use agave_gfx::{DisplayConfig, SurfaceHandle, SurfaceStore};
use agave_kernel::{Actor, Ctx, Message, Pid, RefKind};
use agave_media::{AudioBus, MediaPlayer};

/// Everything a launched application needs to talk to the platform.
///
/// Handed out by [`crate::Android::launch_app`]; cheap to clone into the
/// app's actors.
#[derive(Clone)]
pub struct AppEnv {
    /// The benchmark process.
    pub pid: Pid,
    /// The application package name.
    pub package: String,
    /// The input focus router.
    pub input: crate::input::InputRouter,
    /// The zygote (for forking helper `app_process` children).
    pub zygote: Pid,
    /// Service name directory.
    pub directory: ServiceDirectory,
    /// The global window list.
    pub surfaces: SurfaceStore,
    /// The audio bus.
    pub audio: AudioBus,
    /// Panel geometry.
    pub display: DisplayConfig,
    /// The app's library mix (framework tail charging).
    pub mix: LibMix,
}

impl std::fmt::Debug for AppEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppEnv").field("pid", &self.pid).finish()
    }
}

impl AppEnv {
    /// The app's main (UI) thread name: Linux truncates the thread comm
    /// to 15 characters of the process name, so each app's UI thread shows
    /// up under its own distinct name in per-thread accounting (keeping
    /// Table I's top entries to the shared service thread families).
    pub fn main_thread_name(&self) -> String {
        let n = &self.package;
        if n.len() <= 15 {
            n.clone()
        } else {
            n[n.len() - 15..].to_string()
        }
    }

    /// Takes input focus: subsequent touch gestures from the synthetic
    /// user are delivered to `tid` as [`crate::MSG_INPUT_EVENT`] messages.
    pub fn focus_input(&self, tid: agave_kernel::Tid) {
        self.input.set_focus(tid);
    }

    /// Announces the app's main activity to the ActivityManager (the
    /// launch transaction every app run starts with).
    pub fn start_activity(&self, cx: &mut Ctx<'_>, component: &str) {
        let ams = self.directory.expect("activity");
        let mut p = Parcel::new();
        p.write_str(component);
        let mut reply = ams.transact(cx, AMS_START_ACTIVITY, &p);
        assert_eq!(reply.read_u32(), 0, "startActivity failed");
    }

    /// Creates a window via the WindowManager and returns its surface.
    pub fn create_window(
        &self,
        cx: &mut Ctx<'_>,
        name: &str,
        x: u32,
        y: u32,
        w: u32,
        h: u32,
    ) -> SurfaceHandle {
        let wms = self.directory.expect("window");
        let mut p = Parcel::new();
        p.write_str(name);
        p.write_u32(x);
        p.write_u32(y);
        p.write_u32(w);
        p.write_u32(h);
        let mut reply = wms.transact(cx, WMS_CREATE_SURFACE, &p);
        assert_eq!(reply.read_u32(), 0, "createSurface failed");
        let index = reply.read_u32() as usize;
        self.surfaces.handle(index)
    }

    /// A full-screen window.
    pub fn create_fullscreen_window(&self, cx: &mut Ctx<'_>, name: &str) -> SurfaceHandle {
        self.create_window(cx, name, 0, 0, self.display.width, self.display.height)
    }

    /// The `media.player` client.
    pub fn media_player(&self) -> MediaPlayer {
        MediaPlayer::new(self.directory.expect("media.player"))
    }

    /// Resolves a service proxy without charging (boot-path resolution).
    pub fn service(&self, name: &str) -> BinderProxy {
        self.directory.expect(name)
    }

    /// Forks an `app_process` helper child from zygote — the paper notes
    /// one is forked for every extra process an application spawns.
    pub fn fork_app_process(&self, cx: &mut Ctx<'_>) -> Pid {
        cx.fork_process(self.zygote, "app_process")
    }

    /// Charges a slice of framework-tail work (layout, resources, IPC glue)
    /// against the app's library mix.
    pub fn framework_tail(&self, cx: &mut Ctx<'_>, fetches: u64) {
        self.mix.charge(cx, fetches);
        // Resource/asset lookups read the framework jar and the app heap.
        let fw_dex = cx.intern_region("/system/framework/framework.jar@classes.dex");
        cx.charge(fw_dex, RefKind::DataRead, fetches / 24 + 1);
        // Every app run also touches its own persistence: the sqlite
        // database, shared preferences, a CursorWindow ashmem segment, and
        // the logger — each a distinct named mapping, feeding the paper's
        // ~170-region data tail.
        let db = cx.intern_region(&format!("/data/data/{}/databases/main.db", self.package));
        cx.charge(db, RefKind::DataRead, fetches / 96 + 2);
        cx.charge(db, RefKind::DataWrite, fetches / 384 + 1);
        let prefs = cx.intern_region(&format!(
            "/data/data/{}/shared_prefs/prefs.xml",
            self.package
        ));
        cx.charge(prefs, RefKind::DataRead, 2);
        let cursor = cx.intern_region(&format!("ashmem/CursorWindow ({})", self.package));
        cx.charge(cursor, RefKind::DataRead, fetches / 128 + 1);
        cx.charge(cursor, RefKind::DataWrite, fetches / 256 + 1);
        let log = cx.intern_region("/dev/log/main");
        cx.charge(log, RefKind::DataWrite, 2);
        let cache = cx.intern_region(&format!("/data/data/{}/cache", self.package));
        cx.charge(cache, RefKind::DataWrite, 1);
    }
}

/// An actor that runs a closure every `period` ticks, forever.
///
/// The workhorse for system-service background activity (ServerThread
/// ticks, input polling, status-bar clock updates).
pub struct Periodic<F> {
    period: u64,
    action: F,
}

impl<F: FnMut(&mut Ctx<'_>)> Periodic<F> {
    /// Creates a periodic actor.
    pub fn new(period: u64, action: F) -> Self {
        Periodic { period, action }
    }
}

impl<F: FnMut(&mut Ctx<'_>)> Actor for Periodic<F> {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(self.period, Message::new(0));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        (self.action)(cx);
        cx.post_self_after(self.period, Message::new(0));
    }
}

/// An actor that runs a closure once (on its start notification) and then
/// stays inert.
pub struct OneShot<F> {
    action: Option<F>,
}

impl<F: FnOnce(&mut Ctx<'_>)> OneShot<F> {
    /// Creates a one-shot actor.
    pub fn new(action: F) -> Self {
        OneShot {
            action: Some(action),
        }
    }
}

impl<F: FnOnce(&mut Ctx<'_>)> Actor for OneShot<F> {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        if let Some(f) = self.action.take() {
            f(cx);
        }
    }

    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}

/// The `dexopt` worker: verifies + optimizes an APK's dex at install time,
/// then exits — which is exactly how `dexopt` shows up (briefly) in the
/// paper's process figures.
pub struct DexoptWorker {
    apk_path: String,
    package: String,
}

impl DexoptWorker {
    /// Creates a worker for `package`'s APK at `apk_path` (must exist in
    /// the VFS).
    pub fn new(apk_path: &str, package: &str) -> Self {
        DexoptWorker {
            apk_path: apk_path.to_owned(),
            package: package.to_owned(),
        }
    }
}

impl Actor for DexoptWorker {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let wk = cx.well_known();
        let len = cx.fs_len(&self.apk_path).unwrap_or(64 * 1024);
        // Only the classes.dex portion (~1/5 of the APK) is verified and
        // rewritten, in 16 KiB chunks.
        let dex_len = (len / 5).min(96 * 1024);
        let mut buf = vec![0u8; 16 * 1024];
        let mut offset = 0u64;
        while offset < dex_len {
            let n = cx.fs_read(&self.apk_path, offset, &mut buf);
            if n == 0 {
                break;
            }
            offset += n as u64;
            // Verifier + optimizer: ~1 op/byte, writes the odex image.
            cx.call_lib(wk.libdvm, n as u64);
            cx.charge(wk.heap, RefKind::DataWrite, n as u64 / 8);
        }
        let odex = cx.intern_region(&format!("/data/dalvik-cache/{}@classes.dex", self.package));
        cx.charge(odex, RefKind::DataWrite, dex_len / 8);
        let pid = cx.pid();
        cx.exit_process(pid);
    }

    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}
