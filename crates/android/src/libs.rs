//! The Gingerbread shared-library catalog and the lib-mix charging helper.
//!
//! The paper's headline observation is region *diversity*: Agave
//! applications fetch instructions from 42–55 distinct regions each and
//! more than 65 across the suite, with a long tail of lightly-used
//! libraries. This module reproduces that tail: processes map a realistic
//! set of era-correct libraries, and framework operations spread a small
//! fraction of their work across the mapped set via [`LibMix`].

use agave_kernel::{Ctx, Kernel, NameId, Pid, RefKind};

/// A library set mapped together into a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibSet {
    /// bionic + the always-there native substrate.
    Core,
    /// The Dalvik runtime and the framework jars it loads.
    Dalvik,
    /// The 2D/3D display stack.
    Graphics,
    /// Stagefright and friends.
    Media,
    /// Networking helpers.
    Net,
    /// Telephony/system odds and ends (rounds out the tail).
    SystemMisc,
}

/// (name, text KiB, data KiB, sprinkle weight)
type LibSpec = (&'static str, u64, u64, u32);

const CORE: &[LibSpec] = &[
    ("libc.so", 280, 48, 18),
    ("libm.so", 96, 4, 4),
    ("liblog.so", 12, 2, 6),
    ("libcutils.so", 40, 6, 8),
    ("libutils.so", 120, 10, 10),
    ("libstdc++.so", 8, 2, 2),
    ("linker", 64, 8, 2),
    ("libbinder.so", 110, 10, 9),
    ("/dev/__properties__", 4, 128, 3),
];

const DALVIK: &[LibSpec] = &[
    ("libdvm.so", 580, 60, 0), // charged precisely by the VM, not sprinkled
    ("libnativehelper.so", 24, 4, 3),
    ("libicuuc.so", 900, 80, 4),
    ("libicui18n.so", 1100, 60, 3),
    ("libandroid_runtime.so", 480, 40, 10),
    ("libsqlite.so", 320, 20, 5),
    ("libexpat.so", 96, 8, 2),
    ("libssl.so", 220, 16, 2),
    ("libcrypto.so", 980, 40, 2),
    ("libz.so", 64, 4, 3),
    ("/system/framework/core.jar@classes.dex", 1600, 0, 0),
    ("/system/framework/framework.jar@classes.dex", 2900, 0, 0),
    ("/system/framework/ext.jar@classes.dex", 180, 0, 1),
    ("/system/framework/android.policy.jar@classes.dex", 90, 0, 1),
];

const GRAPHICS: &[LibSpec] = &[
    ("libskia.so", 850, 40, 0), // charged precisely by the canvas
    ("libui.so", 90, 8, 5),
    ("libgui.so", 60, 6, 4),
    ("libEGL.so", 50, 6, 3),
    ("libGLESv1_CM.so", 70, 6, 2),
    ("libpixelflinger.so", 110, 8, 0), // charged precisely by the flinger
    ("libsurfaceflinger_client.so", 40, 4, 3),
    ("libemoji.so", 16, 2, 1),
    ("/system/fonts/DroidSans.ttf", 180, 0, 0),
];

const MEDIA: &[LibSpec] = &[
    ("libstagefright.so", 680, 40, 0), // charged precisely by codecs
    ("libmedia.so", 240, 20, 4),
    ("libaudioflinger.so", 160, 12, 0),
    ("libmediaplayerservice.so", 120, 10, 3),
    ("libsonivox.so", 220, 12, 1),
    ("libvorbisidec.so", 90, 6, 1),
    ("libstagefright_omx.so", 70, 6, 2),
    ("libaudiopolicy.so", 40, 4, 1),
];

const NET: &[LibSpec] = &[
    ("libnetutils.so", 24, 4, 2),
    ("libwpa_client.so", 12, 2, 1),
    ("libdhcpcd.so", 20, 2, 1),
];

const SYSTEM_MISC: &[LibSpec] = &[
    ("libhardware.so", 16, 2, 2),
    ("libhardware_legacy.so", 40, 4, 2),
    ("libril.so", 60, 6, 1),
    ("libreference-ril.so", 40, 4, 1),
    ("libdiskconfig.so", 12, 2, 1),
    ("libsysutils.so", 30, 4, 1),
    ("libpower.so", 8, 2, 1),
    ("libkeystore.so", 20, 2, 1),
];

impl LibSet {
    fn specs(self) -> &'static [LibSpec] {
        match self {
            LibSet::Core => CORE,
            LibSet::Dalvik => DALVIK,
            LibSet::Graphics => GRAPHICS,
            LibSet::Media => MEDIA,
            LibSet::Net => NET,
            LibSet::SystemMisc => SYSTEM_MISC,
        }
    }
}

/// A weighted set of libraries a process touches; framework operations
/// call [`LibMix::charge`] to spread realistic background traffic across
/// the long tail of mapped regions.
#[derive(Debug, Clone, Default)]
pub struct LibMix {
    entries: Vec<(NameId, u32)>,
    total_weight: u32,
}

impl LibMix {
    /// Maps every library of `sets` into `pid` and returns the mix of the
    /// sprinkle-weighted ones.
    pub fn map_into(kernel: &mut Kernel, pid: Pid, sets: &[LibSet]) -> LibMix {
        let mut entries = Vec::new();
        let mut total_weight = 0;
        for set in sets {
            for &(name, text_kb, data_kb, weight) in set.specs() {
                kernel.map_lib(pid, name, text_kb * 1024, (data_kb * 1024).max(1024));
                if weight > 0 {
                    let id = kernel.intern_region(name);
                    entries.push((id, weight));
                    total_weight += weight;
                }
            }
        }
        LibMix {
            entries,
            total_weight,
        }
    }

    /// Adds an app-specific library to the mix (already mapped).
    pub fn push(&mut self, lib: NameId, weight: u32) {
        self.entries.push((lib, weight));
        self.total_weight += weight;
    }

    /// Charges `total_fetches` instruction fetches spread across the mix
    /// proportionally to weight, plus a touch of data traffic to each
    /// library's data pages (1 read + 1 write per 64 fetches).
    pub fn charge(&self, cx: &mut Ctx<'_>, total_fetches: u64) {
        if self.total_weight == 0 || total_fetches == 0 {
            return;
        }
        for &(lib, weight) in &self.entries {
            let share = total_fetches * u64::from(weight) / u64::from(self.total_weight);
            if share == 0 {
                continue;
            }
            cx.charge(lib, RefKind::InstrFetch, share);
            cx.charge(lib, RefKind::DataRead, share / 48 + 1);
            cx.charge(lib, RefKind::DataWrite, share / 96 + 1);
        }
    }

    /// Number of libraries in the mix.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mix is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_kernel::{Actor, Message};

    #[test]
    fn mapping_creates_distinct_regions() {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("zygote");
        let mix = LibMix::map_into(
            &mut kernel,
            pid,
            &[LibSet::Core, LibSet::Dalvik, LibSet::Graphics],
        );
        assert!(mix.len() >= 15);
        // Each mapped lib has text+data VMAs plus binary/stack baseline.
        assert!(kernel.process(pid).lib_count() >= 30);
    }

    #[test]
    fn charge_spreads_across_the_tail() {
        struct T(LibMix);
        impl Actor for T {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                self.0.charge(cx, 100_000);
            }
        }
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("app");
        let mix = LibMix::map_into(&mut kernel, pid, &[LibSet::Core, LibSet::Dalvik]);
        let tid = kernel.spawn_thread(pid, "main", Box::new(T(mix)));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
        let s = kernel.tracer().summarize("t");
        // Many distinct instruction regions were touched…
        assert!(s.code_region_count() >= 12, "{}", s.code_region_count());
        // …and each sprinkled library saw a little data traffic too.
        assert!(s.data_region_count() >= 12);
        // Proportionality: libc (weight 18) beats libm (weight 4).
        assert!(s.instr_by_region["libc.so"] > s.instr_by_region["libm.so"]);
    }

    #[test]
    fn empty_mix_is_a_noop() {
        struct T(LibMix);
        impl Actor for T {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                self.0.charge(cx, 1_000);
            }
        }
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("app");
        let tid = kernel.spawn_thread(pid, "main", Box::new(T(LibMix::default())));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
        assert_eq!(kernel.tracer().summarize("t").total_instr, 0);
    }
}
