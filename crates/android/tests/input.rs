//! Input pipeline integration: gestures reach the focused app only.

use agave_android::{Android, DisplayConfig, TouchEvent};
use agave_kernel::{Actor, Ctx, Message};
use std::cell::Cell;
use std::rc::Rc;

struct TouchCounter {
    count: Rc<Cell<u32>>,
}

impl Actor for TouchCounter {
    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if TouchEvent::from_message(&msg).is_some() {
            cx.op(50); // input handling
            self.count.set(self.count.get() + 1);
        }
    }
}

#[test]
fn focused_app_receives_gestures() {
    let mut android = Android::boot(DisplayConfig::wvga().scaled(8));
    let env = android.launch_app("org.example.touch", "/data/app/touch.apk");
    let count = Rc::new(Cell::new(0));
    let tid = android.kernel.spawn_thread(
        env.pid,
        &env.main_thread_name(),
        Box::new(TouchCounter {
            count: count.clone(),
        }),
    );
    env.focus_input(tid);
    android.run_ms(3_000);
    // ~1 gesture (4 events) every 800 ms → at least 8 events in 3 s.
    assert!(count.get() >= 8, "only {} touch events", count.get());
    let s = android.kernel.tracer().summarize("touch");
    assert!(s.data_by_region.contains_key("/dev/input/event0"));
    assert!(s.refs_by_thread.contains_key("InputDispatcher"));
    assert!(s.refs_by_thread.contains_key("InputReader"));
}

#[test]
fn unfocused_events_are_dropped() {
    let mut android = Android::boot(DisplayConfig::wvga().scaled(8));
    let env = android.launch_app("org.example.idle", "/data/app/idle.apk");
    let count = Rc::new(Cell::new(0));
    let _tid = android.kernel.spawn_thread(
        env.pid,
        &env.main_thread_name(),
        Box::new(TouchCounter {
            count: count.clone(),
        }),
    );
    // No focus_input call: the dispatcher has nowhere to deliver.
    android.run_ms(2_000);
    assert_eq!(count.get(), 0);
}
