//! Boot-level integration tests: process population, services, launch.

use agave_android::{Android, AppEnv, Canvas, Ctx, DisplayConfig, PixelFormat};

mod helpers {
    use agave_android::{Actor, Ctx, Message};

    pub struct Drive<F>(pub Option<F>);
    impl<F: FnOnce(&mut Ctx<'_>) + 'static> Actor for Drive<F> {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            if let Some(f) = self.0.take() {
                f(cx);
            }
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }
}

use helpers::Drive;

fn booted() -> Android {
    Android::boot(DisplayConfig::wvga().scaled(8))
}

#[test]
fn boot_creates_the_standard_process_population() {
    let mut android = booted();
    android.run_ms(100);
    let names: Vec<String> = (0..android.kernel.process_count())
        .map(|i| {
            android
                .kernel
                .tracer()
                .process_name(agave_android::Pid::from_raw(i as u32))
                .to_owned()
        })
        .collect();
    for expected in [
        "swapper",
        "ata_sff/0",
        "init",
        "servicemanager",
        "zygote",
        "system_server",
        "mediaserver",
        "ndroid.launcher",
        "ndroid.systemui",
        "android.process.acore",
        "com.android.phone",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing process {expected}; have {names:?}"
        );
    }
    // The paper's per-app process counts are 20–34; the baseline world
    // (before the benchmark and its helpers) sits just below that.
    assert!(
        (18..=30).contains(&android.kernel.process_count()),
        "unexpected process count {}",
        android.kernel.process_count()
    );
}

#[test]
fn launch_app_adds_dexopt_defcontainer_and_benchmark() {
    let mut android = booted();
    let app = android.launch_app("org.example.bench", "/data/app/bench.apk");
    // dexopt alone costs ~230 simulated ms for a 900 KiB APK.
    android.run_ms(600);
    let s = android.kernel.tracer().summarize("launch");
    assert!(s.instr_by_process.contains_key("dexopt"));
    assert!(s.instr_by_process.contains_key("id.defcontainer"));
    assert!((20..=34).contains(&android.kernel.process_count()));
    let _ = app;
}

#[test]
fn app_can_open_a_window_and_get_it_composed() {
    let mut android = booted();
    let app = android.launch_app("org.example.draw", "/data/app/draw.apk");
    let env: AppEnv = app.clone();
    let pid = app.pid;
    android.kernel.spawn_thread(
        pid,
        "main",
        Box::new(Drive(Some(move |cx: &mut Ctx<'_>| {
            env.start_activity(cx, "org.example.draw/.Main");
            let win = env.create_fullscreen_window(cx, "draw");
            let mut canvas = Canvas::new(agave_android::Bitmap::new(
                win.width(),
                win.height(),
                PixelFormat::Rgb565,
            ));
            canvas.clear(cx, 0x07ff);
            win.post_buffer(cx, &canvas.into_bitmap());
        }))),
    );
    android.run_ms(300);
    assert!(android.frames_composed() >= 1, "nothing composed");
    let s = android.kernel.tracer().summarize("draw");
    assert!(s.data_by_region.contains_key("fb0 (frame buffer)"));
    assert!(s.data_by_region.contains_key("gralloc-buffer"));
    assert!(s.refs_by_thread["SurfaceFlinger"] > 0);
    // Window creation allocated gralloc inside system_server.
    assert!(s.data_by_process["system_server"] > 0);
}

#[test]
fn framework_playback_charges_mediaserver() {
    let mut android = booted();
    android
        .kernel
        .vfs_mut()
        .add_file("/sdcard/music/track.mp3", 400 * 417, 7);
    let app = android.launch_app("com.android.music", "/data/app/music.apk");
    let env = app.clone();
    android.kernel.spawn_thread(
        app.pid,
        "main",
        Box::new(Drive(Some(move |cx: &mut Ctx<'_>| {
            let player = env.media_player();
            player.play_mp3(cx, "/sdcard/music/track.mp3", true);
        }))),
    );
    android.run_ms(2_000);
    let s = android.kernel.tracer().summarize("music");
    assert!(s.instr_by_region["libstagefright.so"] > 0);
    assert!(s.refs_by_thread["AudioTrackThread"] > 0);
    assert!(s.instr_by_process["mediaserver"] > s.instr_by_process["benchmark"]);
}

#[test]
fn thread_population_is_in_paper_range() {
    let mut android = booted();
    let _app = android.launch_app("x", "/data/app/x.apk");
    android.run_ms(100);
    let threads = android.kernel.thread_count();
    assert!(
        (32..=147).contains(&threads),
        "thread count {threads} outside the paper's 32–147"
    );
}

#[test]
fn systemui_keeps_surfaceflinger_busy() {
    let mut android = booted();
    android.run_ms(3_000);
    // The status-bar clock posts every second → at least 2 compositions.
    assert!(android.frames_composed() >= 2);
    let s = android.kernel.tracer().summarize("idle");
    assert!(s.instr_by_process.contains_key("ndroid.systemui"));
}
