//! Randomized tests for the SPEC kernel algorithms: the compression
//! pipeline is lossless on arbitrary inputs. Inputs come from the
//! in-tree [`XorShift64`] generator with fixed seeds.

use agave_spec::{bw_transform, bw_untransform, huffman_roundtrip, mtf_decode, mtf_encode};
use agave_trace::XorShift64;

const CASES: u64 = 64;

/// BWT is a bijection on nonempty byte strings.
#[test]
fn bwt_round_trips() {
    let mut rng = XorShift64::new(0xb327);
    for _ in 0..CASES {
        let len = rng.range(1, 600) as usize;
        let data = rng.bytes(len);
        let (last, primary) = bw_transform(&data);
        assert_eq!(last.len(), data.len());
        assert_eq!(bw_untransform(&last, primary), data);
    }
}

/// MTF is a bijection.
#[test]
fn mtf_round_trips() {
    let mut rng = XorShift64::new(0x3f7);
    for _ in 0..CASES {
        let len = rng.index(600);
        let data = rng.bytes(len);
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }
}

/// The full pipeline (BWT → MTF → Huffman) round-trips and the
/// Huffman stage never expands beyond ~8.01 bits/byte + header slack.
#[test]
fn full_pipeline_is_lossless() {
    let mut rng = XorShift64::new(0xf0e1);
    for _ in 0..CASES {
        let len = rng.range(1, 400) as usize;
        let data = rng.bytes(len);
        let (last, primary) = bw_transform(&data);
        let mtf = mtf_encode(&last);
        let bits = huffman_roundtrip(&mtf); // asserts decode == encode input
        assert!(
            bits <= mtf.len() * 9 + 16,
            "{bits} bits for {} bytes",
            mtf.len()
        );
        // And back out.
        let recovered = bw_untransform(&mtf_decode(&mtf), primary);
        assert_eq!(recovered, data);
    }
}

/// Repetitive inputs compress: the Huffman stage after BWT+MTF uses
/// well under 8 bits/byte on low-entropy data.
#[test]
fn low_entropy_inputs_compress() {
    let mut rng = XorShift64::new(0x10e0);
    for _ in 0..CASES {
        let byte = rng.byte();
        let run = rng.range(64, 300) as usize;
        let data = vec![byte; run];
        let (last, _) = bw_transform(&data);
        let mtf = mtf_encode(&last);
        let bits = huffman_roundtrip(&mtf);
        assert!(
            bits <= data.len() * 2,
            "{bits} bits for {run} constant bytes"
        );
    }
}
