//! Property tests for the SPEC kernel algorithms: the compression
//! pipeline is lossless on arbitrary inputs.

use agave_spec::{bw_transform, bw_untransform, huffman_roundtrip, mtf_decode, mtf_encode};
use proptest::prelude::*;

proptest! {
    /// BWT is a bijection on nonempty byte strings.
    #[test]
    fn bwt_round_trips(data in proptest::collection::vec(any::<u8>(), 1..600)) {
        let (last, primary) = bw_transform(&data);
        prop_assert_eq!(last.len(), data.len());
        prop_assert_eq!(bw_untransform(&last, primary), data);
    }

    /// MTF is a bijection.
    #[test]
    fn mtf_round_trips(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        prop_assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    /// The full pipeline (BWT → MTF → Huffman) round-trips and the
    /// Huffman stage never expands beyond ~8.01 bits/byte + header slack.
    #[test]
    fn full_pipeline_is_lossless(data in proptest::collection::vec(any::<u8>(), 1..400)) {
        let (last, primary) = bw_transform(&data);
        let mtf = mtf_encode(&last);
        let bits = huffman_roundtrip(&mtf); // asserts decode == encode input
        prop_assert!(bits <= mtf.len() * 9 + 16, "{bits} bits for {} bytes", mtf.len());
        // And back out.
        let recovered = bw_untransform(&mtf_decode(&mtf), primary);
        prop_assert_eq!(recovered, data);
    }

    /// Repetitive inputs compress: the Huffman stage after BWT+MTF uses
    /// well under 8 bits/byte on low-entropy data.
    #[test]
    fn low_entropy_inputs_compress(
        byte in any::<u8>(),
        run in 64usize..300,
    ) {
        let data = vec![byte; run];
        let (last, _) = bw_transform(&data);
        let mtf = mtf_encode(&last);
        let bits = huffman_roundtrip(&mtf);
        prop_assert!(bits <= data.len() * 2, "{bits} bits for {run} constant bytes");
    }
}
