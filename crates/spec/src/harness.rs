//! The single-process SPEC run harness.

use agave_kernel::{Actor, Ctx, Kernel, Message};
use agave_trace::{CounterSnapshot, NameDirectory, RunSummary, SharedSink};

/// The six modeled SPEC CPU2006 programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecProgram {
    /// 401.bzip2 — block compression (RLE + BWT + MTF + Huffman).
    Bzip2,
    /// 429.mcf — min-cost flow (successive shortest paths).
    Mcf,
    /// 456.hmmer — profile-HMM Viterbi alignment.
    Hmmer,
    /// 458.sjeng — alpha-beta game-tree search.
    Sjeng,
    /// 462.libquantum — quantum register simulation (Grover).
    Libquantum,
    /// 999.specrand — the SPEC LCG.
    Specrand,
}

impl SpecProgram {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SpecProgram::Bzip2 => "401.bzip2",
            SpecProgram::Mcf => "429.mcf",
            SpecProgram::Hmmer => "456.hmmer",
            SpecProgram::Sjeng => "458.sjeng",
            SpecProgram::Libquantum => "462.libquantum",
            SpecProgram::Specrand => "999.specrand",
        }
    }
}

/// All six programs in figure order.
pub fn spec_programs() -> [SpecProgram; 6] {
    [
        SpecProgram::Bzip2,
        SpecProgram::Mcf,
        SpecProgram::Hmmer,
        SpecProgram::Sjeng,
        SpecProgram::Libquantum,
        SpecProgram::Specrand,
    ]
}

/// Problem-size knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecConfig {
    /// Input bytes for bzip2 (also sizes the registered input file).
    pub bzip2_input: usize,
    /// Nodes in the mcf network.
    pub mcf_nodes: usize,
    /// Sequence length for hmmer.
    pub hmmer_seq: usize,
    /// Search depth for sjeng.
    pub sjeng_depth: u32,
    /// Qubits for libquantum (state vector is `2^qubits`).
    pub quantum_qubits: u32,
    /// Iterations for specrand.
    pub rand_iters: u64,
}

impl SpecConfig {
    /// A reference-scale run (a few seconds of wall-clock per program).
    pub fn reference() -> Self {
        SpecConfig {
            bzip2_input: 48 * 1024,
            mcf_nodes: 150,
            hmmer_seq: 550,
            sjeng_depth: 4,
            quantum_qubits: 11,
            rand_iters: 450_000,
        }
    }

    /// A fast run for tests and benches.
    pub fn tiny() -> Self {
        SpecConfig {
            bzip2_input: 16 * 1024,
            mcf_nodes: 130,
            hmmer_seq: 300,
            sjeng_depth: 4,
            quantum_qubits: 11,
            rand_iters: 150_000,
        }
    }
}

impl Default for SpecConfig {
    fn default() -> Self {
        Self::reference()
    }
}

struct SpecActor {
    program: SpecProgram,
    config: SpecConfig,
}

impl Actor for SpecActor {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        run_program(cx, self.program, self.config);
        let pid = cx.pid();
        cx.exit_process(pid);
    }

    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}

fn run_program(cx: &mut Ctx<'_>, program: SpecProgram, config: SpecConfig) {
    match program {
        SpecProgram::Bzip2 => crate::bzip2::run(cx, config.bzip2_input),
        SpecProgram::Mcf => crate::mcf::run(cx, config.mcf_nodes),
        SpecProgram::Hmmer => crate::hmmer::run(cx, config.hmmer_seq),
        SpecProgram::Sjeng => crate::sjeng::run(cx, config.sjeng_depth),
        SpecProgram::Libquantum => crate::libquantum::run(cx, config.quantum_qubits),
        SpecProgram::Specrand => crate::specrand::run(cx, config.rand_iters),
    }
}

/// Runs one SPEC program on a bare simulated kernel (no Android — these
/// are the paper's plain-Linux baselines) and returns its summary.
pub fn run_spec(program: SpecProgram, config: SpecConfig) -> RunSummary {
    execute_spec(program, config, Vec::new()).0
}

/// The engine-facing run path every other entry point funnels through.
///
/// Builds a fresh bare kernel, attaches each of `sinks` to its
/// classified reference stream, runs `program` to idle, and returns the
/// run summary (wall time stamped) plus the [`NameDirectory`]. Each call
/// owns its whole world, so concurrent calls from different threads are
/// independent.
pub fn execute_spec(
    program: SpecProgram,
    config: SpecConfig,
    sinks: Vec<SharedSink>,
) -> (RunSummary, NameDirectory) {
    let (summary, directory, _) = execute_spec_traced(program, config, sinks);
    (summary, directory)
}

/// [`execute_spec`] plus the boot-baseline [`CounterSnapshot`].
///
/// SPEC worlds attach sinks to a freshly built kernel, so the snapshot
/// is normally empty — it exists for symmetry with
/// `execute_app_traced`, keeping the `agave-replay` record path
/// world-agnostic.
pub fn execute_spec_traced(
    program: SpecProgram,
    config: SpecConfig,
    sinks: Vec<SharedSink>,
) -> (RunSummary, NameDirectory, CounterSnapshot) {
    let started = std::time::Instant::now();
    let mut kernel = {
        let _boot = agave_telemetry::Span::enter_labeled("boot", program.label());
        Kernel::new()
    };
    for sink in sinks {
        kernel.attach_sink(sink);
    }
    let baseline = kernel.tracer().counter_snapshot();
    // Register the benchmark's input file(s).
    kernel.vfs_mut().add_file(
        "/spec/input.dat",
        (config.bzip2_input.max(64 * 1024)) as u64,
        u64::from(program as u8 as u32) + 17,
    );
    let pid = kernel.spawn_process("benchmark");
    kernel.map_lib(pid, "libc.so", 280 * 1024, 48 * 1024);
    kernel.map_lib(pid, "libm.so", 96 * 1024, 4 * 1024);
    kernel.spawn_thread(
        pid,
        program.label(),
        Box::new(SpecActor { program, config }),
    );
    kernel.run_to_idle();
    // Drain the batched reference stream so sinks are complete before
    // their consumers harvest reports.
    {
        let _flush = agave_telemetry::Span::enter_labeled("sink flush", program.label());
        kernel.tracer_mut().flush_sinks();
    }
    let mut summary = kernel.tracer().summarize(program.label());
    let directory = kernel.tracer().name_directory();
    summary.wall_time_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (summary, directory, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_run_and_look_like_spec() {
        for program in spec_programs() {
            let s = run_spec(program, SpecConfig::tiny());
            assert!(
                s.total_instr > 10_000,
                "{}: too little work",
                program.label()
            );
            let app_share = s.instr_region_share("app binary");
            assert!(
                app_share > 0.5,
                "{}: app binary share {app_share:.2} too low",
                program.label()
            );
            // Few processes, as the paper observes for SPEC.
            assert!(
                s.active_processes <= 4,
                "{}: {} active processes",
                program.label(),
                s.active_processes
            );
        }
    }

    #[test]
    fn mcf_uses_anonymous_memory_but_specrand_does_not() {
        let mcf = run_spec(SpecProgram::Mcf, SpecConfig::tiny());
        assert!(
            mcf.data_region_share("anonymous") > 0.2,
            "mcf anonymous share {:.3}",
            mcf.data_region_share("anonymous")
        );
        let sr = run_spec(SpecProgram::Specrand, SpecConfig::tiny());
        assert!(sr.data_region_share("anonymous") < 0.05);
    }

    #[test]
    fn bzip2_reads_its_input_through_ata() {
        let s = run_spec(SpecProgram::Bzip2, SpecConfig::tiny());
        assert!(s.instr_by_process.contains_key("ata_sff/0"));
    }

    #[test]
    fn sjeng_is_stack_heavy() {
        let s = run_spec(SpecProgram::Sjeng, SpecConfig::tiny());
        assert!(
            s.data_region_share("stack") > 0.2,
            "sjeng stack share {:.3}",
            s.data_region_share("stack")
        );
    }

    #[test]
    fn labels_are_figure_exact() {
        assert_eq!(SpecProgram::Bzip2.label(), "401.bzip2");
        assert_eq!(SpecProgram::Specrand.label(), "999.specrand");
        assert_eq!(spec_programs().len(), 6);
    }
}
