//! 401.bzip2 — block compression: BWT + move-to-front + Huffman.
//!
//! The pipeline (and its inverse) is fully implemented so the tests can
//! verify `decompress(compress(x)) == x`; the run harness compresses the
//! registered input file block by block.

use agave_kernel::{Ctx, RefKind};
use std::collections::BinaryHeap;

/// Block size processed per iteration (bzip2 uses 100k–900k; the mini
/// model uses 8 KiB to keep rotation sorting cheap).
const BLOCK: usize = 8 * 1024;

/// Burrows–Wheeler transform: returns (last column, primary index).
pub fn bw_transform(block: &[u8]) -> (Vec<u8>, usize) {
    let n = block.len();
    assert!(n > 0, "empty BWT block");
    // Sort rotation start indices by comparing doubled data.
    let doubled: Vec<u8> = block.iter().chain(block.iter()).copied().collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| doubled[a..a + n].cmp(&doubled[b..b + n]));
    let mut last = Vec::with_capacity(n);
    let mut primary = 0;
    for (rank, &i) in idx.iter().enumerate() {
        last.push(doubled[i + n - 1]);
        if i == 0 {
            primary = rank;
        }
    }
    (last, primary)
}

/// Inverse BWT.
pub fn bw_untransform(last: &[u8], primary: usize) -> Vec<u8> {
    let n = last.len();
    assert!(primary < n, "primary index out of range");
    // LF-mapping via counting sort.
    let mut counts = [0usize; 256];
    for &b in last {
        counts[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0;
    for (b, &c) in counts.iter().enumerate() {
        starts[b] = acc;
        acc += c;
    }
    let mut next = vec![0usize; n];
    let mut seen = [0usize; 256];
    for (i, &b) in last.iter().enumerate() {
        next[starts[b as usize] + seen[b as usize]] = i;
        seen[b as usize] += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut p = next[primary];
    for _ in 0..n {
        out.push(last[p]);
        p = next[p];
    }
    out
}

/// Move-to-front encoding.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let pos = table.iter().position(|&t| t == b).expect("byte in table") as u8;
            let v = table.remove(pos as usize);
            table.insert(0, v);
            pos
        })
        .collect()
}

/// Move-to-front decoding.
pub fn mtf_decode(codes: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    codes
        .iter()
        .map(|&pos| {
            let v = table.remove(pos as usize);
            table.insert(0, v);
            v
        })
        .collect()
}

/// Huffman-encodes `data`, returning the bitstream length in bits after a
/// real tree build and encode/decode round trip. Exposed primarily for the
/// property tests.
pub fn huffman_roundtrip(data: &[u8]) -> usize {
    let (bits, lens) = huffman_encode(data);
    let decoded = huffman_decode(&bits, &lens, data.len());
    assert_eq!(decoded, data, "huffman round trip failed");
    bits.len()
}

#[derive(PartialEq, Eq)]
struct Node {
    weight: u64,
    id: usize,
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by weight, tie-broken by id for determinism.
        (other.weight, other.id).cmp(&(self.weight, self.id))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Canonical-ish Huffman: build code lengths and encode to a bit vector.
fn huffman_encode(data: &[u8]) -> (Vec<bool>, Vec<(u8, Vec<bool>)>) {
    let mut freq = [0u64; 256];
    for &b in data {
        freq[b as usize] += 1;
    }
    let symbols: Vec<u8> = (0..=255u8).filter(|&b| freq[b as usize] > 0).collect();
    if symbols.len() == 1 {
        // Degenerate single-symbol block: one bit per symbol.
        let code = vec![(symbols[0], vec![false])];
        return (vec![false; data.len()], code);
    }
    // Build the tree.
    let mut heap = BinaryHeap::new();
    let mut parents: Vec<(usize, usize)> = Vec::new(); // (left, right)
    let mut leaves: Vec<u8> = Vec::new();
    for &s in &symbols {
        heap.push(Node {
            weight: freq[s as usize],
            id: leaves.len(),
        });
        leaves.push(s);
        parents.push((usize::MAX, usize::MAX));
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("two nodes");
        let b = heap.pop().expect("two nodes");
        let id = parents.len();
        parents.push((a.id, b.id));
        heap.push(Node {
            weight: a.weight + b.weight,
            id,
        });
    }
    let root = heap.pop().expect("root").id;
    // Derive codes by walking down.
    let mut codes: Vec<(u8, Vec<bool>)> = Vec::new();
    let mut stack = vec![(root, Vec::new())];
    while let Some((node, path)) = stack.pop() {
        let (l, r) = parents[node];
        if l == usize::MAX {
            codes.push((leaves[node], path));
        } else {
            let mut lp = path.clone();
            lp.push(false);
            stack.push((l, lp));
            let mut rp = path;
            rp.push(true);
            stack.push((r, rp));
        }
    }
    let mut bits = Vec::with_capacity(data.len() * 4);
    for &b in data {
        let code = &codes
            .iter()
            .find(|(s, _)| *s == b)
            .expect("symbol has code")
            .1;
        bits.extend_from_slice(code);
    }
    (bits, codes)
}

fn huffman_decode(bits: &[bool], codes: &[(u8, Vec<bool>)], count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(count);
    let mut pos = 0;
    'outer: while out.len() < count {
        for (sym, code) in codes {
            if bits[pos..].starts_with(code) {
                out.push(*sym);
                pos += code.len();
                continue 'outer;
            }
        }
        panic!("no code matches at bit {pos}");
    }
    out
}

/// The benchmark body: read the input file and compress it block by
/// block (verifying each block round-trips).
pub(crate) fn run(cx: &mut Ctx<'_>, input_bytes: usize) {
    let wk = cx.well_known();
    let work = cx.malloc(4 * BLOCK as u64); // block + BWT scratch
    let mut offset = 0u64;
    let mut compressed_bits = 0usize;
    while (offset as usize) < input_bytes {
        let mut block = vec![0u8; BLOCK.min(input_bytes - offset as usize)];
        let n = cx.fs_read("/spec/input.dat", offset, &mut block);
        if n == 0 {
            break;
        }
        block.truncate(n);
        offset += n as u64;

        let (last, primary) = bw_transform(&block);
        let mtf = mtf_encode(&last);
        compressed_bits += huffman_roundtrip(&mtf);
        // Verify the lossless path end to end.
        debug_assert_eq!(bw_untransform(&last, primary), block);

        // Charge what the passes did: rotation sort ~ n log n compares,
        // each compare touching heap bytes; MTF ~ 40n; Huffman ~ 30n.
        let nn = n as u64;
        let logn = 64 - (nn.max(2)).leading_zeros() as u64;
        cx.op(nn * logn * 7 + nn * 30);
        cx.charge(wk.heap, RefKind::DataRead, nn * logn * 2 + nn * 4);
        cx.charge(wk.heap, RefKind::DataWrite, nn * 3);
        cx.stack_rw(nn / 2, nn / 4);
    }
    cx.free(work);
    assert!(compressed_bits > 0, "compressed nothing");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwt_round_trips() {
        for data in [
            b"banana_bandana".to_vec(),
            vec![7u8; 100],
            (0..=255u8).collect::<Vec<_>>(),
            b"a".to_vec(),
        ] {
            let (last, primary) = bw_transform(&data);
            assert_eq!(bw_untransform(&last, primary), data);
        }
    }

    #[test]
    fn bwt_groups_similar_context() {
        // BWT of repetitive text produces long runs → MTF output is mostly
        // small values.
        let data = b"the quick brown fox the quick brown fox the quick brown fox".to_vec();
        let (last, _) = bw_transform(&data);
        let mtf = mtf_encode(&last);
        let zeros = mtf.iter().filter(|&&b| b == 0).count();
        assert!(zeros * 3 > data.len(), "only {zeros} zeros");
    }

    #[test]
    fn mtf_round_trips() {
        let data: Vec<u8> = (0..500).map(|i| ((i * i) % 251) as u8).collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn huffman_compresses_skewed_input() {
        let mut data = vec![0u8; 900];
        data.extend_from_slice(&[1u8; 90]);
        data.extend_from_slice(&[2u8; 10]);
        let bits = huffman_roundtrip(&data);
        assert!(bits < data.len() * 8 / 4, "no compression: {bits} bits");
    }

    #[test]
    fn huffman_handles_degenerate_single_symbol() {
        assert_eq!(huffman_roundtrip(&[9u8; 50]), 50);
    }
}
