//! 456.hmmer — profile-HMM Viterbi alignment.
//!
//! A real Viterbi dynamic program over a synthetic profile HMM
//! (match/insert/delete states) against a generated protein-like sequence,
//! with the three DP matrices in heap memory.

use agave_kernel::{Ctx, RefKind};

const ALPHABET: usize = 20; // amino acids
const NEG_INF: i64 = i64::MIN / 4;

/// A profile HMM with integer log-odds scores (hmmer works in scaled
/// integer log space too).
#[derive(Debug)]
struct Profile {
    m: usize,
    match_emit: Vec<[i64; ALPHABET]>,
    insert_emit: Vec<[i64; ALPHABET]>,
    /// [m][0..3]: M→M, M→I, M→D
    trans: Vec<[i64; 7]>,
}

fn build_profile(m: usize, seed: u64) -> Profile {
    let mut s = seed | 1;
    let mut r = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut match_emit = Vec::with_capacity(m + 1);
    let mut insert_emit = Vec::with_capacity(m + 1);
    let mut trans = Vec::with_capacity(m + 1);
    for _ in 0..=m {
        let mut me = [0i64; ALPHABET];
        let mut ie = [0i64; ALPHABET];
        for a in 0..ALPHABET {
            me[a] = (r() % 13) as i64 - 8; // mostly negative, some positive
            ie[a] = (r() % 7) as i64 - 5;
        }
        // Make one consensus residue strongly positive per column.
        me[(r() % ALPHABET as u64) as usize] = 6 + (r() % 5) as i64;
        match_emit.push(me);
        insert_emit.push(ie);
        trans.push([
            -(1 + (r() % 3) as i64), // M→M
            -(6 + (r() % 6) as i64), // M→I
            -(7 + (r() % 6) as i64), // M→D
            -(2 + (r() % 3) as i64), // I→M
            -(3 + (r() % 4) as i64), // I→I
            -(2 + (r() % 3) as i64), // D→M
            -(5 + (r() % 4) as i64), // D→D
        ]);
    }
    Profile {
        m,
        match_emit,
        insert_emit,
        trans,
    }
}

fn generate_sequence(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) % ALPHABET as u64) as u8
        })
        .collect()
}

/// The Viterbi fill: returns the best path score and the number of DP
/// cells computed.
fn viterbi(profile: &Profile, seq: &[u8]) -> (i64, u64) {
    let m = profile.m;
    let l = seq.len();
    let w = m + 1;
    let mut vm = vec![NEG_INF; (l + 1) * w];
    let mut vi = vec![NEG_INF; (l + 1) * w];
    let mut vd = vec![NEG_INF; (l + 1) * w];
    vm[0] = 0;
    let mut cells = 0u64;
    for i in 1..=l {
        let x = seq[i - 1] as usize;
        for k in 1..=m {
            cells += 1;
            let t = &profile.trans[k - 1];
            let prev = (i - 1) * w + (k - 1);
            let best_m = (vm[prev] + t[0]).max(vi[prev] + t[3]).max(vd[prev] + t[5]);
            vm[i * w + k] = best_m.max(NEG_INF) + profile.match_emit[k][x];
            let up = (i - 1) * w + k;
            vi[i * w + k] = (vm[up] + t[1]).max(vi[up] + t[4]) + profile.insert_emit[k][x];
            let left = i * w + (k - 1);
            vd[i * w + k] = (vm[left] + t[2]).max(vd[left] + t[6]);
        }
    }
    let mut best = NEG_INF;
    for k in 1..=m {
        best = best.max(vm[l * w + k]);
    }
    (best, cells)
}

/// The benchmark body.
pub(crate) fn run(cx: &mut Ctx<'_>, seq_len: usize) {
    let wk = cx.well_known();
    let m = (seq_len / 8).clamp(24, 160);
    let profile = build_profile(m, 0xABCD);
    // DP matrices in heap memory (three i64 planes).
    let alloc = cx.malloc((3 * (seq_len + 1) * (m + 1) * 8) as u64);
    let region = match alloc.kind {
        agave_mem::AllocationKind::Anonymous => wk.anonymous,
        agave_mem::AllocationKind::Heap => wk.heap,
    };
    let mut total_cells = 0u64;
    let mut best_any = NEG_INF;
    // hmmer scans many sequences against one profile.
    for chunk in 0..4 {
        let seq = generate_sequence(seq_len, 0x1000 + chunk);
        let (score, cells) = viterbi(&profile, &seq);
        best_any = best_any.max(score);
        total_cells += cells;
    }
    // Per cell: ~9 max/add ops, 7 reads (three planes + scores), 3 writes.
    cx.op(total_cells * 22);
    cx.charge(region, RefKind::DataRead, total_cells * 7);
    cx.charge(region, RefKind::DataWrite, total_cells * 3);
    cx.stack_rw(total_cells / 4, total_cells / 8);
    assert!(best_any > NEG_INF / 2, "no alignment found");
    cx.free(alloc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viterbi_scores_consensus_higher_than_random() {
        let profile = build_profile(30, 42);
        // A consensus sequence: best match residue per column.
        let consensus: Vec<u8> = (1..=30)
            .map(|k| {
                let me = &profile.match_emit[k];
                (0..ALPHABET).max_by_key(|&a| me[a]).unwrap() as u8
            })
            .collect();
        let (good, _) = viterbi(&profile, &consensus);
        let random = generate_sequence(30, 7);
        let (bad, _) = viterbi(&profile, &random);
        assert!(good > bad, "consensus {good} ≤ random {bad}");
    }

    #[test]
    fn viterbi_is_deterministic_and_counts_cells() {
        let profile = build_profile(20, 1);
        let seq = generate_sequence(50, 2);
        let (s1, c1) = viterbi(&profile, &seq);
        let (s2, c2) = viterbi(&profile, &seq);
        assert_eq!((s1, c1), (s2, c2));
        assert_eq!(c1, 50 * 20);
    }

    #[test]
    fn longer_sequences_do_more_work() {
        let profile = build_profile(20, 1);
        let (_, short) = viterbi(&profile, &generate_sequence(20, 3));
        let (_, long) = viterbi(&profile, &generate_sequence(200, 3));
        assert_eq!(long, short * 10);
    }
}
