//! 429.mcf — minimum-cost flow via successive shortest paths.
//!
//! A real solver over a synthetic transportation network. Its arc arrays
//! are allocated through the modeled C allocator in one large block, which
//! crosses `MMAP_THRESHOLD` and therefore lands in the *anonymous* region —
//! the exact effect the paper calls out for mcf's data references.

use agave_kernel::{Ctx, RefKind};
use agave_mem::AllocationKind;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    capacity: i64,
    cost: i64,
    flow: i64,
    /// Index of the reverse arc.
    rev: usize,
}

/// Builds a layered transportation network: sources → depots → sinks.
fn build_network(nodes: usize) -> (Vec<Vec<Arc>>, usize, usize) {
    assert!(nodes >= 8, "network too small");
    let n = nodes + 2;
    let source = nodes;
    let sink = nodes + 1;
    let mut graph: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let third = nodes / 3;
    let mut seed = 0x3c6ef372u64;
    let mut rand = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as i64
    };
    let add_edge = |graph: &mut Vec<Vec<Arc>>, u: usize, v: usize, cap: i64, cost: i64| {
        let ui = graph[u].len();
        let vi = graph[v].len();
        graph[u].push(Arc {
            to: v,
            capacity: cap,
            cost,
            flow: 0,
            rev: vi,
        });
        graph[v].push(Arc {
            to: u,
            capacity: 0,
            cost: -cost,
            flow: 0,
            rev: ui,
        });
    };
    for s in 0..third {
        add_edge(&mut graph, source, s, 4 + rand() % 4, 0);
        for k in 0..4 {
            let depot = third + ((s * 7 + k * 3) % third.max(1));
            add_edge(&mut graph, s, depot, 3 + rand() % 3, 1 + rand() % 20);
        }
    }
    for d in third..2 * third {
        for k in 0..4 {
            let t = 2 * third + ((d * 5 + k) % third.max(1));
            add_edge(&mut graph, d, t, 3 + rand() % 3, 1 + rand() % 20);
        }
    }
    for t in 2 * third..3 * third {
        add_edge(&mut graph, t, sink, 4 + rand() % 4, 0);
    }
    (graph, source, sink)
}

/// Successive-shortest-paths with Bellman-Ford; returns (flow, cost).
fn min_cost_flow(
    graph: &mut [Vec<Arc>],
    source: usize,
    sink: usize,
    mut on_relax: impl FnMut(u64),
) -> (i64, i64) {
    let n = graph.len();
    let mut total_flow = 0;
    let mut total_cost = 0;
    loop {
        // Bellman-Ford over residual arcs.
        let mut dist = vec![i64::MAX / 4; n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
        dist[source] = 0;
        let mut relaxations = 0u64;
        for _ in 0..n {
            let mut changed = false;
            for u in 0..n {
                if dist[u] >= i64::MAX / 4 {
                    continue;
                }
                for (ai, arc) in graph[u].iter().enumerate() {
                    relaxations += 1;
                    if arc.capacity - arc.flow > 0 && dist[u] + arc.cost < dist[arc.to] {
                        dist[arc.to] = dist[u] + arc.cost;
                        prev[arc.to] = Some((u, ai));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        on_relax(relaxations);
        if prev[sink].is_none() {
            break;
        }
        // Find bottleneck.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while let Some((u, ai)) = prev[v] {
            let arc = &graph[u][ai];
            bottleneck = bottleneck.min(arc.capacity - arc.flow);
            v = u;
        }
        // Augment.
        let mut v = sink;
        while let Some((u, ai)) = prev[v] {
            let rev = graph[u][ai].rev;
            graph[u][ai].flow += bottleneck;
            total_cost += bottleneck * graph[u][ai].cost;
            graph[v][rev].flow -= bottleneck;
            v = u;
        }
        total_flow += bottleneck;
    }
    (total_flow, total_cost)
}

/// The benchmark body.
pub(crate) fn run(cx: &mut Ctx<'_>, nodes: usize) {
    let wk = cx.well_known();
    let (mut graph, source, sink) = build_network(nodes);
    let arcs: usize = graph.iter().map(Vec::len).sum();
    // mcf's node/arc arrays: one big allocation, as the real code does.
    // 48 bytes per arc plus node headers — deliberately ≥ MMAP_THRESHOLD
    // so it lands in anonymous memory.
    let alloc = cx.malloc(((arcs * 48 + nodes * 32) as u64).max(144 * 1024));
    let data_region = match alloc.kind {
        AllocationKind::Anonymous => wk.anonymous,
        AllocationKind::Heap => wk.heap,
    };

    let (flow, cost) = min_cost_flow(&mut graph, source, sink, |relaxations| {
        // Each relaxation reads an arc record and maybe writes dist/prev.
        cx.op(relaxations * 3);
        cx.charge(data_region, RefKind::DataRead, relaxations * 2);
        cx.charge(data_region, RefKind::DataWrite, relaxations / 4);
        cx.stack_rw(relaxations / 8, relaxations / 16);
    });
    assert!(flow > 0, "network carried no flow");
    assert!(cost > 0, "flow had no cost");
    cx.free(alloc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_finds_optimal_flow_on_known_graph() {
        // source →(cap2,cost1) a →(cap2,cost1) sink, plus a pricier
        // parallel path; optimum pushes 2 units on the cheap path then 1
        // on the expensive one.
        let mut graph: Vec<Vec<Arc>> = vec![Vec::new(); 4];
        let add = |g: &mut Vec<Vec<Arc>>, u: usize, v: usize, cap: i64, cost: i64| {
            let ui = g[u].len();
            let vi = g[v].len();
            g[u].push(Arc {
                to: v,
                capacity: cap,
                cost,
                flow: 0,
                rev: vi,
            });
            g[v].push(Arc {
                to: u,
                capacity: 0,
                cost: -cost,
                flow: 0,
                rev: ui,
            });
        };
        add(&mut graph, 0, 1, 2, 1);
        add(&mut graph, 1, 3, 2, 1);
        add(&mut graph, 0, 2, 1, 5);
        add(&mut graph, 2, 3, 1, 5);
        let (flow, cost) = min_cost_flow(&mut graph, 0, 3, |_| {});
        assert_eq!(flow, 3);
        assert_eq!(cost, 2 * 2 + 10);
    }

    #[test]
    fn synthetic_network_is_solvable_and_deterministic() {
        let (mut g1, s, t) = build_network(60);
        let (f1, c1) = min_cost_flow(&mut g1, s, t, |_| {});
        let (mut g2, s2, t2) = build_network(60);
        let (f2, c2) = min_cost_flow(&mut g2, s2, t2, |_| {});
        assert!(f1 > 0);
        assert_eq!((f1, c1), (f2, c2));
    }

    #[test]
    fn flow_conservation_holds() {
        let (mut g, s, t) = build_network(45);
        min_cost_flow(&mut g, s, t, |_| {});
        // Net flow at interior nodes is zero.
        for (v, arcs) in g.iter().enumerate() {
            if v == s || v == t {
                continue;
            }
            let net: i64 = arcs.iter().map(|a| a.flow).sum();
            assert_eq!(net, 0, "node {v} violates conservation");
        }
    }
}
