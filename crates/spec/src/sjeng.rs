//! 458.sjeng — alpha-beta game-tree search.
//!
//! A real negamax search with alpha-beta pruning and a Zobrist-hashed
//! transposition table over a deterministic 5×5 four-in-a-row game. Like
//! the original chess engine, it is recursion- (stack-) heavy with a hash
//! table in the heap.

use agave_kernel::{Ctx, RefKind};
use std::collections::HashMap;

const SIZE: usize = 5;
const CELLS: usize = SIZE * SIZE;
const WIN: usize = 4;

#[derive(Debug, Clone)]
struct Board {
    /// 0 empty, 1 player to maximize, 2 opponent.
    cells: [u8; CELLS],
    hash: u64,
    zobrist: [[u64; 2]; CELLS],
}

impl Board {
    fn new() -> Self {
        let mut z = [[0u64; 2]; CELLS];
        let mut s = 0x243f6a8885a308d3u64;
        for cell in &mut z {
            for side in cell.iter_mut() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                *side = s;
            }
        }
        Board {
            cells: [0; CELLS],
            hash: 0,
            zobrist: z,
        }
    }

    fn place(&mut self, idx: usize, player: u8) {
        debug_assert_eq!(self.cells[idx], 0);
        self.cells[idx] = player;
        self.hash ^= self.zobrist[idx][player as usize - 1];
    }

    fn remove(&mut self, idx: usize, player: u8) {
        debug_assert_eq!(self.cells[idx], player);
        self.cells[idx] = 0;
        self.hash ^= self.zobrist[idx][player as usize - 1];
    }

    /// Longest run through each cell for `player`, and a win check.
    fn line_score(&self, player: u8) -> (i32, bool) {
        let dirs = [(1isize, 0isize), (0, 1), (1, 1), (1, -1)];
        let mut score = 0;
        let mut won = false;
        for y in 0..SIZE as isize {
            for x in 0..SIZE as isize {
                if self.cells[(y as usize) * SIZE + x as usize] != player {
                    continue;
                }
                for (dx, dy) in dirs {
                    let mut run = 1;
                    let (mut cx_, mut cy) = (x + dx, y + dy);
                    while cx_ >= 0
                        && cy >= 0
                        && cx_ < SIZE as isize
                        && cy < SIZE as isize
                        && self.cells[(cy as usize) * SIZE + cx_ as usize] == player
                    {
                        run += 1;
                        cx_ += dx;
                        cy += dy;
                    }
                    if run >= WIN {
                        won = true;
                    }
                    score += (run * run) as i32;
                }
            }
        }
        (score, won)
    }

    fn evaluate(&self) -> i32 {
        let (mine, my_win) = self.line_score(1);
        let (theirs, their_win) = self.line_score(2);
        if my_win {
            10_000
        } else if their_win {
            -10_000
        } else {
            mine - theirs
        }
    }
}

#[derive(Debug, Default)]
struct SearchStats {
    nodes: u64,
    tt_hits: u64,
    tt_probes: u64,
}

fn negamax(
    board: &mut Board,
    tt: &mut HashMap<u64, (u32, i32)>,
    depth: u32,
    mut alpha: i32,
    beta: i32,
    player: u8,
    stats: &mut SearchStats,
) -> i32 {
    stats.nodes += 1;
    stats.tt_probes += 1;
    if let Some(&(d, score)) = tt.get(&(board.hash ^ u64::from(player))) {
        if d >= depth {
            stats.tt_hits += 1;
            return score;
        }
    }
    let sign = if player == 1 { 1 } else { -1 };
    let eval = board.evaluate() * sign;
    if depth == 0 || eval.abs() >= 10_000 {
        return eval;
    }
    let mut best = i32::MIN / 2;
    let opponent = 3 - player;
    for idx in 0..CELLS {
        if board.cells[idx] != 0 {
            continue;
        }
        board.place(idx, player);
        let score = -negamax(board, tt, depth - 1, -beta, -alpha, opponent, stats);
        board.remove(idx, player);
        if score > best {
            best = score;
        }
        if best > alpha {
            alpha = best;
        }
        if alpha >= beta {
            break; // cutoff
        }
    }
    if best == i32::MIN / 2 {
        return eval; // board full
    }
    tt.insert(board.hash ^ u64::from(player), (depth, best));
    best
}

/// The benchmark body: play out a short deterministic game, searching each
/// position to `depth`.
pub(crate) fn run(cx: &mut Ctx<'_>, depth: u32) {
    let wk = cx.well_known();
    let tt_alloc = cx.malloc(96 * 1024);
    let mut board = Board::new();
    let mut tt = HashMap::new();
    let mut stats = SearchStats::default();
    let mut player = 1u8;
    // Play a few plies of a deterministic game (the searches dominate).
    for _ply in 0..3 {
        let mut best_move = None;
        let mut best_score = i32::MIN / 2;
        for idx in 0..CELLS {
            if board.cells[idx] != 0 {
                continue;
            }
            board.place(idx, player);
            let score = -negamax(
                &mut board,
                &mut tt,
                depth - 1,
                -i32::MAX / 2,
                i32::MAX / 2,
                3 - player,
                &mut stats,
            );
            board.remove(idx, player);
            if score > best_score {
                best_score = score;
                best_move = Some(idx);
            }
        }
        let mv = best_move.expect("a legal move");
        board.place(mv, player);
        player = 3 - player;
    }
    // Charge: per node ~140 evaluate/move-gen fetches, 10 stack refs
    // (recursion frames), TT probes in the heap.
    cx.op(stats.nodes * 50);
    cx.stack_rw(stats.nodes * 5, stats.nodes * 3);
    cx.charge(wk.heap, RefKind::DataRead, stats.tt_probes * 3);
    cx.charge(wk.heap, RefKind::DataWrite, stats.nodes);
    assert!(stats.nodes > 1_000, "search did no work");
    cx.free(tt_alloc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_detects_wins() {
        let mut b = Board::new();
        for i in 0..WIN {
            b.place(i, 1); // top row
        }
        assert_eq!(b.evaluate(), 10_000);
        let mut b2 = Board::new();
        for i in 0..WIN {
            b2.place(i * SIZE, 2); // left column
        }
        assert_eq!(b2.evaluate(), -10_000);
    }

    #[test]
    fn zobrist_hash_is_incremental() {
        let mut b = Board::new();
        let h0 = b.hash;
        b.place(7, 1);
        b.place(8, 2);
        b.remove(8, 2);
        b.remove(7, 1);
        assert_eq!(b.hash, h0);
    }

    #[test]
    fn search_blocks_an_immediate_threat() {
        // Opponent (2) has three in a row; a depth-2 search for player 1
        // must respond to the threat.
        let mut b = Board::new();
        b.place(0, 2);
        b.place(1, 2);
        b.place(2, 2);
        let mut tt = HashMap::new();
        let mut stats = SearchStats::default();
        let mut best_move = None;
        let mut best = i32::MIN / 2;
        for idx in 0..CELLS {
            if b.cells[idx] != 0 {
                continue;
            }
            b.place(idx, 1);
            let s = -negamax(
                &mut b,
                &mut tt,
                2,
                -i32::MAX / 2,
                i32::MAX / 2,
                2,
                &mut stats,
            );
            b.remove(idx, 1);
            if s > best {
                best = s;
                best_move = Some(idx);
            }
        }
        assert_eq!(best_move, Some(3), "must block at cell 3");
    }

    #[test]
    fn deeper_search_expands_more_nodes() {
        let mut stats_shallow = SearchStats::default();
        let mut stats_deep = SearchStats::default();
        for (depth, stats) in [(2u32, &mut stats_shallow), (4, &mut stats_deep)] {
            let mut b = Board::new();
            b.place(12, 1);
            let mut tt = HashMap::new();
            negamax(
                &mut b,
                &mut tt,
                depth,
                -i32::MAX / 2,
                i32::MAX / 2,
                2,
                stats,
            );
        }
        assert!(stats_deep.nodes > stats_shallow.nodes * 5);
    }

    #[test]
    fn transposition_table_hits() {
        let mut b = Board::new();
        let mut tt = HashMap::new();
        let mut stats = SearchStats::default();
        negamax(
            &mut b,
            &mut tt,
            4,
            -i32::MAX / 2,
            i32::MAX / 2,
            1,
            &mut stats,
        );
        assert!(stats.tt_hits > 0, "no TT hits in a transposing game");
    }
}
