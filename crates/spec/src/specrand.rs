//! 999.specrand — the SPEC harness's LCG, exercised in a tight loop.
//!
//! The smallest SPEC "benchmark": nearly all instruction fetches from the
//! application binary, a touch of stack traffic, no heap to speak of —
//! the flattest bar in the paper's figures.

use agave_kernel::Ctx;

/// The SPEC `specrand` LCG step.
fn spec_rand(seed: &mut i64) -> f64 {
    // rand(): seed = seed*69069 + 1; return high bits scaled to [0,1).
    *seed = seed.wrapping_mul(69069).wrapping_add(1) & 0x7fff_ffff;
    (*seed as f64) / (0x8000_0000u32 as f64)
}

/// The benchmark body: draw `iters` numbers and accumulate statistics.
pub(crate) fn run(cx: &mut Ctx<'_>, iters: u64) {
    let mut seed: i64 = 314_159_265;
    let mut sum = 0.0f64;
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    for _ in 0..iters {
        let v = spec_rand(&mut seed);
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    // ~9 instructions and 3 stack references per draw.
    cx.op(iters * 9);
    cx.stack_rw(iters * 2, iters);
    let mean = sum / iters as f64;
    assert!((0.4..0.6).contains(&mean), "LCG mean off: {mean}");
    assert!(min >= 0.0 && max < 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut s1 = 42i64;
        let mut s2 = 42i64;
        for _ in 0..100 {
            assert_eq!(spec_rand(&mut s1).to_bits(), spec_rand(&mut s2).to_bits());
        }
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let mut seed = 1i64;
        for _ in 0..10_000 {
            let v = spec_rand(&mut seed);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut seed = 7i64;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| spec_rand(&mut seed)).sum();
        let mean = sum / n as f64;
        assert!((0.45..0.55).contains(&mean), "{mean}");
    }
}
