//! Miniature SPEC CPU2006 baselines on the Agave simulated kernel.
//!
//! The paper contrasts Agave's rich process/region structure with six SPEC
//! CPU2006 workloads whose references come almost entirely from the
//! application binary, the OS kernel, and the classic text/heap/stack
//! regions — with the `ata_sff/0` storage thread as the only notable
//! companion process.
//!
//! Each module here is a *real* (if small) implementation of the
//! benchmark's core algorithm — block compression for 401.bzip2, min-cost
//! flow for 429.mcf, profile-HMM Viterbi for 456.hmmer, alpha-beta game
//! search for 458.sjeng, quantum register simulation for 462.libquantum,
//! and the SPEC LCG for 999.specrand — run as a single-threaded process on
//! the simulated kernel, with its data placed through the modeled C
//! allocator (so 429.mcf's large arrays land in *anonymous* mmap, exactly
//! the `MMAP_THRESHOLD` effect the paper points out).
//!
//! # Example
//!
//! ```
//! use agave_spec::{run_spec, SpecConfig, SpecProgram};
//!
//! let summary = run_spec(SpecProgram::Specrand, SpecConfig::tiny());
//! // SPEC shape: the app binary dominates instruction fetches.
//! assert!(summary.instr_region_share("app binary") > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bzip2;
mod harness;
mod hmmer;
mod libquantum;
mod mcf;
mod sjeng;
mod specrand;

pub use bzip2::{bw_transform, bw_untransform, huffman_roundtrip, mtf_decode, mtf_encode};
pub use harness::{
    execute_spec, execute_spec_traced, run_spec, spec_programs, SpecConfig, SpecProgram,
};
