//! 462.libquantum — quantum register simulation running Grover search.
//!
//! A real state-vector simulator: Hadamard walls, an oracle phase flip and
//! the diffusion operator, iterated ⌊π/4·√N⌋ times. The amplitude array is
//! the benchmark's signature large allocation.

use agave_kernel::{Ctx, RefKind};
use agave_mem::AllocationKind;

/// A quantum register as a dense amplitude vector.
#[derive(Debug)]
struct Register {
    amps: Vec<(f64, f64)>,
}

impl Register {
    fn new(n: u32) -> Self {
        let mut amps = vec![(0.0, 0.0); 1 << n];
        amps[0] = (1.0, 0.0);
        Register { amps }
    }

    /// Applies a Hadamard to `qubit`.
    fn hadamard(&mut self, qubit: u32) {
        let stride = 1usize << qubit;
        let norm = std::f64::consts::FRAC_1_SQRT_2;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                let a = self.amps[i];
                let b = self.amps[i + stride];
                self.amps[i] = (norm * (a.0 + b.0), norm * (a.1 + b.1));
                self.amps[i + stride] = (norm * (a.0 - b.0), norm * (a.1 - b.1));
            }
            base += stride * 2;
        }
    }

    /// Phase-flips the marked state (the Grover oracle).
    fn oracle(&mut self, marked: usize) {
        let a = &mut self.amps[marked];
        *a = (-a.0, -a.1);
    }

    /// Inversion about the mean (the Grover diffusion operator).
    fn diffuse(&mut self) {
        let len = self.amps.len() as f64;
        let mean_re: f64 = self.amps.iter().map(|a| a.0).sum::<f64>() / len;
        let mean_im: f64 = self.amps.iter().map(|a| a.1).sum::<f64>() / len;
        for a in &mut self.amps {
            *a = (2.0 * mean_re - a.0, 2.0 * mean_im - a.1);
        }
    }

    fn probability(&self, state: usize) -> f64 {
        let a = self.amps[state];
        a.0 * a.0 + a.1 * a.1
    }

    #[cfg(test)]
    fn total_probability(&self) -> f64 {
        self.amps.iter().map(|a| a.0 * a.0 + a.1 * a.1).sum()
    }
}

/// Runs Grover search for `marked` on `n` qubits; returns the final
/// success probability and the number of amplitude updates performed.
fn grover(n: u32, marked: usize) -> (f64, u64) {
    let mut reg = Register::new(n);
    let size = 1u64 << n;
    for q in 0..n {
        reg.hadamard(q);
    }
    let iterations = (std::f64::consts::FRAC_PI_4 * ((1u64 << n) as f64).sqrt()).floor() as u64;
    let mut updates = u64::from(n) * size;
    for _ in 0..iterations.max(1) {
        reg.oracle(marked);
        reg.diffuse();
        updates += 2 * size + 1;
    }
    (reg.probability(marked), updates)
}

/// The benchmark body.
pub(crate) fn run(cx: &mut Ctx<'_>, qubits: u32) {
    let wk = cx.well_known();
    let qubits = qubits.clamp(6, 22);
    // The amplitude array: 16 bytes per state.
    let alloc = cx.malloc(16 * (1u64 << qubits));
    let region = match alloc.kind {
        AllocationKind::Anonymous => wk.anonymous,
        AllocationKind::Heap => wk.heap,
    };
    let marked = ((1usize << qubits) * 5) / 7;
    let (prob, updates) = grover(qubits, marked);
    // Per amplitude update: ~12 FP ops, read+write the pair.
    cx.op(updates * 12);
    cx.charge(region, RefKind::DataRead, updates * 4);
    cx.charge(region, RefKind::DataWrite, updates * 4);
    cx.stack_rw(updates / 16, updates / 32);
    assert!(
        prob > 0.5,
        "Grover failed to amplify the marked state: p = {prob}"
    );
    cx.free(alloc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_wall_uniform_superposition() {
        let mut reg = Register::new(4);
        for q in 0..4 {
            reg.hadamard(q);
        }
        let expect = 1.0 / 16.0;
        for s in 0..16 {
            assert!((reg.probability(s) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn hadamard_is_its_own_inverse() {
        let mut reg = Register::new(3);
        reg.hadamard(1);
        reg.hadamard(1);
        assert!((reg.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grover_amplifies_the_marked_state() {
        let (prob, _) = grover(8, 200);
        assert!(prob > 0.9, "p = {prob}");
        // The unmarked states are suppressed.
        let mut reg = Register::new(8);
        for q in 0..8 {
            reg.hadamard(q);
        }
        assert!(reg.probability(200) < 0.01);
    }

    #[test]
    fn unitarity_preserves_total_probability() {
        let mut reg = Register::new(6);
        for q in 0..6 {
            reg.hadamard(q);
        }
        reg.oracle(17);
        reg.diffuse();
        assert!((reg.total_probability() - 1.0).abs() < 1e-9);
    }
}
