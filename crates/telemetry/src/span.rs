//! Phase-scoped spans: RAII timers that form a per-run tree.
//!
//! A [`Span`] measures one phase — a boot, a workload run, a sink
//! flush, a replay decode. Spans nest via a thread-local current-parent
//! cell: entering a span makes it the parent of any span entered on the
//! same thread until it drops. Parallel workers are stitched under a
//! coordinator's span with [`set_thread_parent`], so a `--jobs 16`
//! suite run still produces one tree.
//!
//! Completed spans land in a process-global log (one `Mutex` push per
//! span — spans are phase-granular, so this is nowhere near a hot
//! path). [`take_spans`] drains the log for export.
//!
//! When telemetry is disabled ([`crate::enabled`] is false) every
//! constructor returns an inert span: no clock read, no allocation, no
//! lock.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A completed span, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique nonzero id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// The phase name ("boot", "run", "sink flush", …).
    pub name: &'static str,
    /// Free-form qualifier (workload label, trace file, …); may be empty.
    pub label: String,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the telemetry epoch.
    pub end_ns: u64,
    /// The entering thread's [`crate::thread_ordinal`].
    pub thread: usize,
    /// References charged during the span (0 if not applicable).
    pub refs: u64,
    /// Explicit sibling sort key (workload index), so tree order is
    /// deterministic under work stealing. 0 if unset.
    pub order: u64,
}

impl SpanRecord {
    /// The span's wall time in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static SPAN_LOG: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// The id of the innermost live span on this thread (0 = none).
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    label: String,
    start_ns: u64,
    refs: u64,
    order: u64,
}

/// An RAII phase timer. Construct with [`Span::enter`]; the span closes
/// (and is appended to the global log) when dropped, on the thread that
/// entered it.
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Enters a span named `name` under the thread's current parent.
    /// Inert (free) when telemetry is disabled.
    pub fn enter(name: &'static str) -> Span {
        Span::enter_labeled(name, "")
    }

    /// Enters a span with a free-form qualifier label.
    pub fn enter_labeled(name: &'static str, label: &str) -> Span {
        if !crate::enabled() {
            return Span(None);
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_PARENT.with(|c| c.replace(id));
        Span(Some(ActiveSpan {
            id,
            parent,
            name,
            label: label.to_string(),
            start_ns: crate::now_ns(),
            refs: 0,
            order: 0,
        }))
    }

    /// Attaches a charged-reference count to the span.
    pub fn set_refs(&mut self, refs: u64) {
        if let Some(a) = &mut self.0 {
            a.refs = refs;
        }
    }

    /// Sets the deterministic sibling sort key (e.g. workload index).
    pub fn set_order(&mut self, order: u64) {
        if let Some(a) = &mut self.0 {
            a.order = order;
        }
    }

    /// The span's id, for parenting other threads under it (0 if inert).
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            CURRENT_PARENT.with(|c| c.set(a.parent));
            let record = SpanRecord {
                id: a.id,
                parent: a.parent,
                name: a.name,
                label: a.label,
                start_ns: a.start_ns,
                end_ns: crate::now_ns(),
                thread: crate::thread_ordinal(),
                refs: a.refs,
                order: a.order,
            };
            SPAN_LOG.lock().expect("span log poisoned").push(record);
        }
    }
}

/// RAII guard restoring a thread's previous parent span on drop. See
/// [`set_thread_parent`].
pub struct ThreadParent {
    prev: u64,
}

/// Makes `parent` the base parent for spans entered on *this* thread —
/// the bridge that nests parallel workers' spans under a coordinator's
/// span. Returns a guard restoring the previous parent on drop.
pub fn set_thread_parent(parent: u64) -> ThreadParent {
    let prev = CURRENT_PARENT.with(|c| c.replace(parent));
    ThreadParent { prev }
}

impl Drop for ThreadParent {
    fn drop(&mut self) {
        CURRENT_PARENT.with(|c| c.set(self.prev));
    }
}

/// Appends an already-completed span with explicit timestamps — for
/// phases whose start predates the thread that closes them (e.g. a
/// request's queue wait, which begins in the acceptor but is recorded
/// by the worker). Returns the new span's id, or 0 when telemetry is
/// disabled.
pub fn record_closed(
    name: &'static str,
    label: &str,
    start_ns: u64,
    end_ns: u64,
    parent: u64,
    refs: u64,
) -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let record = SpanRecord {
        id,
        parent,
        name,
        label: label.to_string(),
        start_ns,
        end_ns,
        thread: crate::thread_ordinal(),
        refs,
        order: 0,
    };
    SPAN_LOG.lock().expect("span log poisoned").push(record);
    id
}

/// Drains the completed-span log (in completion order).
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *SPAN_LOG.lock().expect("span log poisoned"))
}

/// Copies the completed-span log without draining it.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    SPAN_LOG.lock().expect("span log poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_GUARD;

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = TEST_GUARD.lock().unwrap();
        crate::set_enabled(false);
        let before = snapshot_spans().len();
        {
            let mut s = Span::enter("noop");
            assert_eq!(s.id(), 0);
            s.set_refs(42);
        }
        assert_eq!(snapshot_spans().len(), before);
    }

    #[test]
    fn record_closed_lands_in_the_log_with_explicit_bounds() {
        let _guard = TEST_GUARD.lock().unwrap();
        crate::set_enabled(false);
        assert_eq!(record_closed("queue wait", "x", 1, 2, 0, 0), 0);
        crate::set_enabled(true);
        take_spans();
        let parent = Span::enter("serve request");
        let id = record_closed("queue wait", "upload", 100, 350, parent.id(), 7);
        assert_ne!(id, 0);
        drop(parent);
        crate::set_enabled(false);
        let spans = take_spans();
        let wait = spans.iter().find(|s| s.name == "queue wait").unwrap();
        assert_eq!(wait.start_ns, 100);
        assert_eq!(wait.end_ns, 350);
        assert_eq!(wait.wall_ns(), 250);
        assert_eq!(wait.refs, 7);
        let req = spans.iter().find(|s| s.name == "serve request").unwrap();
        assert_eq!(wait.parent, req.id);
    }

    #[test]
    fn spans_nest_on_one_thread_and_across_threads() {
        let _guard = TEST_GUARD.lock().unwrap();
        crate::set_enabled(true);
        take_spans();
        let outer_id;
        {
            let outer = Span::enter("outer");
            outer_id = outer.id();
            {
                let inner = Span::enter_labeled("inner", "x");
                assert_ne!(inner.id(), outer.id());
            }
            // A worker thread stitched under the outer span.
            let outer_for_worker = outer.id();
            std::thread::spawn(move || {
                let _parent = set_thread_parent(outer_for_worker);
                let _child = Span::enter("worker-child");
            })
            .join()
            .unwrap();
        }
        crate::set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let child = spans.iter().find(|s| s.name == "worker-child").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(child.parent, outer_id);
        assert_eq!(outer.id, outer_id);
        assert_eq!(inner.label, "x");
        assert!(outer.wall_ns() >= inner.wall_ns());
    }
}
