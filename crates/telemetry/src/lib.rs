//! **agave-telemetry** — self-profiling for the simulator that profiles
//! Android.
//!
//! The suite's whole premise is that you cannot understand a software
//! stack you cannot observe; this crate applies the same standard to the
//! reproduction itself. It provides, with zero external dependencies:
//!
//! * a [metrics](crate::metrics) registry — lock-free per-thread-sharded
//!   [`Counter`]s, [`Gauge`]s, and log2-bucketed [`Histogram`]s,
//!   aggregated only on [`scrape`];
//! * phase-scoped [`Span`]s (boot, per-workload run, sink flush,
//!   hierarchy walk, record encode, replay decode) carrying wall time
//!   and reference counts, exportable as a span tree and as Chrome
//!   trace-event JSON (loadable in `chrome://tracing` / Perfetto);
//! * live stderr [`Heartbeat`]s for parallel suite/record runs
//!   (per-worker current workload, refs/s, ETA);
//! * the rendering helpers behind `agave stats` and the CLI timing
//!   table.
//!
//! # The disabled path costs one branch
//!
//! Everything is gated behind a single process-global relaxed
//! [`AtomicBool`](std::sync::atomic::AtomicBool). Instrumented sites
//! call [`enabled`] — one relaxed load — and skip all work when it
//! returns `false`. Instrumentation is placed only at *batch* and
//! *phase* granularity (a sink batch is 1024 reference blocks; a span is
//! a whole boot or run), never per reference, so the disabled-path
//! overhead is a branch per thousands of simulated references. The
//! `telemetry_overhead` bench in `agave-bench` asserts the implied
//! overhead stays under 2%.
//!
//! Telemetry output never touches analysis output: metrics and spans are
//! written to a separate file (`--telemetry out.json`) or stderr, so
//! `RunSummary`/`CacheReport` JSON stays byte-identical whether
//! telemetry is on or off.
//!
//! # Example
//!
//! ```
//! use agave_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! {
//!     let mut span = telemetry::Span::enter_labeled("run", "demo.workload");
//!     telemetry::metrics::counter("demo.batches").add(3);
//!     span.set_refs(1_000_000);
//! }
//! let snapshot = telemetry::capture();
//! assert_eq!(snapshot.spans.len(), 1);
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod format;
pub mod heartbeat;
mod jsonw;
pub mod metrics;
pub mod parse;
pub mod span;
pub mod stats;

pub use export::{capture, capture_live, TelemetryFormat, TelemetrySnapshot};
pub use heartbeat::{Heartbeat, Ticker};
pub use metrics::{scrape, Counter, Gauge, Histogram, HistogramData, MetricsSnapshot};
pub use span::{record_closed, set_thread_parent, take_spans, Span, SpanRecord, ThreadParent};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-global telemetry gate.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off for the whole process.
///
/// Enabling also pins the wall-clock epoch (all span timestamps are
/// nanoseconds since the first enable), so spans from different threads
/// share one timeline.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is collecting. One relaxed load — this is the
/// entire cost an instrumented site pays when telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The shared timeline origin (pinned on first use).
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the telemetry epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's small dense ordinal (0, 1, 2, … in first-use order).
///
/// Used to pick a metrics shard and to label spans/heartbeats with a
/// stable worker id; unrelated to the OS thread id.
pub fn thread_ordinal() -> usize {
    ORDINAL.with(|cell| {
        let current = cell.get();
        if current != usize::MAX {
            return current;
        }
        let assigned = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
        cell.set(assigned);
        assigned
    })
}

/// Serializes unit tests that toggle the process-global enable flag or
/// drain the span log, so `cargo test`'s threaded runner can't
/// interleave them.
#[cfg(test)]
pub(crate) static TEST_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal(), "ordinal must be sticky");
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, other, "each thread gets its own ordinal");
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
