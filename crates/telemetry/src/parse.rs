//! A minimal JSON reader for `agave stats`.
//!
//! The workspace's JSON story has always been write-only (hand-rolled
//! emitters, no crates.io); `agave stats <telemetry.json>` is the first
//! consumer, so this module adds the read side: a small
//! recursive-descent parser into a [`Value`] tree. It handles exactly
//! the JSON the workspace emits (objects, arrays, strings with the
//! standard escapes, numbers, booleans, null) — it is not a general
//! validator. Numbers are held as `f64`; span timestamps are epoch-
//! relative nanoseconds (hours fit losslessly in an `f64`'s 53-bit
//! mantissa) and everything else `agave stats` prints is approximate by
//! design.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (lookups only).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (rounding), if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs don't occur in our own output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        let b = v.get("b").unwrap();
        assert_eq!(b.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(b.get("d"), Some(&Value::Bool(true)));
        assert_eq!(b.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip_our_writer() {
        let emitted = crate::jsonw::Obj::new()
            .str("s", "tab\there \"q\" π µs")
            .finish();
        let v = parse(&emitted).unwrap();
        assert_eq!(
            v.get("s").and_then(Value::as_str),
            Some("tab\there \"q\" π µs")
        );
    }
}
