//! Rendering a saved telemetry file — the `agave stats` verb.
//!
//! Reads the native schema emitted by
//! [`crate::TelemetrySnapshot::to_json`], rebuilds the span tree
//! (children sorted by explicit `order`, then start time, then id — so
//! the listing is deterministic even though work-stealing completion
//! order is not), and renders it alongside the busiest histograms and
//! counters.

use crate::format::{fmt_count, fmt_ns, fmt_rate, refs_per_sec};
use crate::metrics::Histogram;
use crate::parse::Value;

struct SpanRow {
    id: u64,
    parent: u64,
    name: String,
    label: String,
    start_ns: u64,
    wall_ns: u64,
    thread: u64,
    refs: u64,
    order: u64,
}

fn span_rows(doc: &Value) -> Vec<SpanRow> {
    let Some(spans) = doc.get("spans").and_then(Value::as_array) else {
        return Vec::new();
    };
    spans
        .iter()
        .filter_map(|s| {
            let field = |k: &str| s.get(k).and_then(Value::as_u64).unwrap_or(0);
            Some(SpanRow {
                id: s.get("id").and_then(Value::as_u64)?,
                parent: field("parent"),
                name: s.get("name").and_then(Value::as_str)?.to_string(),
                label: s
                    .get("label")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                start_ns: field("start_ns"),
                wall_ns: field("end_ns").saturating_sub(field("start_ns")),
                thread: field("thread"),
                refs: field("refs"),
                order: field("order"),
            })
        })
        .collect()
}

fn render_span_tree(rows: &[SpanRow], out: &mut String) {
    if rows.is_empty() {
        out.push_str("span tree: (no spans recorded)\n");
        return;
    }
    out.push_str("span tree\n");
    let ids: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.id).collect();
    // Children of each parent (0 / unknown parent = root), sorted
    // deterministically.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&i| (rows[i].order, rows[i].start_ns, rows[i].id));
    let mut children: std::collections::BTreeMap<u64, Vec<usize>> =
        std::collections::BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for &i in &order {
        let parent = rows[i].parent;
        if parent == 0 || !ids.contains(&parent) {
            roots.push(i);
        } else {
            children.entry(parent).or_default().push(i);
        }
    }
    fn emit(
        rows: &[SpanRow],
        children: &std::collections::BTreeMap<u64, Vec<usize>>,
        i: usize,
        depth: usize,
        out: &mut String,
    ) {
        let r = &rows[i];
        let head = if r.label.is_empty() {
            r.name.clone()
        } else {
            format!("{} {}", r.name, r.label)
        };
        let mut line = format!("{:indent$}{head}", "", indent = depth * 2);
        while line.chars().count() < 40 {
            line.push(' ');
        }
        line.push_str(&format!("{:>10}", fmt_ns(r.wall_ns)));
        if r.refs > 0 {
            line.push_str(&format!(
                "  {:>8} refs  {:>10}",
                fmt_count(r.refs),
                fmt_rate(refs_per_sec(r.refs, r.wall_ns))
            ));
        }
        line.push_str(&format!("  [t{}]", r.thread));
        out.push_str(&line);
        out.push('\n');
        if let Some(kids) = children.get(&r.id) {
            for &k in kids {
                emit(rows, children, k, depth + 1, out);
            }
        }
    }
    for &root in &roots {
        emit(rows, &children, root, 0, out);
    }
}

fn render_histograms(doc: &Value, top: usize, out: &mut String) {
    let Some(hists) = doc.get("histograms").and_then(Value::as_array) else {
        return;
    };
    type HistRow<'a> = (&'a str, u64, u64, Vec<(usize, u64)>);
    let mut rows: Vec<HistRow> = hists
        .iter()
        .filter_map(|h| {
            let buckets = h
                .get("buckets")
                .and_then(Value::as_array)?
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_u64()? as usize, pair.get(1)?.as_u64()?))
                })
                .collect();
            Some((
                h.get("name").and_then(Value::as_str)?,
                h.get("count").and_then(Value::as_u64)?,
                h.get("sum").and_then(Value::as_u64)?,
                buckets,
            ))
        })
        .filter(|(_, count, _, _)| *count > 0)
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    out.push_str("\ntop histograms (by sample count)\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>12} {:>12} {:>12}\n",
        "name", "count", "mean", "~p50", "~p99"
    ));
    for (name, count, sum, buckets) in rows.into_iter().take(top) {
        let quantile = |q: f64| -> u64 {
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for &(i, c) in &buckets {
                seen += c;
                if seen >= rank {
                    return Histogram::bucket_hi(i);
                }
            }
            buckets.last().map_or(0, |&(i, _)| Histogram::bucket_hi(i))
        };
        out.push_str(&format!(
            "{:<28} {:>10} {:>12.1} {:>12} {:>12}\n",
            name,
            fmt_count(count),
            sum as f64 / count as f64,
            quantile(0.5),
            quantile(0.99),
        ));
    }
}

fn render_counters(doc: &Value, out: &mut String) {
    let Some(counters) = doc.get("counters").and_then(Value::as_object) else {
        return;
    };
    let mut rows: Vec<(&String, u64)> = counters
        .iter()
        .filter_map(|(name, v)| v.as_u64().map(|v| (name, v)))
        .filter(|(_, v)| *v > 0)
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    out.push_str("\ncounters\n");
    for (name, v) in rows {
        out.push_str(&format!("{:<28} {:>14}\n", name, v));
    }
}

/// Renders a parsed telemetry document: span tree, top histograms,
/// non-zero counters. Errors on schema mismatch.
pub fn render(doc: &Value) -> Result<String, String> {
    let version = doc
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("not a telemetry file: missing schema_version")?;
    if version != crate::export::SCHEMA_VERSION {
        return Err(format!(
            "unsupported telemetry schema_version {version} (expected {})",
            crate::export::SCHEMA_VERSION
        ));
    }
    let mut out = String::new();
    render_span_tree(&span_rows(doc), &mut out);
    render_histograms(doc, 5, &mut out);
    render_counters(doc, &mut out);
    Ok(out)
}

/// Parses and renders a telemetry JSON string in one step.
pub fn render_str(json: &str) -> Result<String, String> {
    render(&crate::parse::parse(json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::TelemetrySnapshot;
    use crate::metrics::{HistogramData, MetricsSnapshot};
    use crate::span::SpanRecord;

    fn span(id: u64, parent: u64, name: &'static str, label: &str, order: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            label: label.to_string(),
            start_ns: 1_000 * id,
            end_ns: 1_000 * id + 5_000_000,
            thread: 0,
            refs: 1_000_000,
            order,
        }
    }

    #[test]
    fn renders_a_deterministic_tree_and_tables() {
        let snap = TelemetrySnapshot {
            metrics: MetricsSnapshot {
                counters: vec![("trace.sink_batches".into(), 41)],
                gauges: vec![],
                histograms: vec![HistogramData {
                    name: "trace.batch_blocks".into(),
                    count: 41,
                    sum: 41_000,
                    buckets: vec![(10, 41)],
                }],
            },
            // Completion order is children-first and scrambled; render
            // order must follow `order`, not input order.
            spans: vec![
                span(3, 1, "run", "b.workload", 2),
                span(2, 1, "run", "a.workload", 1),
                span(1, 0, "suite", "", 0),
            ],
        };
        let text = render_str(&snap.to_json()).unwrap();
        let suite_pos = text.find("suite").unwrap();
        let a_pos = text.find("run a.workload").unwrap();
        let b_pos = text.find("run b.workload").unwrap();
        assert!(suite_pos < a_pos && a_pos < b_pos, "tree order:\n{text}");
        assert!(text.contains("trace.batch_blocks"), "{text}");
        assert!(text.contains("trace.sink_batches"), "{text}");
        assert!(text.contains("5.0 ms"), "{text}");
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        assert!(render_str("{\"schema_version\":99}").is_err());
        assert!(render_str("{}").is_err());
        assert!(render_str("not json").is_err());
    }
}
