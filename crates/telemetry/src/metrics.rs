//! The metrics registry: sharded counters, gauges, and log2 histograms.
//!
//! All metric handles are `&'static` — created once, leaked, and cached
//! by call sites (typically in a `OnceLock`), so the steady-state cost
//! of an update is an index into a padded shard array and one relaxed
//! `fetch_add`. No lock is taken anywhere on the update path; the
//! registry's `Mutex` guards only name→handle resolution and
//! [`scrape`].
//!
//! # Sharding
//!
//! Each counter/histogram owns [`SHARDS`] cache-line-padded atomic
//! cells; a thread updates the cell indexed by
//! [`crate::thread_ordinal`]` % SHARDS`, so parallel suite workers
//! almost never contend on a line. [`scrape`] sums the shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of padded shards per counter/histogram. A power of two so the
/// shard pick is a mask, comfortably above typical `--jobs` values.
pub const SHARDS: usize = 16;

/// Number of histogram buckets: bucket 0 holds zero values, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64.
pub const BUCKETS: usize = 65;

/// One cache line's worth of atomic counter, padded so shards never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// A monotonically increasing, per-thread-sharded counter.
pub struct Counter {
    shards: [PaddedCell; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: Default::default(),
        }
    }

    /// Adds `v` to this thread's shard (relaxed; lock-free).
    #[inline]
    pub fn add(&self, v: u64) {
        let shard = crate::thread_ordinal() & (SHARDS - 1);
        self.shards[shard].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The summed value across shards (scrape-time only).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins instantaneous value (worker counts, config knobs).
pub struct Gauge(AtomicU64);

impl Gauge {
    fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// One histogram shard: 65 log2 buckets plus count/sum, padded to its
/// own cache lines.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed, per-thread-sharded histogram of `u64` samples.
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            shards: Default::default(),
        }
    }

    /// The bucket index for a value: 0 for 0, else `64 - leading_zeros`
    /// (so bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one sample into this thread's shard (relaxed; lock-free).
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[crate::thread_ordinal() & (SHARDS - 1)];
        shard.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Aggregates the shards into a plain-data snapshot.
    pub fn data(&self, name: &str) -> HistogramData {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for shard in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(&shard.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += shard.sum.load(Ordering::Relaxed);
        }
        HistogramData {
            name: name.to_string(),
            count,
            sum,
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c != 0)
                .map(|(i, c)| (i as u8, *c))
                .collect(),
        }
    }

    fn reset(&self) {
        for shard in &self.shards {
            for b in &shard.buckets {
                b.store(0, Ordering::Relaxed);
            }
            shard.count.store(0, Ordering::Relaxed);
            shard.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// An aggregated histogram: total count, total sum, and the non-empty
/// `(bucket index, count)` pairs in index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// The registered metric name.
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramData {
    /// The mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// upper edge of the bucket containing that rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_hi(i as usize);
            }
        }
        Histogram::bucket_hi(self.buckets.last().map_or(0, |&(i, _)| i as usize))
    }

    /// A linearly interpolated estimate of the `q`-quantile: the rank's
    /// position *within* its log2 bucket is mapped linearly onto the
    /// bucket's `[lo, hi]` value range. Because bucket `i ≥ 1` spans
    /// `[2^(i-1), 2^i - 1]`, the estimate is off by at most one bucket
    /// width, i.e. a factor of 2 in the worst case — tight enough for
    /// dashboard p50/p99 from live scrapes.
    pub fn quantile_interp(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            if (seen + c) as f64 >= rank {
                let lo = Histogram::bucket_lo(i as usize) as f64;
                let hi = Histogram::bucket_hi(i as usize) as f64;
                let into = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * into.clamp(0.0, 1.0);
            }
            seen += c;
        }
        Histogram::bucket_hi(self.buckets.last().map_or(0, |&(i, _)| i as usize)) as f64
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Resolves (registering on first use) the counter named `name`.
///
/// Call sites on warm paths should cache the returned handle in a
/// `OnceLock` rather than re-resolving per update.
pub fn counter(name: &'static str) -> &'static Counter {
    registry()
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Resolves (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    registry()
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// Resolves (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// A point-in-time aggregation of every registered metric, sorted by
/// name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, summed value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, u64)>,
    /// Aggregated data for every registered histogram.
    pub histograms: Vec<HistogramData>,
}

/// Aggregates every registered metric. Scrape-time only — never on the
/// hot path.
pub fn scrape() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, c)| (name.to_string(), c.value()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, g)| (name.to_string(), g.value()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(name, h)| h.data(name))
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric (tests and back-to-back CLI runs).
pub fn reset_metrics() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        c.reset();
    }
    for g in reg
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        g.reset();
    }
    for h in reg
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 1..=64usize {
            let lo = Histogram::bucket_lo(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lower edge of bucket {i}");
            let hi = Histogram::bucket_hi(i);
            assert_eq!(Histogram::bucket_of(hi), i, "upper edge of bucket {i}");
        }
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = counter("test.metrics.counter_sums");
        c.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(2);
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn histogram_aggregates_count_sum_and_quantiles() {
        let h = histogram("test.metrics.hist_agg");
        h.reset();
        for v in [0u64, 1, 1, 5, 5, 5, 1000] {
            h.record(v);
        }
        let data = h.data("test.metrics.hist_agg");
        assert_eq!(data.count, 7);
        assert_eq!(data.sum, 1017);
        assert!((data.mean() - 1017.0 / 7.0).abs() < 1e-9);
        // Median falls in the [4,7] bucket; p100 upper bound covers 1000.
        assert_eq!(data.quantile(0.5), 7);
        assert!(data.quantile(1.0) >= 1000);
    }

    #[test]
    fn interpolated_quantile_stays_within_the_rank_bucket() {
        let h = histogram("test.metrics.hist_interp");
        h.reset();
        for v in [0u64, 1, 1, 5, 5, 5, 1000] {
            h.record(v);
        }
        let data = h.data("test.metrics.hist_interp");
        assert_eq!(data.quantile_interp(0.0), 0.0);
        // The median rank lands in the [4,7] bucket; the interpolated
        // value must stay inside it.
        let p50 = data.quantile_interp(0.5);
        assert!((4.0..=7.0).contains(&p50), "p50 = {p50}");
        // The top rank lands in the bucket holding 1000.
        let p100 = data.quantile_interp(1.0);
        assert!((512.0..=1023.0).contains(&p100), "p100 = {p100}");
        // Interpolation is monotone in q.
        assert!(data.quantile_interp(0.99) <= p100);
        // Empty histogram → 0.
        let empty = HistogramData {
            name: "e".into(),
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile_interp(0.5), 0.0);
    }

    #[test]
    fn registry_hands_back_the_same_leaked_handle() {
        let a = counter("test.metrics.same_handle") as *const Counter;
        let b = counter("test.metrics.same_handle") as *const Counter;
        assert_eq!(a, b);
    }
}
