//! Human-facing rendering helpers: durations, rates, and the CLI
//! timing table.
//!
//! The suite's timing table used to be ad-hoc `format!` calls in
//! `bin/agave.rs` and `agave_core::SuiteResults`; centralizing it here
//! gives every surface (CLI, `agave stats`, heartbeats) one notion of
//! "how do we print a wall time / a throughput" — including the guard
//! against sub-microsecond wall times, which previously printed absurd
//! refs/s figures for trivial workloads.

/// Wall times below this are too coarse-grained to divide by: a
/// `refs/s` computed from a sub-microsecond measurement is clock noise,
/// not a throughput.
pub const MIN_RATE_WINDOW_NS: u64 = 1_000;

/// `refs / wall` as refs-per-second, or `None` when the window is below
/// [`MIN_RATE_WINDOW_NS`] (the caller renders "n/a" or 0).
pub fn refs_per_sec(refs: u64, wall_ns: u64) -> Option<f64> {
    if wall_ns < MIN_RATE_WINDOW_NS {
        None
    } else {
        Some(refs as f64 * 1e9 / wall_ns as f64)
    }
}

/// Renders a nanosecond duration at a human scale: `387 ns`, `12.4 µs`,
/// `80.1 ms`, `2.35 s`.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// Renders a count with an SI suffix: `831`, `47.1k`, `1.95M`, `3.2G`.
pub fn fmt_count(n: u64) -> String {
    let v = n as f64;
    if v < 1e3 {
        format!("{n}")
    } else if v < 1e6 {
        format!("{:.1}k", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2}M", v / 1e6)
    } else {
        format!("{:.2}G", v / 1e9)
    }
}

/// Renders a refs-per-second rate (already computed), e.g. `4.5e8/s`.
pub fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{r:.3e}/s"),
        None => "n/a".to_string(),
    }
}

/// The per-workload host-timing table: label, wall ms, refs/s, plus a
/// totals row. One renderer for `agave run`, `agave suite`, and
/// `agave stats`.
#[derive(Debug, Clone, Default)]
pub struct TimingTable {
    rows: Vec<(String, u64, u64)>,
}

impl TimingTable {
    /// An empty table.
    pub fn new() -> TimingTable {
        TimingTable::default()
    }

    /// Appends one row: a label, its wall time, and its charged refs.
    pub fn row(&mut self, label: &str, wall_ns: u64, refs: u64) {
        self.rows.push((label.to_string(), wall_ns, refs));
    }

    /// Renders the table. Rates from sub-microsecond windows print as 0
    /// (the historical column stays numeric for easy parsing).
    pub fn render(&self, title: &str, totals_label: &str) -> String {
        let mut out = format!("{title}\n");
        out.push_str(&format!(
            "{:<22} {:>12} {:>14}\n",
            "benchmark", "wall ms", "refs/sec"
        ));
        let mut total_ns: u64 = 0;
        let mut total_refs: u64 = 0;
        for (label, wall_ns, refs) in &self.rows {
            total_ns += wall_ns;
            total_refs += refs;
            out.push_str(&format!(
                "{:<22} {:>12.2} {:>14.3e}\n",
                label,
                *wall_ns as f64 / 1e6,
                refs_per_sec(*refs, *wall_ns).unwrap_or(0.0),
            ));
        }
        out.push_str(&format!(
            "{:<22} {:>12.2} {:>14.3e}  (sum of per-run wall times)\n",
            totals_label,
            total_ns as f64 / 1e6,
            refs_per_sec(total_refs, total_ns).unwrap_or(0.0),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_microsecond_windows_never_produce_a_rate() {
        assert_eq!(refs_per_sec(1_000_000, 0), None);
        assert_eq!(refs_per_sec(1_000_000, 999), None);
        let r = refs_per_sec(1_000_000, 1_000).unwrap();
        assert!((r - 1e12).abs() < 1.0);
        assert_eq!(refs_per_sec(5, 1_000_000_000), Some(5.0));
    }

    #[test]
    fn durations_render_at_each_scale() {
        assert_eq!(fmt_ns(17), "17 ns");
        assert_eq!(fmt_ns(12_400), "12.4 µs");
        assert_eq!(fmt_ns(80_100_000), "80.1 ms");
        assert_eq!(fmt_ns(2_350_000_000), "2.35 s");
    }

    #[test]
    fn counts_render_with_si_suffixes() {
        assert_eq!(fmt_count(831), "831");
        assert_eq!(fmt_count(47_100), "47.1k");
        assert_eq!(fmt_count(1_950_000), "1.95M");
        assert_eq!(fmt_count(3_200_000_000), "3.20G");
    }

    #[test]
    fn timing_table_guards_absurd_rates_and_sums_totals() {
        let mut t = TimingTable::new();
        t.row("fast.trivial", 120, 1_000_000); // sub-µs: rate must be 0
        t.row("real.workload", 2_000_000, 4_000_000);
        let s = t.render("Per-workload host timing", "suite total");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Per-workload host timing");
        assert!(lines[2].contains("fast.trivial"));
        assert!(
            lines[2].contains("0.000e0"),
            "sub-µs wall must render a zero rate, got: {}",
            lines[2]
        );
        assert!(lines[3].contains("2.000e9"), "line: {}", lines[3]);
        assert!(lines[4].starts_with("suite total"));
        assert!(lines[4].contains("(sum of per-run wall times)"));
    }
}
