//! Live progress heartbeats for parallel suite/record runs.
//!
//! A `--jobs 16` suite run used to emit nothing between "running 25
//! workloads…" and the final table. A [`Heartbeat`] spawns one ticker
//! thread that prints a status line to stderr roughly once a second:
//! items done, per-worker current workload, cumulative refs, refs/s,
//! and an ETA extrapolated from completed items. Workers call
//! [`Heartbeat::begin_item`] / [`Heartbeat::finish_item`]; both are a
//! handful of atomic ops / one small mutex touch per *workload*, far
//! off any hot path.
//!
//! Heartbeats are telemetry: when [`crate::enabled`] is false,
//! [`Heartbeat::start`] returns an inert handle (no thread, no output),
//! so plain runs' stderr is unchanged.

use crate::format::{fmt_count, fmt_rate, refs_per_sec};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Shared {
    phase: &'static str,
    total: usize,
    done: AtomicUsize,
    refs: AtomicU64,
    stop: AtomicBool,
    started: Instant,
    /// worker thread ordinal → label of the item it is running.
    active: Mutex<BTreeMap<usize, String>>,
}

impl Shared {
    fn status_line(&self) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let refs = self.refs.load(Ordering::Relaxed);
        let elapsed_ns = self.started.elapsed().as_nanos() as u64;
        let active = self.active.lock().expect("heartbeat state poisoned");
        let running: Vec<&str> = active.values().map(String::as_str).collect();
        let eta = if done > 0 && done < self.total {
            let per_item_ns = elapsed_ns / done as u64;
            let remaining = (self.total - done) as u64 * per_item_ns;
            format!(" · ETA {}", crate::format::fmt_ns(remaining))
        } else {
            String::new()
        };
        format!(
            "[agave] {}: {}/{} done · running [{}] · {} refs · {}{}",
            self.phase,
            done,
            self.total,
            running.join(", "),
            fmt_count(refs),
            fmt_rate(refs_per_sec(refs, elapsed_ns)),
            eta,
        )
    }
}

/// A progress reporter for one parallel phase. See the module docs.
pub struct Heartbeat {
    shared: Option<Arc<Shared>>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts a heartbeat for `total` items under the given phase name,
    /// printing to stderr about once per second. Inert when telemetry
    /// is disabled.
    pub fn start(phase: &'static str, total: usize) -> Heartbeat {
        if !crate::enabled() {
            return Heartbeat {
                shared: None,
                ticker: None,
            };
        }
        let shared = Arc::new(Shared {
            phase,
            total,
            done: AtomicUsize::new(0),
            refs: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            active: Mutex::new(BTreeMap::new()),
        });
        let for_ticker = Arc::clone(&shared);
        let ticker = std::thread::Builder::new()
            .name("agave-heartbeat".into())
            .spawn(move || loop {
                // Wake frequently so shutdown is prompt, print once a second.
                for _ in 0..10 {
                    std::thread::sleep(Duration::from_millis(100));
                    if for_ticker.stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                eprintln!("{}", for_ticker.status_line());
            })
            .expect("spawn heartbeat ticker");
        Heartbeat {
            shared: Some(shared),
            ticker: Some(ticker),
        }
    }

    /// Marks this worker thread as running `label`.
    pub fn begin_item(&self, label: &str) {
        if let Some(shared) = &self.shared {
            shared
                .active
                .lock()
                .expect("heartbeat state poisoned")
                .insert(crate::thread_ordinal(), label.to_string());
        }
    }

    /// Marks this worker thread's current item finished, crediting the
    /// references it charged.
    pub fn finish_item(&self, refs: u64) {
        if let Some(shared) = &self.shared {
            shared
                .active
                .lock()
                .expect("heartbeat state poisoned")
                .remove(&crate::thread_ordinal());
            shared.done.fetch_add(1, Ordering::Relaxed);
            shared.refs.fetch_add(refs, Ordering::Relaxed);
        }
    }

    /// Current cumulative charged references (0 when inert).
    pub fn refs(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.refs.load(Ordering::Relaxed))
    }

    /// Stops the ticker and prints one final status line.
    pub fn finish(mut self) {
        self.shutdown(true);
    }

    fn shutdown(&mut self, final_line: bool) {
        if let Some(shared) = self.shared.take() {
            shared.stop.store(true, Ordering::Relaxed);
            if let Some(ticker) = self.ticker.take() {
                ticker.join().expect("heartbeat ticker panicked");
            }
            if final_line {
                eprintln!("{}", shared.status_line());
            }
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.shutdown(false);
    }
}

/// A generic once-a-second stderr ticker driven by a caller-supplied
/// status closure — the same cadence and shutdown discipline as
/// [`Heartbeat`], for phases that aren't item-counted (e.g. the serve
/// accept loop, whose line reports connections/rejects/queue depth).
/// Inert when telemetry is disabled.
pub struct Ticker {
    stop: Option<Arc<AtomicBool>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Ticker {
    /// Starts a ticker printing `line()` to stderr about once a second.
    /// Inert (no thread, no output) when telemetry is disabled.
    pub fn start<F>(line: F) -> Ticker
    where
        F: Fn() -> String + Send + 'static,
    {
        if !crate::enabled() {
            return Ticker {
                stop: None,
                handle: None,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let for_ticker = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("agave-ticker".into())
            .spawn(move || loop {
                // Wake frequently so shutdown is prompt, print once a second.
                for _ in 0..10 {
                    std::thread::sleep(Duration::from_millis(100));
                    if for_ticker.load(Ordering::Relaxed) {
                        return;
                    }
                }
                eprintln!("{}", line());
            })
            .expect("spawn ticker");
        Ticker {
            stop: Some(stop),
            handle: Some(handle),
        }
    }

    /// True when a ticker thread is actually running.
    pub fn is_live(&self) -> bool {
        self.handle.is_some()
    }

    /// Stops the ticker thread (also happens on drop).
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(stop) = self.stop.take() {
            stop.store(true, Ordering::Relaxed);
            if let Some(handle) = self.handle.take() {
                handle.join().expect("ticker panicked");
            }
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_heartbeat_is_inert() {
        // Relies on the default-disabled state; harmless if another
        // serialized test enabled telemetry first — start() just spawns
        // and joins a short-lived ticker in that case.
        let hb = Heartbeat::start("test", 3);
        hb.begin_item("a");
        hb.finish_item(100);
        if !crate::enabled() {
            assert_eq!(hb.refs(), 0);
        }
        drop(hb);
    }

    #[test]
    fn ticker_is_inert_when_disabled_and_joins_when_enabled() {
        let _guard = crate::TEST_GUARD.lock().unwrap();
        crate::set_enabled(false);
        let inert = Ticker::start(|| "never printed".to_string());
        assert!(!inert.is_live());
        inert.finish();
        crate::set_enabled(true);
        let live = Ticker::start(|| "status".to_string());
        assert!(live.is_live());
        live.finish(); // must not hang
        crate::set_enabled(false);
    }

    #[test]
    fn enabled_heartbeat_tracks_progress() {
        let _guard = crate::TEST_GUARD.lock().unwrap();
        crate::set_enabled(true);
        let hb = Heartbeat::start("test", 2);
        hb.begin_item("one");
        hb.finish_item(500);
        hb.begin_item("two");
        hb.finish_item(250);
        assert_eq!(hb.refs(), 750);
        let line = hb.shared.as_ref().unwrap().status_line();
        assert!(line.contains("2/2 done"), "line: {line}");
        assert!(line.contains("750 refs"), "line: {line}");
        drop(hb);
        crate::set_enabled(false);
    }
}
