//! Capturing and serializing a telemetry snapshot.
//!
//! One [`TelemetrySnapshot`] carries everything a run collected: the
//! aggregated metrics and the completed span log. Three serializations:
//!
//! * [`TelemetrySnapshot::to_json`] — the native schema (versioned),
//!   consumed by `agave stats`. It also embeds a `traceEvents` array,
//!   so the *same file* loads directly in `chrome://tracing` / Perfetto
//!   (both ignore unknown top-level keys).
//! * [`TelemetrySnapshot::to_chrome_json`] — just the trace-event
//!   object, for tooling that wants nothing else.
//! * [`TelemetrySnapshot::to_prometheus`] — text exposition format
//!   (`--telemetry-format prom`), for scraping long runs.

use crate::jsonw::{array, Obj};
use crate::metrics::{Histogram, MetricsSnapshot};
use crate::span::SpanRecord;
use std::io;
use std::path::Path;

/// The native telemetry JSON schema version (`schema_version` field).
pub const SCHEMA_VERSION: u64 = 1;

/// Everything one process collected: metrics plus spans.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Aggregated counters, gauges, and histograms.
    pub metrics: MetricsSnapshot,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

/// Captures the current process-wide telemetry state, draining the span
/// log (so back-to-back captures don't duplicate spans).
pub fn capture() -> TelemetrySnapshot {
    TelemetrySnapshot {
        metrics: crate::metrics::scrape(),
        spans: crate::span::take_spans(),
    }
}

/// Captures the current telemetry state *without* draining the span log
/// — for live scrapes of a running process (e.g. the serve `STATS`
/// verb), where the process-exit [`capture`] must still see every span.
pub fn capture_live() -> TelemetrySnapshot {
    TelemetrySnapshot {
        metrics: crate::metrics::scrape(),
        spans: crate::span::snapshot_spans(),
    }
}

/// An output serialization for `--telemetry-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryFormat {
    /// The native schema (default), Perfetto-loadable.
    Json,
    /// A bare Chrome trace-event object.
    Chrome,
    /// Prometheus text exposition.
    Prom,
}

impl TelemetryFormat {
    /// Parses a `--telemetry-format` value.
    pub fn parse(s: &str) -> Option<TelemetryFormat> {
        match s {
            "json" => Some(TelemetryFormat::Json),
            "chrome" | "trace-event" => Some(TelemetryFormat::Chrome),
            "prom" | "prometheus" => Some(TelemetryFormat::Prom),
            _ => None,
        }
    }
}

fn span_json(s: &SpanRecord) -> String {
    Obj::new()
        .u64("id", s.id)
        .u64("parent", s.parent)
        .str("name", s.name)
        .str("label", &s.label)
        .u64("start_ns", s.start_ns)
        .u64("end_ns", s.end_ns)
        .u64("thread", s.thread as u64)
        .u64("refs", s.refs)
        .u64("order", s.order)
        .finish()
}

/// One complete ("ph":"X") trace event per span. Timestamps are
/// microseconds per the trace-event spec; we keep nanosecond precision
/// in the fraction.
fn trace_event_json(s: &SpanRecord) -> String {
    let display = if s.label.is_empty() {
        s.name.to_string()
    } else {
        format!("{} {}", s.name, s.label)
    };
    let args = Obj::new()
        .u64("refs", s.refs)
        .u64("order", s.order)
        .u64("span_id", s.id)
        .u64("parent", s.parent)
        .finish();
    format!(
        "{{\"name\":\"{}\",\"cat\":\"agave\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{}}}",
        crate::jsonw::escape(&display),
        s.thread,
        s.start_ns as f64 / 1e3,
        s.wall_ns() as f64 / 1e3,
        args,
    )
}

fn histogram_json(h: &crate::metrics::HistogramData) -> String {
    let buckets = array(h.buckets.iter().map(|(i, c)| format!("[{},{}]", i, c)));
    Obj::new()
        .str("name", &h.name)
        .u64("count", h.count)
        .u64("sum", h.sum)
        .raw("buckets", &buckets)
        .finish()
}

impl TelemetrySnapshot {
    /// Serializes to the native schema (see module docs). Deterministic
    /// key order; spans in completion order.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Like [`to_json`](Self::to_json), but appends extra top-level
    /// `(key, raw JSON value)` pairs after the standard fields. The
    /// `agave stats` parser and Perfetto both ignore unknown top-level
    /// keys, so embedders (e.g. the serve `STATS` response, which adds
    /// a `recent` flight-recorder array) stay loadable everywhere the
    /// plain schema is.
    pub fn to_json_with(&self, extras: &[(&str, String)]) -> String {
        let counters = self
            .metrics
            .counters
            .iter()
            .fold(Obj::new(), |o, (name, v)| o.u64(name, *v))
            .finish();
        let gauges = self
            .metrics
            .gauges
            .iter()
            .fold(Obj::new(), |o, (name, v)| o.u64(name, *v))
            .finish();
        let histograms = array(self.metrics.histograms.iter().map(histogram_json));
        let spans = array(self.spans.iter().map(span_json));
        let events = array(self.spans.iter().map(trace_event_json));
        let mut obj = Obj::new()
            .u64("schema_version", SCHEMA_VERSION)
            .str("tool", "agave-telemetry")
            .raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("histograms", &histograms)
            .raw("spans", &spans)
            .raw("traceEvents", &events);
        for (key, value) in extras {
            obj = obj.raw(key, value);
        }
        obj.finish()
    }

    /// Serializes only the Chrome trace-event object.
    pub fn to_chrome_json(&self) -> String {
        Obj::new()
            .raw(
                "traceEvents",
                &array(self.spans.iter().map(trace_event_json)),
            )
            .str("displayTimeUnit", "ms")
            .finish()
    }

    /// Serializes to Prometheus text exposition format. Metric names
    /// are prefixed `agave_` with dots mapped to underscores;
    /// histograms expose cumulative `_bucket{le=…}` series plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn prom_name(name: &str) -> String {
            let mapped: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            format!("agave_{mapped}")
        }
        let mut out = String::new();
        for (name, v) in &self.metrics.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.metrics.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for h in &self.metrics.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for &(i, c) in &h.buckets {
                cumulative += c;
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    Histogram::bucket_hi(i as usize)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Serializes in the given format.
    pub fn serialize(&self, format: TelemetryFormat) -> String {
        match format {
            TelemetryFormat::Json => self.to_json(),
            TelemetryFormat::Chrome => self.to_chrome_json(),
            TelemetryFormat::Prom => self.to_prometheus(),
        }
    }

    /// Writes the serialized snapshot to `path`.
    pub fn write(&self, path: &Path, format: TelemetryFormat) -> io::Result<()> {
        std::fs::write(path, self.serialize(format))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn sample_span() -> SpanRecord {
        SpanRecord {
            id: 3,
            parent: 1,
            name: "run",
            label: "demo.workload".to_string(),
            start_ns: 1_500,
            end_ns: 2_500_000,
            thread: 2,
            refs: 123_456,
            order: 7,
        }
    }

    #[test]
    fn native_json_carries_schema_spans_and_trace_events() {
        let snap = TelemetrySnapshot {
            metrics: MetricsSnapshot::default(),
            spans: vec![sample_span()],
        };
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"spans\":[{\"id\":3,\"parent\":1,\"name\":\"run\""));
        assert!(json.contains("\"traceEvents\":[{\"name\":\"run demo.workload\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
    }

    #[test]
    fn captured_spans_round_trip_through_the_parser() {
        let _guard = crate::TEST_GUARD.lock().unwrap();
        crate::set_enabled(true);
        crate::span::take_spans();
        {
            let mut s = Span::enter_labeled("run", "roundtrip");
            s.set_refs(99);
            s.set_order(4);
        }
        crate::set_enabled(false);
        let snap = capture();
        let parsed = crate::parse::parse(&snap.to_json()).expect("self-emitted JSON must parse");
        let spans = parsed.get("spans").and_then(|v| v.as_array()).unwrap();
        let run = spans
            .iter()
            .find(|s| s.get("label").and_then(|l| l.as_str()) == Some("roundtrip"))
            .expect("span present");
        assert_eq!(run.get("refs").and_then(|v| v.as_u64()), Some(99));
        assert_eq!(run.get("order").and_then(|v| v.as_u64()), Some(4));
    }

    #[test]
    fn extra_top_level_keys_append_and_still_parse() {
        let snap = TelemetrySnapshot::default();
        let json = snap.to_json_with(&[("recent", "[{\"id\":7}]".to_string())]);
        assert!(json.ends_with(",\"recent\":[{\"id\":7}]}"), "json: {json}");
        let parsed = crate::parse::parse(&json).expect("extras JSON must parse");
        let recent = parsed.get("recent").and_then(|v| v.as_array()).unwrap();
        assert_eq!(recent[0].get("id").and_then(|v| v.as_u64()), Some(7));
        // No extras → byte-identical to the plain serialization.
        assert_eq!(snap.to_json_with(&[]), snap.to_json());
    }

    #[test]
    fn capture_live_does_not_drain_the_span_log() {
        let _guard = crate::TEST_GUARD.lock().unwrap();
        crate::set_enabled(true);
        crate::span::take_spans();
        drop(Span::enter("live"));
        crate::set_enabled(false);
        let first = capture_live();
        let second = capture_live();
        assert_eq!(first.spans.len(), 1);
        assert_eq!(second.spans.len(), 1);
        assert_eq!(capture().spans.len(), 1); // capture() drains…
        assert_eq!(capture_live().spans.len(), 0); // …so now it's empty.
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let snap = TelemetrySnapshot {
            metrics: MetricsSnapshot {
                counters: vec![("trace.sink_batches".into(), 12)],
                gauges: vec![("suite.jobs".into(), 4)],
                histograms: vec![crate::metrics::HistogramData {
                    name: "trace.batch_blocks".into(),
                    count: 3,
                    sum: 10,
                    buckets: vec![(2, 2), (3, 1)],
                }],
            },
            spans: Vec::new(),
        };
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE agave_trace_sink_batches counter"));
        assert!(prom.contains("agave_trace_sink_batches 12"));
        assert!(prom.contains("agave_suite_jobs 4"));
        assert!(prom.contains("agave_trace_batch_blocks_bucket{le=\"3\"} 2"));
        assert!(prom.contains("agave_trace_batch_blocks_bucket{le=\"7\"} 3"));
        assert!(prom.contains("agave_trace_batch_blocks_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("agave_trace_batch_blocks_count 3"));
    }
}
