//! A minimal JSON writer, private to this crate.
//!
//! `agave-telemetry` sits below `agave-trace` in the dependency graph,
//! so it cannot reuse `agave_trace::json`; this is the same hand-rolled
//! approach in ~60 lines. Write-only, deterministic key order (callers
//! append fields explicitly).

use std::fmt::Write;

/// Escapes a string for embedding in JSON (quotes not included).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-progress JSON object.
pub(crate) struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub(crate) fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    pub(crate) fn str(mut self, key: &str, value: &str) -> Obj {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    pub(crate) fn u64(mut self, key: &str, value: u64) -> Obj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends pre-serialized JSON (an array or nested object).
    pub(crate) fn raw(mut self, key: &str, value: &str) -> Obj {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Joins pre-serialized JSON values into an array.
pub(crate) fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_escape_and_nest() {
        let inner = Obj::new().u64("n", 7).finish();
        let out = Obj::new()
            .str("name", "a\"b\\c\nd")
            .raw("inner", &inner)
            .raw("arr", &array(["1".to_string(), "2".to_string()]))
            .finish();
        assert_eq!(
            out,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"inner\":{\"n\":7},\"arr\":[1,2]}"
        );
    }
}
