//! Per-workload shape tests: every app's distinguishing signal from the
//! paper's figures shows up in its run summary.

use agave_apps::{run_app, AppId, RunConfig};
use agave_trace::RunSummary;

fn run(id: AppId) -> RunSummary {
    run_app(id, RunConfig::quick())
}

fn share(s: &RunSummary, region: &str) -> f64 {
    s.instr_region_share(region)
}

#[test]
fn aard_is_dalvik_and_text_heavy() {
    let s = run(AppId::AardMain);
    assert!(share(&s, "libdvm.so") > 0.02);
    // Dictionary index loading hit the dictionary file region.
    assert!(s.data_by_region.contains_key("/sdcard/aard/dict.aar"));
    // The search loop runs on an AsyncTask.
    assert!(s.refs_by_thread.get("AsyncTask").copied().unwrap_or(0) > 0);
    // Fonts were read for the result list.
    assert!(s
        .data_by_region
        .keys()
        .any(|k| k.starts_with("/system/fonts/")));
}

#[test]
fn coolreader_uses_its_native_engine() {
    let s = run(AppId::CoolreaderEpubView);
    // The paper's Figure 1 legend names this exact library.
    assert!(
        share(&s, "libcr3engine-3-1-1.so") > 0.01,
        "cr3 engine share {:.4}",
        share(&s, "libcr3engine-3-1-1.so")
    );
    assert!(s.data_by_region.contains_key("/sdcard/books/book.epub"));
}

#[test]
fn countdown_is_dominated_by_the_platform() {
    let s = run(AppId::CountdownMain);
    // The app itself barely shows; system_server (display) dominates.
    assert!(s.instr_process_share("benchmark") < 0.10);
    assert!(s.instr_process_share("system_server") > 0.4);
}

#[test]
fn doom_is_native_engine_heavy() {
    let s = run(AppId::DoomMain);
    assert!(
        share(&s, "libprboom.so") > 0.10,
        "{:.3}",
        share(&s, "libprboom.so")
    );
    assert!(s.data_by_region.contains_key("/sdcard/doom/doom1.wad"));
    // Doom mixes its own audio in-process.
    assert!(
        s.refs_by_thread
            .get("AudioTrackThread")
            .copied()
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn frozenbubble_runs_its_game_thread_and_jit() {
    let s = run(AppId::FrozenbubbleMain);
    assert!(s.refs_by_thread.get("Thread").copied().unwrap_or(0) > 0);
    assert!(s.refs_by_thread.get("Compiler").copied().unwrap_or(0) > 0);
    assert!(s.refs_by_thread.get("GC").copied().unwrap_or(0) > 0);
    assert!(s.instr_by_region.contains_key("dalvik-jit-code-cache"));
}

#[test]
fn gallery_decodes_in_mediaserver() {
    let s = run(AppId::GalleryMp4View);
    assert!(s.instr_process_share("mediaserver") > 0.55);
    assert!(s.instr_process_share("benchmark") < 0.05);
    assert!(s.refs_by_thread.contains_key("TimedEventQueue"));
}

#[test]
fn jetboy_mixes_game_and_audio() {
    let s = run(AppId::JetboyMain);
    assert!(share(&s, "libsonivox.so") > 0.001);
    assert!(
        s.refs_by_thread
            .get("AudioTrackThread")
            .copied()
            .unwrap_or(0)
            > 0
    );
    assert!(share(&s, "libdvm.so") > 0.02);
}

#[test]
fn music_foreground_vs_background() {
    let fg = run(AppId::MusicMp3View);
    let bkg = run(AppId::MusicMp3ViewBkg);
    // Both decode in mediaserver…
    for s in [&fg, &bkg] {
        assert!(s.instr_process_share("mediaserver") > 0.25);
        assert!(s.instr_by_region.contains_key("libstagefright.so"));
    }
    // …but only the foreground draws album art from the app.
    let fg_app = fg.instr_process_share("benchmark");
    let bkg_app = bkg.instr_process_share("benchmark");
    assert!(bkg_app < fg_app || bkg_app < 0.02);
    // The background service half lives in an app_process child.
    assert!(bkg.instr_by_process.contains_key("app_process"));
}

#[test]
fn odr_variants_have_distinct_mixes() {
    let ppt = run(AppId::OdrPptView);
    let txt = run(AppId::OdrTxtView);
    let xls = run(AppId::OdrXlsView);
    // ppt/xls inflate zipped content; txt does not.
    assert!(ppt.instr_by_region.contains_key("libz.so"));
    assert!(xls.instr_by_region.contains_key("libz.so"));
    let txt_libz = txt.instr_region_share("libz.so");
    assert!(
        txt_libz < ppt.instr_region_share("libz.so"),
        "txt should inflate less than ppt"
    );
    // txt reads fonts much harder (a page of text per flip).
    let font_share = |s: &RunSummary| {
        s.data_by_region
            .iter()
            .filter(|(k, _)| k.starts_with("/system/fonts/"))
            .map(|(_, v)| *v)
            .sum::<u64>() as f64
            / s.total_data as f64
    };
    assert!(font_share(&txt) > font_share(&ppt));
    // xls recalculates: more Dalvik than ppt.
    assert!(xls.instr_region_share("libdvm.so") > ppt.instr_region_share("libdvm.so"));
}

#[test]
fn osmand_nav_adds_route_computation() {
    let map = run(AppId::OsmandMapView);
    let nav = run(AppId::OsmandNavView);
    for s in [&map, &nav] {
        assert!(s.instr_by_region.contains_key("libosmand.so"));
        assert!(s.data_by_region.contains_key("/sdcard/osmand/region.obf"));
    }
    // The router AsyncTask only exists in nav mode.
    let map_async = map.refs_by_thread.get("AsyncTask").copied().unwrap_or(0);
    let nav_async = nav.refs_by_thread.get("AsyncTask").copied().unwrap_or(0);
    assert!(nav_async > map_async, "nav {nav_async} vs map {map_async}");
}

#[test]
fn pm_hammers_the_package_manager() {
    let s = run(AppId::PmApkView);
    // Binder traffic into system_server's PackageManager.
    assert!(s.data_by_region.contains_key("/dev/binder"));
    assert!(s.data_by_region.contains_key("/data/system/packages.xml"));
    assert!(s.instr_process_share("system_server") > 0.2);
}

#[test]
fn vlc_decodes_in_process() {
    let mp3 = run(AppId::VlcMp3View);
    let mp4 = run(AppId::VlcMp4View);
    for s in [&mp3, &mp4] {
        assert!(s.instr_by_region.contains_key("libvlccore.so"));
        // Stagefright stays idle: mediaserver only mixes audio.
        assert!(
            s.instr_process_share("mediaserver") < 0.15,
            "mediaserver {:.3}",
            s.instr_process_share("mediaserver")
        );
    }
    assert!(mp4.instr_process_share("benchmark") > 0.5);
}

#[test]
fn vlc_bkg_keeps_decoding_without_ui() {
    let bkg = run(AppId::VlcMp3ViewBkg);
    assert!(bkg.instr_by_region.contains_key("libvlccore.so"));
    assert!(bkg.instr_by_process.contains_key("app_process"));
    // No visualizer: negligible app-side mspace drawing relative to a
    // foreground run.
    let fg = run(AppId::VlcMp3View);
    let fg_total = fg.total_instr + fg.total_data;
    let bkg_total = bkg.total_instr + bkg.total_data;
    let fg_gralloc =
        *fg.data_by_region.get("gralloc-buffer").unwrap_or(&0) as f64 / fg_total as f64;
    let bkg_gralloc =
        *bkg.data_by_region.get("gralloc-buffer").unwrap_or(&0) as f64 / bkg_total as f64;
    assert!(bkg_gralloc < fg_gralloc);
}

#[test]
fn every_workload_spawns_dexopt_and_helpers() {
    for id in [AppId::AardMain, AppId::VlcMp4View, AppId::OdrTxtView] {
        let s = run(id);
        assert!(s.instr_by_process.contains_key("dexopt"), "{id:?}");
        assert!(s.instr_by_process.contains_key("id.defcontainer"), "{id:?}");
        assert!(s.instr_by_process.contains_key("zygote"), "{id:?}");
    }
}
