//! `pm.apk.view` and `pm.apk.view.bkg` — package inspection.
//!
//! The workload drives the PackageManager hard: an `AsyncTask` walks the
//! installed-package list, issuing a Binder query per package and parsing
//! manifest chunks out of an APK on disk. Foreground mode repaints the
//! package list as results stream in; background mode keeps scanning with
//! the window hidden and the service half in an `app_process` child.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{
    Actor, Android, AppEnv, BinderProxy, Ctx, Message, Parcel, Rect, PMS_GET_PACKAGE_INFO,
    TICKS_PER_MS,
};
use agave_dalvik::{Value, VmRef};
use agave_dex::MethodId;

const LIST_MS: u64 = 500;
const SCAN_MS: u64 = 200;
const PACKAGES: u32 = 96;

pub(crate) fn install(android: &mut Android, env: AppEnv, background: bool) {
    let pid = env.pid;
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(Pm {
            base: AppBase::new(env),
            background,
            rows: 0,
        }),
    );
}

struct Pm {
    base: AppBase,
    background: bool,
    rows: u64,
}

/// The scanning AsyncTask: one PackageManager query + manifest parse per
/// tick, looping over the package list.
struct Scanner {
    pms: BinderProxy,
    vm: VmRef,
    update: MethodId,
    index: u32,
}

impl Actor for Scanner {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self(Message::new(0));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        self.index = (self.index + 1) % PACKAGES;
        // Binder query into system_server.
        let mut p = Parcel::new();
        p.write_str(&format!("com.vendor.app{}", self.index));
        let mut reply = self.pms.transact(cx, PMS_GET_PACKAGE_INFO, &p);
        assert_eq!(reply.read_u32(), 0);

        // Read a manifest chunk from the APK and parse it in bytecode.
        let mut buf = vec![0u8; 4 * 1024];
        let off = u64::from(self.index) * 4 * 1024 % (1_200 * 1024);
        let n = cx.fs_read("/sdcard/download/extra.apk", off, &mut buf);
        let libz = cx.intern_region("libz.so");
        cx.call_lib(libz, 2 * n as u64);
        self.vm.borrow_mut().invoke(
            cx,
            self.update,
            &[Value::Int(i64::from(self.index)), Value::Int(120)],
        );

        cx.post_self_after(SCAN_MS * TICKS_PER_MS, Message::new(0));
    }
}

impl Actor for Pm {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lcom/android/packageinstaller/Main;", 3, 0);
        let update = dex.add_update_method();
        let fw = dex.fw;
        self.base
            .init_vm(cx, dex.dex, fw, "com.android.packageinstaller.apk");
        let win = self
            .base
            .open_window(cx, "com.android.packageinstaller/.PackageList");

        let pms = self.base.env.service("package");
        let vm = self.base.vm.as_ref().expect("vm").clone();
        let pid = cx.pid();
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(
            pid,
            "AsyncTask #1",
            dvm,
            Box::new(Scanner {
                pms,
                vm,
                update,
                index: 0,
            }),
        );

        if self.background {
            win.set_visible(false);
            self.base.env.surfaces.set_visible_by_name("launcher", true);
            let helper = self.base.env.fork_app_process(cx);
            cx.spawn_thread(helper, "kageinstaller:s", Box::new(BkgHelper));
        }
        cx.post_self_after(LIST_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        if self.background {
            self.base.env.framework_tail(cx, 2_000);
            cx.post_self_after(LIST_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
            return;
        }
        self.rows += 1;
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0xffff);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        let row_h = (h / 16).max(5);
        for row in 0..14u32 {
            let y = row * row_h;
            if y + row_h >= h {
                break;
            }
            // Icon + label per row.
            canvas.fill_rect(cx, Rect::new(2, y + 1, row_h - 2, row_h - 2), 0x34df);
            canvas.draw_text(cx, "com.vendor.application", row_h + 2, y + 2, 0x0000);
            canvas.fill_rect(cx, Rect::new(0, y + row_h - 1, w, 1), 0xc618);
        }
        self.base.env.framework_tail(cx, 10_000);
        self.base.post(cx, canvas);
        cx.post_self_after(LIST_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}

/// Background service half in the app_process child.
struct BkgHelper;

impl Actor for BkgHelper {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self(Message::new(0));
    }
    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        let dvm = cx.well_known().libdvm;
        cx.call_lib(dvm, 4_000);
        cx.post_self_after(1_500 * TICKS_PER_MS, Message::new(0));
    }
}
