//! `coolreader.epub.view` — Cool Reader displaying an EPUB.
//!
//! Cool Reader's layout/rendering engine is native
//! (`libcr3engine-3-1-1.so` — visible by name in the paper's Figure 1
//! legend). Page turns read the book, run the native layout pass, and
//! paint a text-heavy page.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, RefKind, TICKS_PER_MS};
use agave_dalvik::Value;
use agave_dex::MethodId;

const PAGE_TURN_MS: u64 = 1_500;
const CR3_LIB: &str = "libcr3engine-3-1-1.so";

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android
        .kernel
        .map_lib(pid, CR3_LIB, 2_100 * 1024, 96 * 1024);
    android
        .kernel
        .spawn_thread(pid, &env.main_thread_name(), Box::new(CoolReader::new(env)));
}

struct CoolReader {
    base: AppBase,
    update: Option<MethodId>,
    offset: u64,
    page: u64,
}

impl CoolReader {
    fn new(env: AppEnv) -> Self {
        CoolReader {
            base: AppBase::new(env),
            update: None,
            offset: 0,
            page: 0,
        }
    }

    fn turn_page(&mut self, cx: &mut Ctx<'_>) {
        self.page += 1;
        let cr3 = cx.intern_region(CR3_LIB);
        let wk = cx.well_known();

        // Read the next chunk of the book (looping at EOF).
        let mut chunk = vec![0u8; 24 * 1024];
        let n = cx.fs_read("/sdcard/books/book.epub", self.offset, &mut chunk);
        if n == 0 {
            self.offset = 0;
        } else {
            self.offset += n as u64;
        }

        // Native layout: inflate (epubs are zipped), DOM walk, line
        // breaking, hyphenation — all inside the cr3 engine.
        let libz = cx.intern_region("libz.so");
        cx.call_lib(libz, 2 * n as u64);
        cx.in_lib(cr3, |cx| {
            cx.op(22 * n as u64 + 60_000);
            cx.charge(wk.heap, RefKind::DataRead, 2 * n as u64);
            cx.charge(wk.heap, RefKind::DataWrite, n as u64);
            cx.stack_rw(n as u64 / 2, n as u64 / 4);
        });

        // A little Java-side bookkeeping (position, battery overlay).
        let update = self.update.expect("dex built");
        self.base
            .invoke(cx, update, &[Value::Int(self.page as i64), Value::Int(96)]);
        self.base.env.framework_tail(cx, 9_000);

        // Paint the page: background + ~26 text lines + header rule.
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0xf79e);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        let line_h = (h / 28).max(4);
        canvas.fill_rect(cx, Rect::new(0, line_h, w, 1), 0x8410);
        for line in 1..27u32 {
            let y = line * line_h + 1;
            if y + line_h >= h {
                break;
            }
            canvas.draw_text(cx, "the quick brown fox jumps over it", 3, y, 0x0000);
        }
        self.base.post(cx, canvas);
    }
}

impl Actor for CoolReader {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lorg/coolreader/Main;", 3, 0);
        let update = dex.add_update_method();
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "org.coolreader.apk");
        self.update = Some(update);
        self.base.open_window(cx, "org.coolreader/.Main");
        // Parse the container/manifest up front.
        let cr3 = cx.intern_region(CR3_LIB);
        cx.call_lib(cr3, 120_000);
        cx.post_self(Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what == MSG_FRAME {
            self.turn_page(cx);
            cx.post_self_after(PAGE_TURN_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
        }
    }
}
