//! Shared app plumbing: the Dalvik app base and dex construction helpers.

use agave_android::{
    add_framework_methods, AppEnv, Bitmap, Canvas, Ctx, FrameworkMethods, PixelFormat,
    SurfaceHandle,
};
use agave_dalvik::{spawn_vm_service_threads, Value, Vm, VmRef};
use agave_dex::{BinOp, ClassId, Cond, DexFile, MethodBuilder, MethodId, Reg};

/// Frame/tick message code shared by the app actors.
pub(crate) const MSG_FRAME: u32 = 1;

/// Everything a Dalvik UI app keeps between frames.
pub(crate) struct AppBase {
    pub env: AppEnv,
    pub vm: Option<VmRef>,
    pub fw: Option<FrameworkMethods>,
    pub window: Option<SurfaceHandle>,
    pub frame: u64,
}

impl AppBase {
    pub fn new(env: AppEnv) -> Self {
        AppBase {
            env,
            vm: None,
            fw: None,
            window: None,
            frame: 0,
        }
    }

    /// Creates the app's VM (with GC/Compiler/… service threads), marking
    /// the framework methods' bytecode as core-jar resident.
    pub fn init_vm(&mut self, cx: &mut Ctx<'_>, dex: DexFile, fw: FrameworkMethods, apk: &str) {
        let mut vm = Vm::new(cx, dex, &format!("{apk}@classes.dex"));
        fw.mark(cx, &mut vm);
        let vm = vm.into_shared();
        let pid = cx.pid();
        spawn_vm_service_threads(cx.kernel(), pid, &vm);
        self.vm = Some(vm);
        self.fw = Some(fw);
    }

    /// Announces the activity and opens the app's full-screen window.
    pub fn open_window(&mut self, cx: &mut Ctx<'_>, component: &str) -> SurfaceHandle {
        self.env.start_activity(cx, component);
        let win = self.env.create_fullscreen_window(cx, component);
        self.window = Some(win.clone());
        win
    }

    /// A canvas matching the window geometry.
    pub fn new_canvas(&self) -> Canvas {
        let win = self.window.as_ref().expect("window opened");
        Canvas::new(Bitmap::new(win.width(), win.height(), PixelFormat::Rgb565))
    }

    /// Posts a finished frame.
    ///
    /// Every UI pass on a real device churns short-lived framework objects
    /// (measure specs, temporaries, iterator boxes); model that garbage so
    /// the `GC` thread sees realistic pressure.
    pub fn post(&mut self, cx: &mut Ctx<'_>, canvas: Canvas) {
        let win = self.window.as_ref().expect("window opened");
        win.post_buffer(cx, &canvas.into_bitmap());
        self.frame += 1;
        if let Some(vm) = &self.vm {
            let mut vm = vm.borrow_mut();
            let _garbage = vm.heap.alloc_array(200);
            vm.request_gc_if_needed(cx);
        }
    }

    /// Runs a VM method (panics if the VM is not initialized).
    pub fn invoke(&mut self, cx: &mut Ctx<'_>, method: MethodId, args: &[Value]) -> Option<Value> {
        let vm = self.vm.as_ref().expect("vm initialized").clone();
        let out = vm.borrow_mut().invoke(cx, method, args);
        out
    }

    /// The framework method handles.
    pub fn fw(&self) -> FrameworkMethods {
        self.fw.expect("vm initialized")
    }
}

/// A dex file seeded with the framework methods plus one app class.
pub(crate) struct AppDex {
    pub dex: DexFile,
    pub fw: FrameworkMethods,
    pub class: ClassId,
}

/// Starts an app dex: framework methods + an app class with
/// `fields`/`statics` slots.
pub(crate) fn app_dex(class_name: &str, fields: u16, statics: u16) -> AppDex {
    let mut dex = DexFile::new();
    let fw = add_framework_methods(&mut dex);
    let class = dex.add_class(class_name, fields, statics);
    AppDex { dex, fw, class }
}

impl AppDex {
    /// Adds `update(state, work) -> i64`: the classic per-frame app loop —
    /// allocate a scratch array, fill it, mix it, and fold into `state`.
    /// Exercises allocation (GC pressure), array traffic and arithmetic.
    pub fn add_update_method(&mut self) -> MethodId {
        let fw = self.fw;
        let mut m = MethodBuilder::new(12, 2);
        let (state, work) = (Reg(10), Reg(11));
        let (arr, len, acc, t) = (Reg(0), Reg(1), Reg(2), Reg(3));
        // len = work; arr = new long[len]; fill(arr, len, state)
        m.mov(len, work);
        m.new_array(arr, len);
        m.invoke_static(fw.fill, &[arr, len, state], None);
        // acc = sum(arr)
        m.invoke_static(fw.sum, &[arr], Some(acc));
        // t = mix(acc ^ state, 64)
        m.binop(BinOp::Xor, t, acc, state);
        m.konst(Reg(4), 64);
        m.invoke_static(fw.mix, &[t, Reg(4)], Some(t));
        m.ret(Some(t));
        self.dex.add_method(self.class, "update", m)
    }

    /// Adds `search(hay, needle) -> count`: a scan loop over an array,
    /// counting elements congruent to `needle` — the dictionary-lookup /
    /// filter shape.
    pub fn add_search_method(&mut self) -> MethodId {
        let mut m = MethodBuilder::new(10, 2);
        let (hay, needle) = (Reg(8), Reg(9));
        let (i, one, len, v, count, k) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        m.konst(i, 0).konst(one, 1).konst(count, 0).konst(k, 257);
        m.array_len(len, hay);
        let head = m.new_label();
        let done = m.new_label();
        let skip = m.new_label();
        m.bind(head);
        m.if_cmp(Cond::Ge, i, len, done);
        m.aget(v, hay, i);
        m.binop(BinOp::Rem, v, v, k);
        m.if_cmp(Cond::Ne, v, needle, skip);
        m.binop(BinOp::Add, count, count, one);
        m.bind(skip);
        m.binop(BinOp::Add, i, i, one);
        m.goto(head);
        m.bind(done);
        m.ret(Some(count));
        self.dex.add_method(self.class, "search", m)
    }

    /// Adds `relax(dist, edges, rounds) -> i64`: Bellman-Ford-style
    /// relaxation over flat arrays — the route-planning shape used by
    /// `osmand.nav.view`.
    pub fn add_relax_method(&mut self) -> MethodId {
        let mut m = MethodBuilder::new(14, 3);
        let (dist, edges, rounds) = (Reg(11), Reg(12), Reg(13));
        let (r, i, one, three, elen, u, v, w, du, dv) = (
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
            Reg(9),
        );
        m.konst(r, 0).konst(one, 1).konst(three, 3);
        m.array_len(elen, edges);
        m.binop(BinOp::Div, elen, elen, three);
        let outer = m.new_label();
        let outer_done = m.new_label();
        m.bind(outer);
        m.if_cmp(Cond::Ge, r, rounds, outer_done);
        m.konst(i, 0);
        let inner = m.new_label();
        let inner_done = m.new_label();
        let no_update = m.new_label();
        m.bind(inner);
        m.if_cmp(Cond::Ge, i, elen, inner_done);
        // u = edges[3i]; v = edges[3i+1]; w = edges[3i+2]
        m.binop(BinOp::Mul, u, i, three);
        m.aget(v, edges, u); // v register temporarily holds edges[3i] (u node)
        m.binop(BinOp::Add, u, u, one);
        m.aget(w, edges, u); // w register holds v node
        m.binop(BinOp::Add, u, u, one);
        m.aget(du, edges, u); // du holds weight
                              // dv = dist[v-node]; cand = dist[u-node] + weight
        m.aget(Reg(10), dist, v); // dist[u]
        m.binop(BinOp::Add, Reg(10), Reg(10), du); // cand
        m.aget(dv, dist, w); // dist[v]
        m.if_cmp(Cond::Ge, Reg(10), dv, no_update);
        m.aput(Reg(10), dist, w);
        m.bind(no_update);
        m.binop(BinOp::Add, i, i, one);
        m.goto(inner);
        m.bind(inner_done);
        m.binop(BinOp::Add, r, r, one);
        m.goto(outer);
        m.bind(outer_done);
        m.konst(i, 0);
        m.aget(v, dist, i);
        m.ret(Some(v));
        self.dex.add_method(self.class, "relax", m)
    }
}

/// Fills a Dalvik array with graph edges `(u, v, w)` for the relax method.
pub(crate) fn seed_edges(
    vm: &VmRef,
    nodes: i64,
    edges: usize,
) -> (agave_dalvik::HeapRef, agave_dalvik::HeapRef) {
    let mut vm = vm.borrow_mut();
    let dist = vm.heap.alloc_array(nodes as usize);
    for i in 0..nodes as usize {
        vm.heap.array_set(dist, i, if i == 0 { 0 } else { 1 << 30 });
    }
    let earr = vm.heap.alloc_array(edges * 3);
    let mut s = 0x5bd1e995u64;
    for e in 0..edges {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (s >> 33) as i64 % nodes;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (s >> 33) as i64 % nodes;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let w = 1 + (s >> 33) as i64 % 64;
        vm.heap.array_set(earr, e * 3, u);
        vm.heap.array_set(earr, e * 3 + 1, v);
        vm.heap.array_set(earr, e * 3 + 2, w);
    }
    // Keep both alive across GCs.
    vm.add_root(dist);
    vm.add_root(earr);
    (dist, earr)
}
