//! `music.mp3.view` and `music.mp3.view.bkg` — the stock Music app.
//!
//! Framework playback: the app drives `MediaPlayer`, so decoding runs in
//! `mediaserver`. Foreground mode repaints album art and the progress bar
//! once a second; background mode hides the window, stops painting, and
//! keeps a small service alive in a forked `app_process` child — the
//! paper's canonical foreground/background pair.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, TICKS_PER_MS};

const UI_MS: u64 = 1_000;

pub(crate) fn install(android: &mut Android, env: AppEnv, background: bool) {
    let pid = env.pid;
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(Music {
            base: AppBase::new(env),
            background,
            seconds: 0,
        }),
    );
}

struct Music {
    base: AppBase,
    background: bool,
    seconds: u64,
}

/// The background service helper living in a forked `app_process`.
struct ServiceHelper;

impl Actor for ServiceHelper {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        // Service startup work happens immediately, then periodic upkeep.
        cx.post_self(Message::new(0));
    }
    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        // Notification/metadata upkeep.
        let dvm = cx.well_known().libdvm;
        cx.call_lib(dvm, 5_000);
        let heap = cx.well_known().dalvik_heap;
        cx.data_rw(heap, 800, 300);
        cx.post_self_after(2_000 * TICKS_PER_MS, Message::new(0));
    }
}

impl Actor for Music {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let dex = app_dex("Lcom/android/music/Player;", 3, 1);
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "com.android.music.apk");
        let win = self
            .base
            .open_window(cx, "com.android.music/.MediaPlaybackActivity");

        // Start framework playback (decodes in mediaserver).
        let player = self.base.env.media_player();
        player.play_mp3(cx, "/sdcard/music/track.mp3", true);

        if self.background {
            // User pressed Home: UI hidden, playback continues, and the
            // service side lives in an app_process child.
            win.set_visible(false);
            self.base.env.surfaces.set_visible_by_name("launcher", true);
            let helper = self.base.env.fork_app_process(cx);
            cx.spawn_thread(helper, "ndroid.music:svc", Box::new(ServiceHelper));
            self.base
                .env
                .start_activity(cx, "com.android.music/.MediaPlaybackService");
        }
        cx.post_self_after(UI_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        if self.background {
            // Notification + metadata upkeep, no drawing.
            self.base.env.framework_tail(cx, 2_500);
            cx.post_self_after(UI_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
            return;
        }
        self.seconds += 1;
        // Album art + progress bar repaint.
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0x2104);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        canvas.draw_gradient(
            cx,
            Rect::new(w / 8, h / 8, w * 3 / 4, h / 2),
            0xf800,
            0x001f,
        );
        let progress = ((self.seconds * 7) % 100) as u32;
        canvas.fill_rect(cx, Rect::new(4, h * 3 / 4, w - 8, 3), 0x4208);
        canvas.fill_rect(
            cx,
            Rect::new(4, h * 3 / 4, (w - 8) * progress / 100, 3),
            0x07e0,
        );
        canvas.draw_text(cx, "Now Playing - Track 01", 4, h * 3 / 4 + 6, 0xffff);
        // Persist the playback position (bookmark file).
        cx.fs_write(
            "/data/data/com.android.music/files/state",
            0,
            &self.seconds.to_le_bytes(),
        );
        self.base.env.framework_tail(cx, 6_000);
        self.base.post(cx, canvas);
        cx.post_self_after(UI_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}
