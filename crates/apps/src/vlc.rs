//! `vlc.mp3.view`, `vlc.mp3.view.bkg`, `vlc.mp4.view` — VLC.
//!
//! The in-process media architecture: VLC bundles its own demuxer and
//! codecs (`libvlccore.so`), so decode work charges the **benchmark**
//! process, not mediaserver — the structural contrast with `music.*` and
//! `gallery.*` that the paper's process figures expose. Audio still flows
//! through an `AudioTrackThread` (in the app) to AudioFlinger.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, SessionOutput, TICKS_PER_MS};
use agave_media::MediaSession;

const VIS_MS: u64 = 100; // 10 fps visualizer

/// Which stream VLC plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Media {
    Mp3,
    Mp4,
}

pub(crate) fn install(android: &mut Android, env: AppEnv, media: Media, background: bool) {
    let pid = env.pid;
    android
        .kernel
        .map_lib(pid, "libvlccore.so", 3_400 * 1024, 220 * 1024);
    android
        .kernel
        .map_lib(pid, "libvlc.so", 600 * 1024, 40 * 1024);
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(Vlc {
            base: AppBase::new(env),
            media,
            background,
            beat: 0,
        }),
    );
}

struct Vlc {
    base: AppBase,
    media: Media,
    background: bool,
    beat: u64,
}

impl Actor for Vlc {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let dex = app_dex("Lorg/videolan/vlc/Main;", 4, 1);
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "org.videolan.vlc.apk");
        let win = self
            .base
            .open_window(cx, "org.videolan.vlc/.PlayerActivity");

        // In-process pipeline: own AudioTrack + transport thread + decode
        // session, all inside the benchmark process.
        let track = self.base.env.audio.create_track(cx);
        let pid = cx.pid();
        track.spawn_thread(cx.kernel(), pid);
        if self.media == Media::Mp4 {
            win.set_overlay(true);
        }
        let output = match self.media {
            Media::Mp3 => SessionOutput::Audio(track),
            Media::Mp4 => SessionOutput::Video {
                surface: win.clone(),
                audio: Some(track),
                fps: 15,
                bytes_per_frame: 4_200,
            },
        };
        let path = match self.media {
            Media::Mp3 => "/sdcard/music/track.mp3",
            Media::Mp4 => "/sdcard/video/clip.mp4",
        };
        let session = MediaSession::new(path, "libvlccore.so", output, true);
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(pid, "Thread-28", dvm, Box::new(session));

        if self.background {
            win.set_visible(false);
            self.base.env.surfaces.set_visible_by_name("launcher", true);
            let helper = self.base.env.fork_app_process(cx);
            cx.spawn_thread(helper, "videolan.vlc:ws", Box::new(BkgService));
            cx.post_self_after(1_000 * TICKS_PER_MS, Message::new(MSG_FRAME));
        } else if self.media == Media::Mp3 {
            // The audio visualizer repaints at 10 fps.
            cx.post_self_after(VIS_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
        } else {
            // Mp4 foreground: the decode session posts video frames; the
            // UI thread only refreshes the controls occasionally.
            cx.post_self_after(800 * TICKS_PER_MS, Message::new(MSG_FRAME));
        }
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        if self.background {
            self.base.env.framework_tail(cx, 2_000);
            cx.post_self_after(1_000 * TICKS_PER_MS, Message::new(MSG_FRAME));
            return;
        }
        if self.media != Media::Mp3 {
            self.base.env.framework_tail(cx, 2_500);
            cx.post_self_after(800 * TICKS_PER_MS, Message::new(MSG_FRAME));
            return;
        }
        self.beat += 1;
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0x0000);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        // Spectrum bars.
        let bars = 16u32;
        let bw = (w / bars).max(1);
        for b in 0..bars {
            let amp = ((self.beat as u32 * (b + 3) * 7) % h.max(1)).max(1);
            canvas.fill_rect(
                cx,
                Rect::new(
                    b * bw,
                    h - amp.min(h - 1),
                    bw.saturating_sub(1).max(1),
                    amp.min(h - 1),
                ),
                0x07e0 | (b << 11),
            );
        }
        if self.beat.is_multiple_of(10) {
            self.base.env.framework_tail(cx, 5_000);
        }
        self.base.post(cx, canvas);
        cx.post_self_after(VIS_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}

/// Background widget/service half in the app_process child.
struct BkgService;

impl Actor for BkgService {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self(Message::new(0));
    }
    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        let dvm = cx.well_known().libdvm;
        cx.call_lib(dvm, 3_500);
        cx.post_self_after(2_500 * TICKS_PER_MS, Message::new(0));
    }
}
