//! `jetboy.main` — the Android SDK's JetBoy rhythm shooter.
//!
//! A Java game (canvas sprites at 30 fps) whose soundtrack plays through
//! the JET engine (`libsonivox.so`) *in-process*, with its own
//! `AudioTrackThread` — a mixed Dalvik + audio workload.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, SessionOutput, TICKS_PER_MS};
use agave_dalvik::Value;
use agave_dex::MethodId;
use agave_media::MediaSession;

const FRAME_MS: u64 = 33;

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android
        .kernel
        .map_lib(pid, "libsonivox.so", 220 * 1024, 12 * 1024);
    android
        .kernel
        .spawn_thread(pid, &env.main_thread_name(), Box::new(JetBoy::new(env)));
}

struct JetBoy {
    base: AppBase,
    update: Option<MethodId>,
    state: i64,
    frame_no: u64,
}

impl JetBoy {
    fn new(env: AppEnv) -> Self {
        JetBoy {
            base: AppBase::new(env),
            update: None,
            state: 1,
            frame_no: 0,
        }
    }
}

impl Actor for JetBoy {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lcom/example/jetboy/JetBoyThread;", 4, 1);
        let update = dex.add_update_method();
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "com.example.jetboy.apk");
        self.update = Some(update);
        self.base.open_window(cx, "com.example.jetboy/.JetBoy");

        // The JET soundtrack: an in-process decode session on its own
        // thread plus the transport thread.
        let track = self.base.env.audio.create_track(cx);
        let pid = cx.pid();
        track.spawn_thread(cx.kernel(), pid);
        let session = MediaSession::new(
            "/sdcard/jetboy/soundtrack.jet",
            "libsonivox.so",
            SessionOutput::Audio(track),
            true,
        );
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(pid, "Thread-12", dvm, Box::new(session));

        cx.post_self(Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        self.frame_no += 1;
        // Game logic in bytecode.
        let update = self.update.expect("dex built");
        let out = self
            .base
            .invoke(cx, update, &[Value::Int(self.state), Value::Int(200)]);
        self.state = out.expect("update returns").as_int();

        // Paint: starfield + asteroids + the ship.
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0x0000);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        for star in 0..24u32 {
            let x = (star * 37 + self.frame_no as u32 * 3) % w.max(1);
            let y = (star * 53) % h.max(1);
            canvas.fill_rect(cx, Rect::new(x, y, 1, 1), 0xffff);
        }
        for rock in 0..5u32 {
            let x = w.saturating_sub((self.frame_no as u32 * (5 + rock)) % w.max(1));
            let y = (rock * 41) % h.max(1);
            canvas.fill_rect(cx, Rect::new(x, y, w / 20 + 1, w / 20 + 1), 0x8410);
        }
        canvas.fill_rect(cx, Rect::new(4, h / 2, w / 12 + 2, w / 24 + 1), 0x07ff);
        if self.frame_no.is_multiple_of(8) {
            self.base.env.framework_tail(cx, 4_000);
        }
        self.base.post(cx, canvas);
        cx.post_self_after(FRAME_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}
