//! Run-size knobs.

/// How long and at what display resolution a workload runs.
///
/// The display scale divides the WVGA (480×800) panel linearly. Pixel
/// work (canvas, gralloc, composition, fb0) scales with panel area while
/// bytecode/decode/audio work does not, so the charging constants are
/// calibrated at the 1/8-panel operating point — both stock configurations
/// use it, differing only in duration. Changing the scale changes the
/// pixel-vs-compute balance and should be accompanied by recalibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Simulated milliseconds of execution after launch.
    pub duration_ms: u64,
    /// Linear display downscale (1 = full WVGA).
    pub display_scale: u32,
}

impl RunConfig {
    /// The reference configuration used for EXPERIMENTS.md numbers.
    pub const fn reference() -> Self {
        RunConfig {
            duration_ms: 4_000,
            display_scale: 8,
        }
    }

    /// A fast configuration for tests and Criterion benches.
    pub const fn quick() -> Self {
        RunConfig {
            duration_ms: 1_200,
            display_scale: 8,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(RunConfig::default(), RunConfig::reference());
        assert!(RunConfig::quick().duration_ms < RunConfig::reference().duration_ms);
    }
}
