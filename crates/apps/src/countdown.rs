//! `countdown.main` — a countdown timer.
//!
//! The lightest workload in the suite: a 1 Hz tick updates a little Dalvik
//! state and redraws large digits. Most of the system's references come
//! from the platform around it (SurfaceFlinger, systemui, services), which
//! is exactly the point of including it.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, TICKS_PER_MS};
use agave_dalvik::Value;
use agave_dex::MethodId;

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android
        .kernel
        .spawn_thread(pid, &env.main_thread_name(), Box::new(Countdown::new(env)));
}

struct Countdown {
    base: AppBase,
    update: Option<MethodId>,
    remaining: i64,
}

impl Countdown {
    fn new(env: AppEnv) -> Self {
        Countdown {
            base: AppBase::new(env),
            update: None,
            remaining: 3_600,
        }
    }
}

impl Actor for Countdown {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lorg/codechimp/Countdown;", 2, 0);
        let update = dex.add_update_method();
        let fw = dex.fw;
        self.base
            .init_vm(cx, dex.dex, fw, "org.codechimp.countdown.apk");
        self.update = Some(update);
        self.base.open_window(cx, "org.codechimp.countdown/.Main");
        cx.post_self(Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        self.remaining -= 1;
        let update = self.update.expect("dex built");
        self.base
            .invoke(cx, update, &[Value::Int(self.remaining), Value::Int(96)]);
        self.base.env.framework_tail(cx, 4_000);

        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0x0000);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        // Four big seven-segment-ish digits.
        let dw = w / 5;
        for d in 0..4u32 {
            let lit = (self.remaining >> d) & 1 == 0;
            canvas.fill_rect(
                cx,
                Rect::new(d * (dw + 2) + 2, h / 3, dw, h / 4),
                if lit { 0x07e0 } else { 0x0280 },
            );
        }
        canvas.draw_text(cx, "remaining", 4, h / 8, 0xffff);
        self.base.post(cx, canvas);
        cx.post_self_after(1_000 * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}
