//! The 19 Agave benchmark workloads, modeled on the Agave Android
//! framework.
//!
//! The paper's suite is 12 open-source applications in 19 configurations
//! (foreground/background and per-input variants). Each module here is a
//! behavioral model of one application built *on the framework API*: it
//! boots with a window from the WindowManager, runs its "Java" logic as
//! real [`agave_dex`] bytecode on the Dalvik model, calls native engines
//! through charged library scopes, plays media through Stagefright or
//! in-process codecs, and posts frames that SurfaceFlinger composites —
//! so the paper's region/process/thread distributions *emerge* from the
//! modeled software stack rather than being tabulated.
//!
//! # Example
//!
//! ```no_run
//! use agave_apps::{run_app, AppId, RunConfig};
//!
//! let summary = run_app(AppId::GalleryMp4View, RunConfig::quick());
//! // Video decodes inside mediaserver, as the paper reports (81%).
//! assert!(summary.instr_process_share("mediaserver") > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aard;
mod common;
mod config;
mod coolreader;
mod countdown;
mod doom;
mod frozenbubble;
mod gallery;
mod jetboy;
mod music;
mod odr;
mod osmand;
mod pm;
mod registry;
mod vlc;

pub use config::RunConfig;
pub use registry::{all_apps, execute_app, execute_app_traced, run_app, AppId};
