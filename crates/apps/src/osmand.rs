//! `osmand.map.view` and `osmand.nav.view` — the OsmAnd map.
//!
//! Map mode: a `Thread-N` tile loader streams the offline region file and
//! decodes tiles, while the main thread pans the map at ~15 fps (tile
//! blits + vector overlays). Navigation mode adds a periodic route
//! recomputation — Bellman-Ford relaxation over a road graph, run as real
//! Dalvik bytecode on an `AsyncTask`.

use crate::common::{app_dex, seed_edges, AppBase, MSG_FRAME};
use agave_android::{
    Actor, Android, AppEnv, Bitmap, Ctx, Message, PixelFormat, Rect, TICKS_PER_MS,
};
use agave_dalvik::{HeapRef, Value, VmRef};
use agave_dex::MethodId;

const FRAME_MS: u64 = 66; // ~15 fps pan
const TILE_MS: u64 = 500;
const ROUTE_MS: u64 = 2_000;
const ROAD_NODES: i64 = 400;
const ROAD_EDGES: usize = 1_000;

pub(crate) fn install(android: &mut Android, env: AppEnv, nav: bool) {
    let pid = env.pid;
    android
        .kernel
        .map_lib(pid, "libosmand.so", 900 * 1024, 60 * 1024);
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(Osmand::new(env, nav)),
    );
}

struct Osmand {
    base: AppBase,
    nav: bool,
    frame_no: u64,
    tile: Option<Bitmap>,
}

impl Osmand {
    fn new(env: AppEnv, nav: bool) -> Self {
        Osmand {
            base: AppBase::new(env),
            nav,
            frame_no: 0,
            tile: None,
        }
    }
}

/// The tile loader thread: streams the .obf region file and rasterizes
/// tiles.
struct TileLoader {
    offset: u64,
}

impl Actor for TileLoader {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self(Message::new(0));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        let mut buf = vec![0u8; 16 * 1024];
        let n = cx.fs_read("/sdcard/osmand/region.obf", self.offset, &mut buf);
        if n == 0 {
            self.offset = 0;
        } else {
            self.offset += n as u64;
        }
        // Tile decode: protobuf-ish parse + polygon assembly in the
        // native renderer.
        let libz = cx.intern_region("libz.so");
        cx.call_lib(libz, 2 * n as u64);
        let osmand = cx.intern_region("libosmand.so");
        cx.call_lib(osmand, 4 * n as u64);
        let dvm = cx.well_known().libdvm;
        cx.call_lib(dvm, 3 * n as u64);
        let heap = cx.well_known().dalvik_heap;
        cx.data_rw(heap, n as u64, n as u64 / 2);
        cx.post_self_after(TILE_MS * TICKS_PER_MS, Message::new(0));
    }
}

/// The routing AsyncTask: periodic shortest-path relaxation in bytecode.
struct Router {
    vm: VmRef,
    relax: MethodId,
    dist: HeapRef,
    edges: HeapRef,
}

impl Actor for Router {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self(Message::new(0));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        let out = self.vm.borrow_mut().invoke(
            cx,
            self.relax,
            &[Value::Ref(self.dist), Value::Ref(self.edges), Value::Int(2)],
        );
        assert_eq!(out.expect("relax returns").as_int(), 0); // source dist
        cx.post_self_after(ROUTE_MS * TICKS_PER_MS, Message::new(0));
    }
}

impl Actor for Osmand {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lnet/osmand/Map;", 6, 2);
        let relax = dex.add_relax_method();
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "net.osmand.apk");
        self.base.open_window(cx, "net.osmand/.MapActivity");

        // A pre-rendered tile bitmap the pan loop blits around.
        let win = self.base.window.as_ref().expect("window").clone();
        let ts = (win.width() / 3).max(8);
        let mut tile = Bitmap::new(ts, ts, PixelFormat::Rgb565);
        for y in 0..ts {
            for x in 0..ts {
                if (x / 4 + y / 4) % 2 == 0 {
                    tile.set_pixel(x, y, 0xad55);
                }
            }
        }
        self.tile = Some(tile);

        let pid = cx.pid();
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(pid, "Thread-21", dvm, Box::new(TileLoader { offset: 0 }));

        if self.nav {
            let vm = self.base.vm.as_ref().expect("vm").clone();
            let (dist, edges) = seed_edges(&vm, ROAD_NODES, ROAD_EDGES);
            cx.spawn_thread_in(
                pid,
                "AsyncTask #2",
                dvm,
                Box::new(Router {
                    vm,
                    relax,
                    dist,
                    edges,
                }),
            );
        }
        cx.post_self(Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        self.frame_no += 1;
        let mut canvas = self.base.new_canvas();
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        // Tile mosaic, panning.
        let tile = self.tile.clone().expect("tile built");
        let ts = tile.width();
        let pan = (self.frame_no as u32 * 2) % ts.max(1);
        let mut y = 0;
        while y < h {
            let mut x = 0;
            while x < w {
                canvas.draw_bitmap(cx, &tile, tile.bounds(), x.saturating_sub(pan), y);
                x += ts;
            }
            y += ts;
        }
        // Vector overlays: roads + position marker.
        for road in 0..6u32 {
            canvas.fill_rect(cx, Rect::new(0, (road * 2 + 3) * h / 16, w, 2), 0xfbe0);
        }
        canvas.fill_rect(cx, Rect::new(w / 2, h / 2, 4, 4), 0x001f);
        if self.nav {
            // The active route line.
            canvas.fill_rect(cx, Rect::new(w / 4, 0, 3, h), 0x07e0);
            canvas.draw_text(cx, "turn left in 300 m", 4, 2, 0x0000);
        }
        if self.frame_no.is_multiple_of(10) {
            self.base.env.framework_tail(cx, 7_000);
        }
        self.base.post(cx, canvas);
        cx.post_self_after(FRAME_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}
