//! `odr.ppt.view`, `odr.txt.view`, `odr.xls.view` — OpenDocument Reader
//! over three input types.
//!
//! A pure-Dalvik document viewer: an `AsyncTask` inflates and parses the
//! document (zip + XML for ppt/xls), then the main thread renders pages —
//! image-heavy slides for ppt, line after line of text for txt, and a
//! cell grid with a bytecode recalculation pass for xls. Same binary,
//! three very different reference mixes — the reason the suite carries
//! per-input variants.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, TICKS_PER_MS};
use agave_dalvik::{HeapRef, Value, VmRef};
use agave_dex::MethodId;

const PAGE_MS: u64 = 2_500;
const MSG_PARSED: u32 = 9;

/// The three document inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DocKind {
    /// Slide deck (image-heavy rendering).
    Ppt,
    /// Plain text (text-heavy rendering).
    Txt,
    /// Spreadsheet (grid + recalculation).
    Xls,
}

impl DocKind {
    fn path(self) -> &'static str {
        match self {
            DocKind::Ppt => "/sdcard/docs/slides.ppt",
            DocKind::Txt => "/sdcard/docs/notes.txt",
            DocKind::Xls => "/sdcard/docs/sheet.xls",
        }
    }

    fn zipped(self) -> bool {
        matches!(self, DocKind::Ppt | DocKind::Xls)
    }
}

pub(crate) fn install(android: &mut Android, env: AppEnv, kind: DocKind) {
    let pid = env.pid;
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(Odr {
            base: AppBase::new(env),
            kind,
            update: None,
            sum: None,
            cells: None,
            page: 0,
        }),
    );
}

struct Odr {
    base: AppBase,
    kind: DocKind,
    update: Option<MethodId>,
    sum: Option<MethodId>,
    cells: Option<HeapRef>,
    page: u64,
}

/// The parsing AsyncTask: reads + inflates + tokenizes the document.
struct Parser {
    kind: DocKind,
    vm: VmRef,
    update: MethodId,
    notify: agave_android::Tid,
}

impl Actor for Parser {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let path = self.kind.path();
        // Lazy viewers only materialize the visible prefix.
        let len = cx
            .fs_len(path)
            .expect("document registered")
            .min(256 * 1024);
        let mut buf = vec![0u8; 32 * 1024];
        let mut offset = 0u64;
        let libz = cx.intern_region("libz.so");
        let mut state = 17i64;
        while offset < len {
            let n = cx.fs_read(path, offset, &mut buf);
            if n == 0 {
                break;
            }
            offset += n as u64;
            if self.kind.zipped() {
                cx.call_lib(libz, 2 * n as u64); // inflate
            }
            // Tokenize/object-model build in bytecode.
            let out = self.vm.borrow_mut().invoke(
                cx,
                self.update,
                &[Value::Int(state), Value::Int((n as i64 / 160).max(16))],
            );
            state = out.expect("update returns").as_int();
        }
        cx.send(self.notify, Message::new(MSG_PARSED));
        cx.exit_thread();
    }

    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}

impl Actor for Odr {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lat/tomtasche/reader/Main;", 5, 1);
        let update = dex.add_update_method();
        let fw = dex.fw;
        self.base
            .init_vm(cx, dex.dex, fw, "at.tomtasche.reader.apk");
        self.update = Some(update);
        self.sum = Some(fw.sum);
        self.base.open_window(cx, "at.tomtasche.reader/.Main");

        let vm = self.base.vm.as_ref().expect("vm").clone();
        if self.kind == DocKind::Xls {
            // The sheet model: 4,000 numeric cells, rooted across GCs.
            let mut vmref = vm.borrow_mut();
            let cells = vmref.heap.alloc_array(4_000);
            for i in 0..4_000 {
                vmref.heap.array_set(cells, i, (i as i64 * 37) % 1000);
            }
            vmref.add_root(cells);
            drop(vmref);
            self.cells = Some(cells);
        }

        let me = cx.tid();
        let pid = cx.pid();
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(
            pid,
            "AsyncTask #1",
            dvm,
            Box::new(Parser {
                kind: self.kind,
                vm,
                update,
                notify: me,
            }),
        );
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        match msg.what {
            MSG_PARSED | MSG_FRAME => {
                self.render_page(cx);
                cx.post_self_after(PAGE_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
            }
            _ => {}
        }
    }
}

impl Odr {
    fn render_page(&mut self, cx: &mut Ctx<'_>) {
        self.page += 1;
        let mut canvas = self.base.new_canvas();
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        match self.kind {
            DocKind::Ppt => {
                // A slide: background wash + title + two picture blocks.
                canvas.draw_gradient(cx, Rect::new(0, 0, w, h), 0xffff, 0xa554);
                canvas.draw_text(cx, "Quarterly results", 4, 4, 0x0000);
                canvas.draw_gradient(
                    cx,
                    Rect::new(w / 10, h / 4, w * 2 / 5, h / 3),
                    0xf800,
                    0xffe0,
                );
                canvas.draw_gradient(
                    cx,
                    Rect::new(w / 2, h / 4, w * 2 / 5, h / 3),
                    0x001f,
                    0x07ff,
                );
            }
            DocKind::Txt => {
                canvas.clear(cx, 0xffff);
                let line_h = (h / 30).max(3);
                for line in 0..28u32 {
                    let y = line * line_h + 2;
                    if y + line_h >= h {
                        break;
                    }
                    canvas.draw_text(cx, "lorem ipsum dolor sit amet consectetur", 2, y, 0x0000);
                }
            }
            DocKind::Xls => {
                // Recalculate the visible range in bytecode.
                if let (Some(sum), Some(cells)) = (self.sum, self.cells) {
                    let total = self
                        .base
                        .invoke(cx, sum, &[Value::Ref(cells)])
                        .expect("sum returns")
                        .as_int();
                    assert!(total > 0);
                }
                // Grid lines + a column of figures.
                canvas.clear(cx, 0xffff);
                let cols = 6u32;
                let rows = 18u32;
                for c in 0..=cols {
                    canvas.fill_rect(cx, Rect::new(c * (w / cols).max(1), 0, 1, h), 0x8410);
                }
                for r in 0..=rows {
                    canvas.fill_rect(cx, Rect::new(0, r * (h / rows).max(1), w, 1), 0x8410);
                }
                for r in 0..rows.min(12) {
                    canvas.draw_text(cx, "1024.56", 3, r * (h / rows).max(1) + 1, 0x0000);
                }
            }
        }
        cx.fs_write(
            "/data/data/at.tomtasche.reader/files/recent",
            0,
            &self.page.to_le_bytes(),
        );
        self.base.env.framework_tail(cx, 8_000);
        self.base.post(cx, canvas);
    }
}
