//! `gallery.mp4.view` — Gingerbread's stock video player.
//!
//! The app itself does almost nothing: it opens a window, hands the
//! surface to `MediaPlayer`, and fades its controls. Stagefright decodes
//! **inside mediaserver** and posts frames straight to the surface, which
//! is why the paper measures mediaserver at 81 % of this benchmark's
//! instruction references (77 % of data references).

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, TICKS_PER_MS};

const CONTROLS_MS: u64 = 700;
/// 500 kbps at 15 fps.
const VIDEO_BYTES_PER_FRAME: usize = 4_200;

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android
        .kernel
        .spawn_thread(pid, &env.main_thread_name(), Box::new(Gallery::new(env)));
}

struct Gallery {
    base: AppBase,
    overlays: u64,
}

impl Gallery {
    fn new(env: AppEnv) -> Self {
        Gallery {
            base: AppBase::new(env),
            overlays: 0,
        }
    }
}

impl Actor for Gallery {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let dex = app_dex("Lcom/android/gallery/Movie;", 2, 0);
        let fw = dex.fw;
        self.base
            .init_vm(cx, dex.dex, fw, "com.android.gallery.apk");
        let win = self.base.open_window(cx, "com.android.gallery/.MovieView");

        // Hand the surface to mediaserver and start playback.
        let player = self.base.env.media_player();
        player.play_mp4(
            cx,
            "/sdcard/video/clip.mp4",
            win.index(),
            15,
            VIDEO_BYTES_PER_FRAME,
            true,
        );
        cx.post_self_after(CONTROLS_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what != MSG_FRAME {
            return;
        }
        // Occasional lightweight UI work: progress bookkeeping. The
        // controls overlay is tiny compared to the video frames mediaserver
        // pushes.
        self.overlays += 1;
        self.base.env.framework_tail(cx, 2_500);
        let _ = Rect::new(0, 0, 1, 1);
        cx.post_self_after(CONTROLS_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}
