//! The workload registry and run harness.

use crate::config::RunConfig;
use agave_android::{Android, DisplayConfig};
use agave_trace::{CounterSnapshot, NameDirectory, RunSummary, SharedSink};
use std::fmt;

/// The 19 Agave workload configurations, labeled exactly as on the
/// paper's figure x-axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the figure labels 1:1
pub enum AppId {
    AardMain,
    CoolreaderEpubView,
    CountdownMain,
    DoomMain,
    FrozenbubbleMain,
    GalleryMp4View,
    JetboyMain,
    MusicMp3View,
    MusicMp3ViewBkg,
    OdrPptView,
    OdrTxtView,
    OdrXlsView,
    OsmandMapView,
    OsmandNavView,
    PmApkView,
    PmApkViewBkg,
    VlcMp3View,
    VlcMp3ViewBkg,
    VlcMp4View,
}

impl AppId {
    /// The figure label (e.g. `"gallery.mp4.view"`).
    pub fn label(self) -> &'static str {
        match self {
            AppId::AardMain => "aard.main",
            AppId::CoolreaderEpubView => "coolreader.epub.view",
            AppId::CountdownMain => "countdown.main",
            AppId::DoomMain => "doom.main",
            AppId::FrozenbubbleMain => "frozenbubble.main",
            AppId::GalleryMp4View => "gallery.mp4.view",
            AppId::JetboyMain => "jetboy.main",
            AppId::MusicMp3View => "music.mp3.view",
            AppId::MusicMp3ViewBkg => "music.mp3.view.bkg",
            AppId::OdrPptView => "odr.ppt.view",
            AppId::OdrTxtView => "odr.txt.view",
            AppId::OdrXlsView => "odr.xls.view",
            AppId::OsmandMapView => "osmand.map.view",
            AppId::OsmandNavView => "osmand.nav.view",
            AppId::PmApkView => "pm.apk.view",
            AppId::PmApkViewBkg => "pm.apk.view.bkg",
            AppId::VlcMp3View => "vlc.mp3.view",
            AppId::VlcMp3ViewBkg => "vlc.mp3.view.bkg",
            AppId::VlcMp4View => "vlc.mp4.view",
        }
    }

    /// Android package name.
    pub fn package(self) -> &'static str {
        match self {
            AppId::AardMain => "aarddict.android",
            AppId::CoolreaderEpubView => "org.coolreader",
            AppId::CountdownMain => "org.codechimp.countdown",
            AppId::DoomMain => "com.prboom",
            AppId::FrozenbubbleMain => "org.jfedor.frozenbubble",
            AppId::GalleryMp4View => "com.android.gallery",
            AppId::JetboyMain => "com.example.jetboy",
            AppId::MusicMp3View | AppId::MusicMp3ViewBkg => "com.android.music",
            AppId::OdrPptView | AppId::OdrTxtView | AppId::OdrXlsView => "at.tomtasche.reader",
            AppId::OsmandMapView | AppId::OsmandNavView => "net.osmand",
            AppId::PmApkView | AppId::PmApkViewBkg => "com.android.packageinstaller",
            AppId::VlcMp3View | AppId::VlcMp3ViewBkg | AppId::VlcMp4View => "org.videolan.vlc",
        }
    }

    /// APK path (one per package).
    pub fn apk_path(self) -> String {
        format!("/data/app/{}.apk", self.package())
    }

    /// Whether the workload runs with its UI hidden.
    pub fn is_background(self) -> bool {
        matches!(
            self,
            AppId::MusicMp3ViewBkg | AppId::PmApkViewBkg | AppId::VlcMp3ViewBkg
        )
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// All 19 workloads in figure order.
pub fn all_apps() -> [AppId; 19] {
    [
        AppId::AardMain,
        AppId::CoolreaderEpubView,
        AppId::CountdownMain,
        AppId::DoomMain,
        AppId::FrozenbubbleMain,
        AppId::GalleryMp4View,
        AppId::JetboyMain,
        AppId::MusicMp3View,
        AppId::MusicMp3ViewBkg,
        AppId::OdrPptView,
        AppId::OdrTxtView,
        AppId::OdrXlsView,
        AppId::OsmandMapView,
        AppId::OsmandNavView,
        AppId::PmApkView,
        AppId::PmApkViewBkg,
        AppId::VlcMp3View,
        AppId::VlcMp3ViewBkg,
        AppId::VlcMp4View,
    ]
}

/// Registers the benchmark input corpus.
fn register_inputs(android: &mut Android) {
    let vfs = android.kernel.vfs_mut();
    vfs.add_file("/sdcard/aard/dict.aar", 5 << 20, 0xa1);
    vfs.add_file("/sdcard/books/book.epub", 1_500 * 1024, 0xa2);
    vfs.add_file("/sdcard/doom/doom1.wad", 4 << 20, 0xa3);
    vfs.add_file("/sdcard/video/clip.mp4", 8 << 20, 0xa4);
    vfs.add_file("/sdcard/music/track.mp3", 3 << 20, 0xa5);
    vfs.add_file("/sdcard/docs/slides.ppt", 2 << 20, 0xa6);
    vfs.add_file("/sdcard/docs/notes.txt", 200 * 1024, 0xa7);
    vfs.add_file("/sdcard/docs/sheet.xls", 800 * 1024, 0xa8);
    vfs.add_file("/sdcard/osmand/region.obf", 6 << 20, 0xa9);
    vfs.add_file("/sdcard/download/extra.apk", 1_300 * 1024, 0xaa);
    vfs.add_file("/sdcard/jetboy/soundtrack.jet", 400 * 1024, 0xab);
}

/// Boots a fresh Android, launches `id`, runs it for the configured
/// duration, and returns the run summary labeled with the figure name.
pub fn run_app(id: AppId, config: RunConfig) -> RunSummary {
    execute_app(id, config, Vec::new()).0
}

/// The engine-facing run path every other entry point funnels through.
///
/// Boots a fresh Android world, attaches each of `sinks` to its
/// classified reference stream, launches `id`, runs it for the
/// configured duration, and returns the run summary (wall time stamped)
/// plus the [`NameDirectory`] for resolving region/process ids after the
/// world is gone.
///
/// Sinks are attached after boot, so they observe exactly the workload's
/// steady-state traffic (the paper's measurements likewise exclude
/// boot). Each call builds a private world, so concurrent calls from
/// different threads never share state — this is what lets
/// `agave_core::engine` fan the suite out across threads.
pub fn execute_app(
    id: AppId,
    config: RunConfig,
    sinks: Vec<SharedSink>,
) -> (RunSummary, NameDirectory) {
    let (summary, directory, _) = execute_app_traced(id, config, sinks);
    (summary, directory)
}

/// [`execute_app`] plus the boot-baseline [`CounterSnapshot`].
///
/// The snapshot is taken at the exact moment the sinks attach (after
/// boot), so `snapshot + sink-observed stream = final counters` — the
/// invariant the `agave-replay` trace format relies on to rebuild
/// byte-identical run summaries from a captured file.
pub fn execute_app_traced(
    id: AppId,
    config: RunConfig,
    sinks: Vec<SharedSink>,
) -> (RunSummary, NameDirectory, CounterSnapshot) {
    let started = std::time::Instant::now();
    let mut android = {
        let _boot = agave_telemetry::Span::enter_labeled("boot", id.label());
        Android::boot(DisplayConfig::wvga().scaled(config.display_scale))
    };
    for sink in sinks {
        android.kernel.attach_sink(sink);
    }
    let baseline = android.kernel.tracer().counter_snapshot();
    register_inputs(&mut android);
    let env = android.launch_app(id.package(), &id.apk_path());
    install(id, &mut android, env);
    android.run_ms(config.duration_ms);
    // Drain the batched reference stream so sinks are complete before
    // their consumers harvest reports.
    {
        let _flush = agave_telemetry::Span::enter_labeled("sink flush", id.label());
        android.kernel.tracer_mut().flush_sinks();
    }
    let mut summary = android.kernel.tracer().summarize(id.label());
    let directory = android.kernel.tracer().name_directory();
    summary.wall_time_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (summary, directory, baseline)
}

/// Spawns the workload's actors into a booted world.
fn install(id: AppId, android: &mut Android, env: agave_android::AppEnv) {
    match id {
        AppId::AardMain => crate::aard::install(android, env),
        AppId::CoolreaderEpubView => crate::coolreader::install(android, env),
        AppId::CountdownMain => crate::countdown::install(android, env),
        AppId::DoomMain => crate::doom::install(android, env),
        AppId::FrozenbubbleMain => crate::frozenbubble::install(android, env),
        AppId::GalleryMp4View => crate::gallery::install(android, env),
        AppId::JetboyMain => crate::jetboy::install(android, env),
        AppId::MusicMp3View => crate::music::install(android, env, false),
        AppId::MusicMp3ViewBkg => crate::music::install(android, env, true),
        AppId::OdrPptView => crate::odr::install(android, env, crate::odr::DocKind::Ppt),
        AppId::OdrTxtView => crate::odr::install(android, env, crate::odr::DocKind::Txt),
        AppId::OdrXlsView => crate::odr::install(android, env, crate::odr::DocKind::Xls),
        AppId::OsmandMapView => crate::osmand::install(android, env, false),
        AppId::OsmandNavView => crate::osmand::install(android, env, true),
        AppId::PmApkView => crate::pm::install(android, env, false),
        AppId::PmApkViewBkg => crate::pm::install(android, env, true),
        AppId::VlcMp3View => crate::vlc::install(android, env, crate::vlc::Media::Mp3, false),
        AppId::VlcMp3ViewBkg => crate::vlc::install(android, env, crate::vlc::Media::Mp3, true),
        AppId::VlcMp4View => crate::vlc::install(android, env, crate::vlc::Media::Mp4, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_figures() {
        let labels: Vec<&str> = all_apps().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 19);
        assert!(labels.contains(&"gallery.mp4.view"));
        assert!(labels.contains(&"music.mp3.view.bkg"));
        assert!(labels.contains(&"odr.xls.view"));
        // 12 distinct packages.
        let mut pkgs: Vec<&str> = all_apps().iter().map(|a| a.package()).collect();
        pkgs.sort_unstable();
        pkgs.dedup();
        assert_eq!(pkgs.len(), 12);
    }

    #[test]
    fn background_flags() {
        assert!(AppId::MusicMp3ViewBkg.is_background());
        assert!(!AppId::MusicMp3View.is_background());
        assert_eq!(all_apps().iter().filter(|a| a.is_background()).count(), 3);
    }
}
