//! `frozenbubble.main` — the Frozen Bubble puzzle game.
//!
//! A pure-Java (Dalvik) game: a dedicated `Thread-N` game thread runs the
//! physics/update bytecode at 30 fps and the main thread paints the
//! bubbles — the canonical dalvik-heavy interactive workload, and a steady
//! source of JIT (`Compiler`) and `GC` activity.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{
    Actor, Android, AppEnv, Ctx, Message, Rect, TouchAction, TouchEvent, TICKS_PER_MS,
};
use agave_dalvik::{Value, VmRef};
use agave_dex::MethodId;

const FRAME_MS: u64 = 33; // 30 fps

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android.kernel.spawn_thread(
        pid,
        &env.main_thread_name(),
        Box::new(FrozenBubble::new(env)),
    );
}

struct FrozenBubble {
    base: AppBase,
    frame_no: u64,
}

impl FrozenBubble {
    fn new(env: AppEnv) -> Self {
        FrozenBubble {
            base: AppBase::new(env),
            frame_no: 0,
        }
    }
}

/// The game thread: runs the physics step as bytecode every frame.
struct GameThread {
    vm: VmRef,
    update: MethodId,
    state: i64,
}

impl Actor for GameThread {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(FRAME_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        // Physics + collision grid: a meaty allocation-and-scan step.
        let out = self.vm.borrow_mut().invoke(
            cx,
            self.update,
            &[Value::Int(self.state), Value::Int(220)],
        );
        self.state = out.expect("update returns").as_int();
        cx.post_self_after(FRAME_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}

impl Actor for FrozenBubble {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lorg/jfedor/frozenbubble/Game;", 6, 2);
        let update = dex.add_update_method();
        let fw = dex.fw;
        self.base
            .init_vm(cx, dex.dex, fw, "org.jfedor.frozenbubble.apk");
        self.base.open_window(cx, "org.jfedor.frozenbubble/.Main");

        let vm = self.base.vm.as_ref().expect("vm").clone();
        let pid = cx.pid();
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(
            pid,
            "Thread-10", // the game loop thread, as the app names it
            dvm,
            Box::new(GameThread {
                vm,
                update,
                state: 0x5eed,
            }),
        );
        self.base.env.focus_input(cx.tid());
        cx.post_self(Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if let Some(touch) = TouchEvent::from_message(&msg) {
            // Aim/fire the launcher: a burst of game logic on release.
            if touch.action == TouchAction::Up {
                let vm = self.base.vm.as_ref().expect("vm").clone();
                let fw = self.base.fw();
                vm.borrow_mut().invoke(
                    cx,
                    fw.mix,
                    &[
                        agave_dalvik::Value::Int(i64::from(touch.x) * 31 + i64::from(touch.y)),
                        agave_dalvik::Value::Int(180),
                    ],
                );
            }
            return;
        }
        if msg.what != MSG_FRAME {
            return;
        }
        self.frame_no += 1;
        // Paint: background + bubble grid + launcher.
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0x19f6);
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        let bubble = (w / 9).max(2);
        for row in 0..6u32 {
            for col in 0..8u32 {
                if (row * 8 + col + self.frame_no as u32).is_multiple_of(5) {
                    continue; // popped
                }
                let color = [0xf800u32, 0x07e0, 0x001f, 0xffe0][((row + col) % 4) as usize];
                canvas.fill_rect(
                    cx,
                    Rect::new(col * bubble + 1, row * bubble + 1, bubble - 2, bubble - 2),
                    color,
                );
            }
        }
        // The flying bubble.
        let fx = (self.frame_no as u32 * 11) % w.max(1);
        let fy = h - ((self.frame_no as u32 * 17) % (h * 2 / 3).max(1));
        canvas.fill_rect(
            cx,
            Rect::new(fx, fy.min(h - 2), bubble, bubble.min(2)),
            0xffff,
        );
        self.base.env.framework_tail(cx, 2_500);
        self.base.post(cx, canvas);
        cx.post_self_after(FRAME_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
    }
}
