//! `aard.main` — the Aard offline dictionary.
//!
//! An `AsyncTask` loads the dictionary index from `/sdcard/aard/dict.aar`
//! into a Dalvik array; simulated keystrokes then run a bytecode prefix
//! scan over it and redraw the results list. Dalvik- and text-heavy, with
//! bursts of file I/O during index loading.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{Actor, Android, AppEnv, Ctx, Message, Rect, TICKS_PER_MS};
use agave_dalvik::{HeapRef, Value};
use agave_dex::MethodId;

const KEYSTROKE_MS: u64 = 700;
const INDEX_WORDS: usize = 4_000;
const MSG_LOADED: u32 = 7;

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android
        .kernel
        .spawn_thread(pid, &env.main_thread_name(), Box::new(Aard::new(env)));
}

struct Aard {
    base: AppBase,
    search: Option<MethodId>,
    index: Option<HeapRef>,
    keystrokes: u64,
}

impl Aard {
    fn new(env: AppEnv) -> Self {
        Aard {
            base: AppBase::new(env),
            search: None,
            index: None,
            keystrokes: 0,
        }
    }
}

/// The index-loading AsyncTask: reads the dictionary file and fills the
/// Dalvik word array via bytecode.
struct IndexLoader {
    vm: agave_dalvik::VmRef,
    fill: MethodId,
    index: HeapRef,
    notify: agave_android::Tid,
}

impl Actor for IndexLoader {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut buf = vec![0u8; 32 * 1024];
        let mut offset = 0u64;
        let mut chunk = 0i64;
        // Load the first megabyte of index blocks.
        while offset < (256 << 10) {
            let n = cx.fs_read("/sdcard/aard/dict.aar", offset, &mut buf);
            if n == 0 {
                break;
            }
            offset += n as u64;
            // Parse a slice of words from the chunk into the array.
            let words_per_chunk = (INDEX_WORDS / 32) as i64;
            self.vm.borrow_mut().invoke(
                cx,
                self.fill,
                &[
                    Value::Ref(self.index),
                    Value::Int(words_per_chunk),
                    Value::Int(chunk * 31 + 7),
                ],
            );
            chunk += 1;
        }
        cx.send(self.notify, Message::new(MSG_LOADED));
        cx.exit_thread();
    }

    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}

/// The per-keystroke search AsyncTask: scans the index in bytecode and
/// reports the hit count to the UI thread.
struct SearchTask {
    vm: agave_dalvik::VmRef,
    search: MethodId,
    index: HeapRef,
    notify: agave_android::Tid,
    keystrokes: u64,
}

impl Actor for SearchTask {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(KEYSTROKE_MS * TICKS_PER_MS, Message::new(0));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        self.keystrokes += 1;
        let needle = (self.keystrokes % 251) as i64;
        let hits = self
            .vm
            .borrow_mut()
            .invoke(
                cx,
                self.search,
                &[Value::Ref(self.index), Value::Int(needle)],
            )
            .expect("search returns")
            .as_int();
        cx.send(self.notify, Message::new(MSG_FRAME).arg1(hits));
        cx.post_self_after(KEYSTROKE_MS * TICKS_PER_MS, Message::new(0));
    }
}

impl Actor for Aard {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Laarddict/Main;", 4, 1);
        let search = dex.add_search_method();
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "aarddict.android.apk");
        self.search = Some(search);
        self.base.open_window(cx, "aarddict.android/.Main");

        // Allocate and root the index array, then load it asynchronously.
        let vm = self.base.vm.as_ref().expect("vm").clone();
        let index = {
            let mut vm = vm.borrow_mut();
            let arr = vm.heap.alloc_array(INDEX_WORDS);
            vm.add_root(arr);
            arr
        };
        self.index = Some(index);
        let me = cx.tid();
        let pid = cx.pid();
        let dvm = cx.well_known().libdvm;
        cx.spawn_thread_in(
            pid,
            "AsyncTask #1",
            dvm,
            Box::new(IndexLoader {
                vm,
                fill: self.base.fw().fill,
                index,
                notify: me,
            }),
        );
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        match msg.what {
            MSG_LOADED => {
                // Index ready: hand the search loop to an AsyncTask.
                let vm = self.base.vm.as_ref().expect("vm").clone();
                let me = cx.tid();
                let pid = cx.pid();
                let dvm = cx.well_known().libdvm;
                cx.spawn_thread_in(
                    pid,
                    "AsyncTask #2",
                    dvm,
                    Box::new(SearchTask {
                        vm,
                        search: self.search.expect("dex built"),
                        index: self.index.expect("index"),
                        notify: me,
                        keystrokes: 0,
                    }),
                );
            }
            MSG_FRAME => self.redraw(cx, msg.arg1),
            _ => {}
        }
    }
}

impl Aard {
    fn redraw(&mut self, cx: &mut Ctx<'_>, hits: i64) {
        self.keystrokes += 1;
        // Framework overhead: list adapter, layout.
        self.base.env.framework_tail(cx, 9_000);
        // Redraw the result list.
        let mut canvas = self.base.new_canvas();
        canvas.clear(cx, 0xffff);
        let row_h = (canvas.bitmap().height() / 14).max(6);
        for row in 0..12u32 {
            let y = row * row_h + 2;
            canvas.fill_rect(
                cx,
                Rect::new(0, y + row_h - 2, canvas.bitmap().width(), 1),
                0xc618,
            );
            canvas.draw_text(cx, "definition entry", 4, y, 0x0000);
        }
        canvas.draw_text(cx, &format!("matches: {hits}"), 4, 0, 0x001f);
        self.base.post(cx, canvas);
    }
}
