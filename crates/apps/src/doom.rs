//! `doom.main` — the prboom Doom port.
//!
//! An NDK game: the engine (`libprboom.so`) runs the tic + renderer
//! natively at ~35 fps, streams lumps from the WAD, mixes its own sound
//! effects into an in-process `AudioTrack`, and leaves only input/glue to
//! Dalvik. The heaviest native-code workload in the suite.

use crate::common::{app_dex, AppBase, MSG_FRAME};
use agave_android::{
    Actor, Android, AppEnv, Ctx, Message, Rect, RefKind, TouchEvent, TICKS_PER_MS,
};
use agave_dalvik::Value;
use agave_dex::MethodId;
use agave_media::AudioBus;

const FRAME_MS: u64 = 28; // ~35 fps
const PRBOOM: &str = "libprboom.so";

pub(crate) fn install(android: &mut Android, env: AppEnv) {
    let pid = env.pid;
    android
        .kernel
        .map_lib(pid, PRBOOM, 1_700 * 1024, 380 * 1024);
    android
        .kernel
        .map_lib(pid, "libSDL.so", 420 * 1024, 40 * 1024);
    android
        .kernel
        .spawn_thread(pid, &env.main_thread_name(), Box::new(Doom::new(env)));
}

struct Doom {
    base: AppBase,
    glue: Option<MethodId>,
    audio: Option<agave_media::AudioTrack>,
    wad_offset: u64,
    tic: u64,
}

impl Doom {
    fn new(env: AppEnv) -> Self {
        Doom {
            base: AppBase::new(env),
            glue: None,
            audio: None,
            wad_offset: 0,
            tic: 0,
        }
    }

    fn frame(&mut self, cx: &mut Ctx<'_>) {
        self.tic += 1;
        let prboom = cx.intern_region(PRBOOM);
        let sdl = cx.intern_region("libSDL.so");
        let wk = cx.well_known();

        // Stream a lump from the WAD every few tics.
        if self.tic % 8 == 1 {
            let mut lump = vec![0u8; 32 * 1024];
            let n = cx.fs_read("/sdcard/doom/doom1.wad", self.wad_offset, &mut lump);
            if n == 0 {
                self.wad_offset = 0;
            } else {
                self.wad_offset += n as u64;
            }
            cx.call_lib(prboom, 2 * n as u64); // lump decode
        }

        // Game tic: thinkers, physics, BSP traversal.
        cx.in_lib(prboom, |cx| {
            cx.op(20_000);
            cx.charge(wk.heap, RefKind::DataRead, 6_000);
            cx.charge(wk.heap, RefKind::DataWrite, 2_400);
            cx.stack_rw(2_800, 1_400);
        });

        // Software renderer: column/span drawing into the frame.
        let mut canvas = self.base.new_canvas();
        let w = canvas.bitmap().width();
        let h = canvas.bitmap().height();
        canvas.draw_gradient(cx, Rect::new(0, 0, w, h / 2), 0x4208, 0x630c); // ceiling
        canvas.draw_gradient(cx, Rect::new(0, h / 2, w, h / 2), 0x3186, 0x18c3); // floor
                                                                                 // Wall columns.
        let cols = (w / 4).max(1);
        for c in 0..cols {
            let height = (h / 3) + ((self.tic as u32 * 7 + c * 13) % (h / 3).max(1));
            canvas.fill_rect(
                cx,
                Rect::new(c * 4, (h - height) / 2, 4, height),
                0x8000 | (c * 37) & 0x7ff,
            );
        }
        // A couple of sprites.
        for s in 0..3u32 {
            let x = (self.tic as u32 * (9 + s * 5)) % w.max(1);
            canvas.fill_rect(cx, Rect::new(x, h / 2, w / 16 + 1, h / 8 + 1), 0xfbe0);
        }
        cx.call_lib(sdl, 4_000); // blit glue
        self.base.post(cx, canvas);

        // Sound effects: mix a tic's worth of PCM in the engine.
        if let Some(track) = &self.audio {
            let track = track.clone();
            cx.call_lib(prboom, 8_000);
            let pcm: Vec<i16> =
                (0..882) // 20 ms at 22.05 kHz stereo
                    .map(|i| ((self.tic as i64 * 31 + i) % 8_191) as i16)
                    .collect();
            track.write_pcm(cx, &pcm);
        }

        // Dalvik glue: input poll + lifecycle check.
        let glue = self.glue.expect("dex built");
        self.base
            .invoke(cx, glue, &[Value::Int(self.tic as i64), Value::Int(24)]);
        if self.tic.is_multiple_of(16) {
            self.base.env.framework_tail(cx, 6_000);
        }
    }
}

impl Actor for Doom {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let mut dex = app_dex("Lcom/prboom/Main;", 2, 0);
        let glue = dex.add_update_method();
        let fw = dex.fw;
        self.base.init_vm(cx, dex.dex, fw, "com.prboom.apk");
        self.glue = Some(glue);
        self.base.open_window(cx, "com.prboom/.Main");

        // WAD indexing at startup.
        let prboom = cx.intern_region(PRBOOM);
        let mut header = vec![0u8; 64 * 1024];
        let n = cx.fs_read("/sdcard/doom/doom1.wad", 0, &mut header);
        cx.call_lib(prboom, 3 * n as u64);

        // In-process audio: Doom owns its AudioTrack.
        let bus: AudioBus = self.base.env.audio.clone();
        let track = bus.create_track(cx);
        let pid = cx.pid();
        track.spawn_thread(cx.kernel(), pid);
        self.audio = Some(track);

        self.base.env.focus_input(cx.tid());
        cx.post_self(Message::new(MSG_FRAME));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if TouchEvent::from_message(&msg).is_some() {
            // SDL translates the touch into engine input (turn/fire).
            let prboom = cx.intern_region(PRBOOM);
            let sdl = cx.intern_region("libSDL.so");
            cx.call_lib(sdl, 800);
            cx.call_lib(prboom, 2_500);
            return;
        }
        if msg.what == MSG_FRAME {
            self.frame(cx);
            cx.post_self_after(FRAME_MS * TICKS_PER_MS, Message::new(MSG_FRAME));
        }
    }
}
