//! DEX files: classes and methods.

use crate::asm::MethodBuilder;
use crate::insn::Insn;
use std::fmt;

/// Index of a class within its [`DexFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub u16);

/// Index of a method within its [`DexFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method#{}", self.0)
    }
}

/// A class definition: instance-field and static-slot counts plus methods.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// JVM-style descriptor, e.g. `Lcom/example/Main;`.
    pub name: String,
    /// Number of instance field slots.
    pub field_count: u16,
    /// Number of static slots.
    pub static_count: u16,
    /// Methods declared on this class.
    pub methods: Vec<MethodId>,
}

/// A method definition.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Declaring class.
    pub class: ClassId,
    /// Total frame registers.
    pub num_regs: u16,
    /// Arguments (arriving in the highest `num_args` registers).
    pub num_args: u16,
    /// The code.
    pub code: Vec<Insn>,
}

impl MethodDef {
    /// Encoded size of the method body in bytes (sum of instruction
    /// widths), used to size the mapped dex image and charge bytecode
    /// reads.
    pub fn encoded_size(&self) -> u64 {
        self.code.iter().map(Insn::encoded_size).sum()
    }
}

/// A container of classes and methods — the unit the VM loads and maps as
/// a `*.dex` region.
///
/// See the [crate docs](crate) for an end-to-end assembly example.
#[derive(Debug, Clone, Default)]
pub struct DexFile {
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
}

impl DexFile {
    /// Creates an empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class with the given field/static slot counts.
    pub fn add_class(&mut self, name: &str, field_count: u16, static_count: u16) -> ClassId {
        let id = ClassId(u16::try_from(self.classes.len()).expect("too many classes"));
        self.classes.push(ClassDef {
            name: name.to_owned(),
            field_count,
            static_count,
            methods: Vec::new(),
        });
        id
    }

    /// Finalizes `builder` into a method of `class`.
    ///
    /// # Panics
    ///
    /// Panics if the builder has unbound labels or `class` is invalid.
    pub fn add_method(&mut self, class: ClassId, name: &str, builder: MethodBuilder) -> MethodId {
        let (num_regs, num_args, code) = builder.finish();
        let id = MethodId(u32::try_from(self.methods.len()).expect("too many methods"));
        self.methods.push(MethodDef {
            name: name.to_owned(),
            class,
            num_regs,
            num_args,
            code,
        });
        self.classes[class.0 as usize].methods.push(id);
        id
    }

    /// Looks up a class.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Looks up a method.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.0 as usize]
    }

    /// Finds a method by class and name.
    pub fn find_method(&self, class_name: &str, method_name: &str) -> Option<MethodId> {
        let class = self.classes.iter().position(|c| c.name == class_name)?;
        self.classes[class]
            .methods
            .iter()
            .copied()
            .find(|&m| self.methods[m.0 as usize].name == method_name)
    }

    /// All classes.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// All methods.
    pub fn methods(&self) -> &[MethodDef] {
        &self.methods
    }

    /// Total encoded size of the file (headers + all method bodies): the
    /// length of the mapped `*.dex` region.
    pub fn image_size(&self) -> u64 {
        let header = 112u64; // real dex header size
        let class_items = self.classes.len() as u64 * 32;
        let method_items = self.methods.len() as u64 * 8;
        let code: u64 = self.methods.iter().map(MethodDef::encoded_size).sum();
        header + class_items + method_items + code
    }

    /// Byte offset of a method's body within the image (deterministic
    /// layout in method order).
    pub fn method_offset(&self, id: MethodId) -> u64 {
        let header = 112u64 + self.classes.len() as u64 * 32 + self.methods.len() as u64 * 8;
        let before: u64 = self.methods[..id.0 as usize]
            .iter()
            .map(MethodDef::encoded_size)
            .sum();
        header + before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Reg;

    fn trivial_method() -> MethodBuilder {
        let mut m = MethodBuilder::new(2, 0);
        m.konst(Reg(0), 1);
        m.ret(Some(Reg(0)));
        m
    }

    #[test]
    fn classes_and_methods_are_indexed() {
        let mut dex = DexFile::new();
        let a = dex.add_class("LA;", 2, 1);
        let b = dex.add_class("LB;", 0, 0);
        let m1 = dex.add_method(a, "one", trivial_method());
        let m2 = dex.add_method(b, "two", trivial_method());
        assert_eq!(dex.class(a).name, "LA;");
        assert_eq!(dex.class(a).field_count, 2);
        assert_eq!(dex.method(m1).name, "one");
        assert_eq!(dex.method(m2).class, b);
        assert_eq!(dex.find_method("LA;", "one"), Some(m1));
        assert_eq!(dex.find_method("LA;", "two"), None);
        assert_eq!(dex.find_method("LC;", "one"), None);
    }

    #[test]
    fn image_layout_is_monotonic() {
        let mut dex = DexFile::new();
        let c = dex.add_class("LA;", 0, 0);
        let m1 = dex.add_method(c, "a", trivial_method());
        let m2 = dex.add_method(c, "b", trivial_method());
        let o1 = dex.method_offset(m1);
        let o2 = dex.method_offset(m2);
        assert!(o1 < o2);
        assert!(o2 + dex.method(m2).encoded_size() <= dex.image_size());
    }

    #[test]
    fn encoded_size_sums_instructions() {
        let mut dex = DexFile::new();
        let c = dex.add_class("LA;", 0, 0);
        let m = dex.add_method(c, "a", trivial_method());
        // konst(small) = 4 bytes + ret = 2 bytes.
        assert_eq!(dex.method(m).encoded_size(), 6);
    }
}
