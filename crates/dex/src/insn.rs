//! The instruction set.

use std::fmt;

/// A virtual register of the current frame.
///
/// Arguments are passed in the *highest* registers of the callee frame, as
/// in real DEX calling convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Binary arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (panics on divide-by-zero, like an unhandled
    /// `ArithmeticException`).
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (by low 6 bits).
    Shl,
    /// Arithmetic shift right (by low 6 bits).
    Shr,
}

/// Comparison conditions for branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
}

/// How a method is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// Static dispatch.
    Static,
    /// Instance dispatch (receiver is the first argument).
    Virtual,
}

/// Maximum arguments an invoke can pass (matches DEX's short form).
pub const MAX_ARGS: usize = 6;

/// A fixed-capacity argument list for invoke instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ArgList {
    regs: [u16; MAX_ARGS],
    len: u8,
}

impl ArgList {
    /// Builds an argument list.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ARGS`] registers are given.
    pub fn new(args: &[Reg]) -> Self {
        assert!(args.len() <= MAX_ARGS, "too many invoke arguments");
        let mut regs = [0u16; MAX_ARGS];
        for (slot, reg) in regs.iter_mut().zip(args) {
            *slot = reg.0;
        }
        ArgList {
            regs,
            len: args.len() as u8,
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the argument registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs[..self.len as usize].iter().map(|&r| Reg(r))
    }
}

/// One bytecode instruction.
///
/// Branch targets are instruction indices within the method (resolved by
/// [`crate::MethodBuilder`] from labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a <op> b`
    BinOp {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Branch to `target` if `a <cond> b`.
    IfCmp {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Branch to `target` if `src <cond> 0`.
    IfZ {
        /// Condition (vs zero).
        cond: Cond,
        /// Tested register.
        src: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional branch.
    Goto {
        /// Target instruction index.
        target: u32,
    },
    /// Allocate an instance of `class` into `dst`.
    NewInstance {
        /// Destination register (receives the reference).
        dst: Reg,
        /// Class to instantiate.
        class: u16,
    },
    /// Allocate an integer array of length `len` (register) into `dst`.
    NewArray {
        /// Destination register.
        dst: Reg,
        /// Register holding the length.
        len: Reg,
    },
    /// `dst = arr.length`
    ArrayLen {
        /// Destination register.
        dst: Reg,
        /// Array reference register.
        arr: Reg,
    },
    /// `dst = arr[idx]`
    AGet {
        /// Destination register.
        dst: Reg,
        /// Array reference.
        arr: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `arr[idx] = src`
    APut {
        /// Source register.
        src: Reg,
        /// Array reference.
        arr: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `dst = obj.field`
    IGet {
        /// Destination register.
        dst: Reg,
        /// Object reference.
        obj: Reg,
        /// Field index within the class.
        field: u16,
    },
    /// `obj.field = src`
    IPut {
        /// Source register.
        src: Reg,
        /// Object reference.
        obj: Reg,
        /// Field index.
        field: u16,
    },
    /// `dst = class.static[field]`
    SGet {
        /// Destination register.
        dst: Reg,
        /// Class owning the static.
        class: u16,
        /// Static slot index.
        field: u16,
    },
    /// `class.static[field] = src`
    SPut {
        /// Source register.
        src: Reg,
        /// Class owning the static.
        class: u16,
        /// Static slot index.
        field: u16,
    },
    /// Call a method.
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Target method.
        method: u32,
        /// Arguments (placed in the callee's highest registers).
        args: ArgList,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Call a registered native hook (the JNI analogue).
    Native {
        /// Hook id registered with the VM.
        hook: u32,
        /// Arguments.
        args: ArgList,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Return, optionally with a value.
    Return {
        /// Returned register, if any.
        src: Option<Reg>,
    },
}

impl Insn {
    /// Approximate encoded size in bytes (for charging dex-file reads),
    /// following real DEX format widths.
    pub fn encoded_size(&self) -> u64 {
        match self {
            Insn::Const { value, .. } => {
                if *value >= -(1 << 15) && *value < (1 << 15) {
                    4
                } else {
                    8
                }
            }
            Insn::Move { .. } => 2,
            Insn::BinOp { .. } => 4,
            Insn::IfCmp { .. } | Insn::IfZ { .. } => 4,
            Insn::Goto { .. } => 2,
            Insn::NewInstance { .. } | Insn::NewArray { .. } | Insn::ArrayLen { .. } => 4,
            Insn::AGet { .. } | Insn::APut { .. } => 4,
            Insn::IGet { .. } | Insn::IPut { .. } => 4,
            Insn::SGet { .. } | Insn::SPut { .. } => 4,
            Insn::Invoke { .. } | Insn::Native { .. } => 6,
            Insn::Return { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_list_round_trips() {
        let args = ArgList::new(&[Reg(1), Reg(5), Reg(3)]);
        assert_eq!(args.len(), 3);
        let collected: Vec<Reg> = args.iter().collect();
        assert_eq!(collected, vec![Reg(1), Reg(5), Reg(3)]);
        assert!(ArgList::new(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn arg_list_overflow_panics() {
        let regs: Vec<Reg> = (0..7).map(Reg).collect();
        let _ = ArgList::new(&regs);
    }

    #[test]
    fn encoded_sizes_match_dex_widths() {
        assert_eq!(
            Insn::Move {
                dst: Reg(0),
                src: Reg(1)
            }
            .encoded_size(),
            2
        );
        assert_eq!(
            Insn::Const {
                dst: Reg(0),
                value: 10
            }
            .encoded_size(),
            4
        );
        assert_eq!(
            Insn::Const {
                dst: Reg(0),
                value: 1 << 40
            }
            .encoded_size(),
            8
        );
        assert_eq!(
            Insn::Invoke {
                kind: InvokeKind::Static,
                method: 0,
                args: ArgList::default(),
                dst: None
            }
            .encoded_size(),
            6
        );
    }
}
