//! A miniature register-based bytecode in the style of Android's DEX.
//!
//! Agave's application-level "Java" logic runs on the Dalvik VM model in
//! `agave-dalvik`; this crate defines what that VM executes: a register
//! machine with classes, instance/static fields, arrays, virtual/static
//! invokes, and *native hooks* that let bytecode call into modeled
//! framework code (Canvas drawing, media players, …) just as real Dalvik
//! code calls through JNI.
//!
//! The crate is pure data — no execution — so it has no dependencies and is
//! shared by the VM, the apps, and the tests.
//!
//! # Example: a loop summing 0..n, assembled with labels
//!
//! ```
//! use agave_dex::{BinOp, Cond, DexFile, MethodBuilder, Reg};
//!
//! let mut dex = DexFile::new();
//! let class = dex.add_class("Ldemo/Sum;", 0, 0);
//! // One argument (n) arrives in the highest register, r4.
//! let mut m = MethodBuilder::new(5, 1);
//! let (n, i, sum) = (Reg(4), Reg(0), Reg(1));
//! m.konst(i, 0);
//! m.konst(sum, 0);
//! let head = m.new_label();
//! m.bind(head);
//! m.binop(BinOp::Add, sum, sum, i);
//! m.konst(Reg(2), 1);
//! m.binop(BinOp::Add, i, i, Reg(2));
//! m.if_cmp(Cond::Lt, i, n, head);
//! m.ret(Some(sum));
//! let method = dex.add_method(class, "sum", m);
//! assert!(dex.method(method).code.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod file;
mod insn;

pub use asm::{Label, MethodBuilder};
pub use file::{ClassDef, ClassId, DexFile, MethodDef, MethodId};
pub use insn::{ArgList, BinOp, Cond, Insn, InvokeKind, Reg, MAX_ARGS};
