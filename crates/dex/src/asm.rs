//! A small assembler with labels and backpatching.

use crate::file::{ClassId, MethodId};
use crate::insn::{ArgList, BinOp, Cond, Insn, InvokeKind, Reg};

/// A forward-referenceable code location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds a method body instruction by instruction.
///
/// Branch targets are [`Label`]s bound with [`MethodBuilder::bind`]; they
/// may be referenced before binding and are backpatched in
/// [`MethodBuilder::finish`] (called for you by
/// [`crate::DexFile::add_method`]).
#[derive(Debug, Default)]
pub struct MethodBuilder {
    num_regs: u16,
    num_args: u16,
    code: Vec<Insn>,
    /// Bound label positions (`u32::MAX` = unbound).
    labels: Vec<u32>,
    /// (instruction index, label) pairs awaiting patching.
    patches: Vec<(usize, Label)>,
}

impl MethodBuilder {
    /// Starts a method with `num_regs` frame registers, the last
    /// `num_args` of which receive the arguments.
    ///
    /// # Panics
    ///
    /// Panics if `num_args > num_regs`.
    pub fn new(num_regs: u16, num_args: u16) -> Self {
        assert!(num_args <= num_regs, "more args than registers");
        MethodBuilder {
            num_regs,
            num_args,
            ..Default::default()
        }
    }

    /// Creates an (initially unbound) label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(self.labels[label.0 as usize], u32::MAX, "label bound twice");
        self.labels[label.0 as usize] = self.code.len() as u32;
    }

    /// Emits `dst = value`.
    pub fn konst(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.code.push(Insn::Const { dst, value });
        self
    }

    /// Emits `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.code.push(Insn::Move { dst, src });
        self
    }

    /// Emits `dst = a <op> b`.
    pub fn binop(&mut self, op: BinOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.code.push(Insn::BinOp { op, dst, a, b });
        self
    }

    /// Emits a compare-and-branch on two registers.
    pub fn if_cmp(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) -> &mut Self {
        let idx = self.code.len();
        self.code.push(Insn::IfCmp {
            cond,
            a,
            b,
            target: 0,
        });
        self.patches.push((idx, target));
        self
    }

    /// Emits a compare-against-zero branch.
    pub fn if_z(&mut self, cond: Cond, src: Reg, target: Label) -> &mut Self {
        let idx = self.code.len();
        self.code.push(Insn::IfZ {
            cond,
            src,
            target: 0,
        });
        self.patches.push((idx, target));
        self
    }

    /// Emits an unconditional branch.
    pub fn goto(&mut self, target: Label) -> &mut Self {
        let idx = self.code.len();
        self.code.push(Insn::Goto { target: 0 });
        self.patches.push((idx, target));
        self
    }

    /// Emits `dst = new class()`.
    pub fn new_instance(&mut self, dst: Reg, class: ClassId) -> &mut Self {
        self.code.push(Insn::NewInstance {
            dst,
            class: class.0,
        });
        self
    }

    /// Emits `dst = new long[len]`.
    pub fn new_array(&mut self, dst: Reg, len: Reg) -> &mut Self {
        self.code.push(Insn::NewArray { dst, len });
        self
    }

    /// Emits `dst = arr.length`.
    pub fn array_len(&mut self, dst: Reg, arr: Reg) -> &mut Self {
        self.code.push(Insn::ArrayLen { dst, arr });
        self
    }

    /// Emits `dst = arr[idx]`.
    pub fn aget(&mut self, dst: Reg, arr: Reg, idx: Reg) -> &mut Self {
        self.code.push(Insn::AGet { dst, arr, idx });
        self
    }

    /// Emits `arr[idx] = src`.
    pub fn aput(&mut self, src: Reg, arr: Reg, idx: Reg) -> &mut Self {
        self.code.push(Insn::APut { src, arr, idx });
        self
    }

    /// Emits `dst = obj.field`.
    pub fn iget(&mut self, dst: Reg, obj: Reg, field: u16) -> &mut Self {
        self.code.push(Insn::IGet { dst, obj, field });
        self
    }

    /// Emits `obj.field = src`.
    pub fn iput(&mut self, src: Reg, obj: Reg, field: u16) -> &mut Self {
        self.code.push(Insn::IPut { src, obj, field });
        self
    }

    /// Emits `dst = class.static[field]`.
    pub fn sget(&mut self, dst: Reg, class: ClassId, field: u16) -> &mut Self {
        self.code.push(Insn::SGet {
            dst,
            class: class.0,
            field,
        });
        self
    }

    /// Emits `class.static[field] = src`.
    pub fn sput(&mut self, src: Reg, class: ClassId, field: u16) -> &mut Self {
        self.code.push(Insn::SPut {
            src,
            class: class.0,
            field,
        });
        self
    }

    /// Emits a static invoke.
    pub fn invoke_static(&mut self, method: MethodId, args: &[Reg], dst: Option<Reg>) -> &mut Self {
        self.code.push(Insn::Invoke {
            kind: InvokeKind::Static,
            method: method.0,
            args: ArgList::new(args),
            dst,
        });
        self
    }

    /// Emits a virtual invoke (receiver first in `args`).
    pub fn invoke_virtual(
        &mut self,
        method: MethodId,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> &mut Self {
        self.code.push(Insn::Invoke {
            kind: InvokeKind::Virtual,
            method: method.0,
            args: ArgList::new(args),
            dst,
        });
        self
    }

    /// Emits a native-hook call.
    pub fn native(&mut self, hook: u32, args: &[Reg], dst: Option<Reg>) -> &mut Self {
        self.code.push(Insn::Native {
            hook,
            args: ArgList::new(args),
            dst,
        });
        self
    }

    /// Emits a return.
    pub fn ret(&mut self, src: Option<Reg>) -> &mut Self {
        self.code.push(Insn::Return { src });
        self
    }

    /// Resolves labels and returns `(num_regs, num_args, code)`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound, or a bound target is out
    /// of range.
    pub fn finish(mut self) -> (u16, u16, Vec<Insn>) {
        for (idx, label) in std::mem::take(&mut self.patches) {
            let target = self.labels[label.0 as usize];
            assert_ne!(target, u32::MAX, "unbound label {label:?}");
            assert!(
                (target as usize) <= self.code.len(),
                "label target out of range"
            );
            match &mut self.code[idx] {
                Insn::IfCmp { target: t, .. }
                | Insn::IfZ { target: t, .. }
                | Insn::Goto { target: t } => *t = target,
                other => unreachable!("patched non-branch {other:?}"),
            }
        }
        (self.num_regs, self.num_args, self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_backpatch_forward_and_backward() {
        let mut m = MethodBuilder::new(3, 0);
        let back = m.new_label();
        let fwd = m.new_label();
        m.bind(back);
        m.konst(Reg(0), 1);
        m.goto(fwd);
        m.goto(back);
        m.bind(fwd);
        m.ret(None);
        let (_, _, code) = m.finish();
        assert_eq!(code[1], Insn::Goto { target: 3 });
        assert_eq!(code[2], Insn::Goto { target: 0 });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut m = MethodBuilder::new(1, 0);
        let l = m.new_label();
        m.goto(l);
        let _ = m.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut m = MethodBuilder::new(1, 0);
        let l = m.new_label();
        m.bind(l);
        m.bind(l);
    }

    #[test]
    #[should_panic(expected = "more args")]
    fn too_many_args_panics() {
        let _ = MethodBuilder::new(1, 2);
    }

    #[test]
    fn builder_chains() {
        let mut m = MethodBuilder::new(4, 1);
        m.konst(Reg(0), 5)
            .mov(Reg(1), Reg(0))
            .binop(BinOp::Mul, Reg(2), Reg(0), Reg(1))
            .ret(Some(Reg(2)));
        let (regs, args, code) = m.finish();
        assert_eq!((regs, args), (4, 1));
        assert_eq!(code.len(), 4);
    }
}
