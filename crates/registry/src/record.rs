//! The durable result record and its JSONL codec.
//!
//! One [`BenchRecord`] is one case execution, stamped with everything
//! needed to compare it honestly against a run taken months later:
//! `schema_version`, wall-clock time, commit hash, host fingerprint,
//! the case's parameter map, and per-metric median + MAD over the
//! trials. Records serialize as single JSON lines (append-only
//! `bench_history.jsonl`) and parse back through the same
//! `agave_telemetry::parse` reader `agave stats` uses.
//!
//! The standalone `BENCH_*.json` bench reports share this module's
//! [`stamp`] so their envelopes (schema version, time, commit, host)
//! are schema-identical to history records.

use crate::case::Direction;
use crate::fingerprint::{commit_hash, HostFingerprint};
use crate::Tier;
use agave_telemetry::parse::{self, Value};
use agave_trace::json;
use std::collections::BTreeMap;

/// The `bench_history.jsonl` record schema version, bumped when field
/// meanings change. [`crate::History`] refuses histories written by a
/// *newer* schema and excludes older-version records from baselines.
pub const REGISTRY_SCHEMA_VERSION: u64 = 1;

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Stamps the shared record envelope — `schema_version`, `unix_time`,
/// `commit`, `host` — onto a JSON object under construction. Both
/// history records and the standalone `BENCH_*.json` reports go
/// through here, so the two stay schema-identical.
pub fn stamp(obj: &mut json::Object, schema_version: u64) {
    obj.field_u64("schema_version", schema_version)
        .field_u64("unix_time", unix_time())
        .field_str("commit", &commit_hash())
        .field_raw("host", &HostFingerprint::detect().to_json());
}

/// One metric's summary over a record's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStat {
    /// Metric name, stable across runs.
    pub name: String,
    /// Unit label for rendering.
    pub unit: String,
    /// Which direction is an improvement.
    pub better: Direction,
    /// Median over the trials (the gated value).
    pub median: f64,
    /// Median absolute deviation over the trials.
    pub mad: f64,
    /// Number of trials behind the summary.
    pub trials: u32,
}

impl MetricStat {
    fn to_json(&self) -> String {
        let mut obj = json::Object::new();
        obj.field_str("name", &self.name)
            .field_str("unit", &self.unit)
            .field_str("better", self.better.name())
            .field_f64("median", self.median)
            .field_f64("mad", self.mad)
            .field_u64("trials", self.trials as u64);
        obj.finish()
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("metric missing string {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric missing number {k:?}"))
        };
        Ok(MetricStat {
            name: str_field("name")?,
            unit: str_field("unit")?,
            better: Direction::parse(&str_field("better")?)?,
            median: num_field("median")?,
            mad: num_field("mad")?,
            trials: num_field("trials")? as u32,
        })
    }
}

/// One case execution in the append-only history.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Schema version the record was written under.
    pub schema_version: u64,
    /// Case name.
    pub case: String,
    /// Workload tier (`quick` / `full`).
    pub tier: String,
    /// Seconds since the Unix epoch at record time.
    pub unix_time: u64,
    /// Commit hash of the measured tree.
    pub commit: String,
    /// Environment the run happened in.
    pub host: HostFingerprint,
    /// The case's comparability parameters.
    pub params: BTreeMap<String, String>,
    /// Per-metric median + MAD summaries.
    pub metrics: Vec<MetricStat>,
}

impl BenchRecord {
    /// Builds a record for the current host, commit, and time.
    pub fn stamped(
        case: &str,
        tier: Tier,
        params: BTreeMap<String, String>,
        metrics: Vec<MetricStat>,
    ) -> Self {
        BenchRecord {
            schema_version: REGISTRY_SCHEMA_VERSION,
            case: case.to_owned(),
            tier: tier.name().to_owned(),
            unix_time: unix_time(),
            commit: commit_hash(),
            host: HostFingerprint::detect(),
            params,
            metrics,
        }
    }

    /// The baseline group key: records only gate each other when case,
    /// tier, parameters, and host fingerprint all match.
    pub fn group_key(&self) -> String {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!(
            "{} [{}] {{{}}} @ {}",
            self.case,
            self.tier,
            params.join(","),
            self.host.canonical()
        )
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut params = json::Object::new();
        for (k, v) in &self.params {
            params.field_str(k, v);
        }
        let mut obj = json::Object::new();
        obj.field_u64("schema_version", self.schema_version)
            .field_str("case", &self.case)
            .field_str("tier", &self.tier)
            .field_u64("unix_time", self.unix_time)
            .field_str("commit", &self.commit)
            .field_raw("host", &self.host.to_json())
            .field_raw("params", &params.finish())
            .field_raw(
                "metrics",
                &json::array(self.metrics.iter().map(MetricStat::to_json)),
            );
        obj.finish()
    }

    /// Parses one history line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = parse::parse(line)?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("record missing string {k:?}"))
        };
        let schema_version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("record missing schema_version")?;
        let mut params = BTreeMap::new();
        if let Some(obj) = v.get("params").and_then(Value::as_object) {
            for (k, pv) in obj {
                params.insert(
                    k.clone(),
                    pv.as_str()
                        .ok_or_else(|| format!("param {k:?} is not a string"))?
                        .to_owned(),
                );
            }
        }
        let metrics = v
            .get("metrics")
            .and_then(Value::as_array)
            .ok_or("record missing metrics array")?
            .iter()
            .map(MetricStat::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchRecord {
            schema_version,
            case: str_field("case")?,
            tier: str_field("tier")?,
            unix_time: v
                .get("unix_time")
                .and_then(Value::as_u64)
                .ok_or("record missing unix_time")?,
            commit: str_field("commit")?,
            host: HostFingerprint::from_value(v.get("host").ok_or("record missing host object")?)?,
            params,
            metrics,
        })
    }

    /// The record's stat for `metric`, if it carries one.
    pub fn metric(&self, metric: &str) -> Option<&MetricStat> {
        self.metrics.iter().find(|m| m.name == metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            schema_version: REGISTRY_SCHEMA_VERSION,
            case: "replay_codec".into(),
            tier: "quick".into(),
            unix_time: 1_754_600_000,
            commit: "abc123def456".into(),
            host: HostFingerprint {
                cpus: 8,
                os: "linux".into(),
                arch: "x86_64".into(),
                profile: "release".into(),
            },
            params: BTreeMap::from([
                ("workload".into(), "gallery.mp4.view".into()),
                ("sizing".into(), "quick".into()),
            ]),
            metrics: vec![MetricStat {
                name: "decode_mb_per_sec".into(),
                unit: "MB/s".into(),
                better: Direction::HigherIsBetter,
                median: 138.25,
                mad: 1.5,
                trials: 5,
            }],
        }
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let rec = sample();
        let line = rec.to_json();
        assert!(!line.contains('\n'));
        assert_eq!(BenchRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn group_key_separates_hosts_and_params() {
        let a = sample();
        let mut b = sample();
        b.host.cpus = 64;
        let mut c = sample();
        c.params.insert("sizing".into(), "reference".into());
        assert_ne!(a.group_key(), b.group_key());
        assert_ne!(a.group_key(), c.group_key());
        assert_eq!(a.group_key(), sample().group_key());
    }

    #[test]
    fn stamped_fills_environment() {
        let rec = BenchRecord::stamped("x", Tier::Quick, BTreeMap::new(), Vec::new());
        assert_eq!(rec.schema_version, REGISTRY_SCHEMA_VERSION);
        assert_eq!(rec.tier, "quick");
        assert!(!rec.commit.is_empty());
        assert!(rec.host.cpus >= 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(BenchRecord::parse("not json").is_err());
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse(r#"{"schema_version":1}"#).is_err());
    }
}
