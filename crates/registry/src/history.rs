//! The append-only history file and the regression gate over it.
//!
//! `bench_history.jsonl` is one [`BenchRecord`] per line, append-only:
//! [`History::append`] opens the file in append mode and writes one
//! line, so concurrent benches and months of runs accumulate without
//! rewriting anything. [`History::load`] parses the whole file,
//! enforcing the schema contract: a malformed line or a line written
//! by a **newer** schema version is a hard error (gate with tooling at
//! least as new as the data), while **older**-version lines are kept
//! aside — counted and reported, never silently folded into baselines.
//!
//! [`History::check`] is the teeth. Records group by
//! [`BenchRecord::group_key`] (case + tier + params + host
//! fingerprint); within each group the latest record is the
//! observation and the up-to-K records before it are the baseline.
//! Each observed metric is compared to the median of the baseline
//! medians, with a noise band of
//! `max(mad_factor × MAD(baseline medians),
//!      mad_factor × median(baseline trial MADs),
//!      min_pct × |baseline|)`
//! — statistical drift detection over the series, not an eyeballed
//! pair of numbers. Only movement in the metric's *bad* direction
//! beyond the band fails; improvements and short histories (no
//! baseline yet) pass with a note.

use crate::case::Direction;
use crate::harness;
use crate::record::{BenchRecord, REGISTRY_SCHEMA_VERSION};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The regression gate's noise-band configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoisePolicy {
    /// Baseline window: how many trailing records (per group) form the
    /// baseline. Default 5.
    pub window: usize,
    /// Multiplier on the MAD terms of the band. Default 3.0.
    pub mad_factor: f64,
    /// Relative floor of the band (fraction of the baseline). Default
    /// 0.05 — a metric must move at least 5% to count at all.
    pub min_pct: f64,
}

impl Default for NoisePolicy {
    fn default() -> Self {
        NoisePolicy {
            window: 5,
            mad_factor: 3.0,
            min_pct: 0.05,
        }
    }
}

/// A loaded history: the parseable current-schema records plus a count
/// of older-schema lines that were set aside.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The file the history came from (for diagnostics).
    pub path: PathBuf,
    /// Current-schema records, in file (append) order.
    pub records: Vec<BenchRecord>,
    /// `(line_number, schema_version)` of records written under an
    /// older schema: excluded from baselines, surfaced in reports.
    pub outdated: Vec<(usize, u64)>,
}

impl History {
    /// Loads `path`. A missing file is an empty history (first run);
    /// a malformed line or a newer-schema line is an error naming the
    /// line number.
    pub fn load(path: &Path) -> Result<History, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok(History {
                    path: path.to_owned(),
                    ..History::default()
                })
            }
            Err(err) => return Err(format!("{}: {err}", path.display())),
        };
        let mut history = History {
            path: path.to_owned(),
            ..History::default()
        };
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let record = BenchRecord::parse(line)
                .map_err(|err| format!("{}:{lineno}: {err}", path.display()))?;
            match record.schema_version {
                v if v == REGISTRY_SCHEMA_VERSION => history.records.push(record),
                v if v < REGISTRY_SCHEMA_VERSION => history.outdated.push((lineno, v)),
                v => {
                    return Err(format!(
                        "{}:{lineno}: record schema_version {v} is newer than this \
                         binary's {REGISTRY_SCHEMA_VERSION}; upgrade agave before gating",
                        path.display()
                    ))
                }
            }
        }
        Ok(history)
    }

    /// Appends one record as one line (creates the file if missing).
    pub fn append(path: &Path, record: &BenchRecord) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(file, "{}", record.to_json())
    }

    /// The distinct group keys in append order of first appearance.
    pub fn groups(&self) -> Vec<String> {
        let mut keys: Vec<String> = Vec::new();
        for rec in &self.records {
            let key = rec.group_key();
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys
    }

    /// Records of one group, in append order.
    pub fn group(&self, key: &str) -> Vec<&BenchRecord> {
        self.records
            .iter()
            .filter(|r| r.group_key() == key)
            .collect()
    }

    /// Runs the regression gate over every group's latest record.
    pub fn check(&self, policy: &NoisePolicy) -> CheckReport {
        let mut lines = Vec::new();
        for key in self.groups() {
            let group = self.group(&key);
            let (latest, baseline_records) = group.split_last().expect("group is non-empty");
            for stat in &latest.metrics {
                lines.push(check_metric(latest, stat, baseline_records, policy));
            }
        }
        CheckReport {
            lines,
            outdated: self.outdated.len(),
            policy: *policy,
        }
    }
}

fn check_metric(
    latest: &BenchRecord,
    stat: &crate::MetricStat,
    prior: &[&BenchRecord],
    policy: &NoisePolicy,
) -> CheckLine {
    let window: Vec<&crate::MetricStat> = prior
        .iter()
        .rev()
        .take(policy.window)
        .filter_map(|r| r.metric(&stat.name))
        .collect();
    let mut line = CheckLine {
        case: latest.case.clone(),
        metric: stat.name.clone(),
        unit: stat.unit.clone(),
        group: latest.group_key(),
        status: CheckStatus::NoBaseline,
        observed: stat.median,
        baseline: 0.0,
        band: 0.0,
        delta_pct: 0.0,
        window: window.len(),
    };
    if window.is_empty() {
        return line;
    }
    let medians: Vec<f64> = window.iter().map(|m| m.median).collect();
    let trial_mads: Vec<f64> = window.iter().map(|m| m.mad).collect();
    let baseline = harness::median(&medians);
    let spread = harness::mad(&medians, baseline);
    let trial_noise = harness::median(&trial_mads);
    let band = (policy.mad_factor * spread)
        .max(policy.mad_factor * trial_noise)
        .max(policy.min_pct * baseline.abs());
    let delta = stat.median - baseline;
    line.baseline = baseline;
    line.band = band;
    line.delta_pct = if baseline != 0.0 {
        delta / baseline.abs() * 100.0
    } else {
        0.0
    };
    let worse = match stat.better {
        Direction::HigherIsBetter => delta < -band,
        Direction::LowerIsBetter => delta > band,
    };
    let improved = match stat.better {
        Direction::HigherIsBetter => delta > band,
        Direction::LowerIsBetter => delta < -band,
    };
    line.status = if worse {
        CheckStatus::Regressed
    } else if improved {
        CheckStatus::Improved
    } else {
        CheckStatus::Ok
    };
    line
}

/// One gated metric's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// Within the noise band of the baseline.
    Ok,
    /// Beyond the band in the good direction.
    Improved,
    /// Beyond the band in the bad direction — fails the gate.
    Regressed,
    /// No prior record in the group: nothing to compare against yet.
    NoBaseline,
}

/// One metric's comparison against its trailing baseline.
#[derive(Debug, Clone)]
pub struct CheckLine {
    /// Case name.
    pub case: String,
    /// Metric name.
    pub metric: String,
    /// Unit label.
    pub unit: String,
    /// Full group key (params + host) behind the comparison.
    pub group: String,
    /// The verdict.
    pub status: CheckStatus,
    /// Latest record's median.
    pub observed: f64,
    /// Median of the trailing-window medians (0 when no baseline).
    pub baseline: f64,
    /// Allowed deviation before the verdict flips.
    pub band: f64,
    /// Observed change vs baseline, percent.
    pub delta_pct: f64,
    /// How many prior records formed the baseline.
    pub window: usize,
}

impl CheckStatus {
    /// Stable machine-readable verdict name (`bench check --json`).
    pub fn verdict(self) -> &'static str {
        match self {
            CheckStatus::Ok => "ok",
            CheckStatus::Improved => "improved",
            CheckStatus::Regressed => "regressed",
            CheckStatus::NoBaseline => "no_baseline",
        }
    }
}

impl CheckLine {
    /// One gated metric as one JSON object (`bench check --json`
    /// emits one per line).
    pub fn to_json(&self) -> String {
        let mut obj = agave_trace::json::Object::new();
        obj.field_str("case", &self.case)
            .field_str("metric", &self.metric)
            .field_str("unit", &self.unit)
            .field_str("group", &self.group)
            .field_str("verdict", self.status.verdict())
            .field_f64("baseline", self.baseline)
            .field_f64("band", self.band)
            .field_f64("observed", self.observed)
            .field_f64("delta_pct", self.delta_pct)
            .field_u64("window", self.window as u64);
        obj.finish()
    }

    /// One-line rendering: verdict, case.metric, baseline, band,
    /// observed.
    pub fn render(&self) -> String {
        let tag = match self.status {
            CheckStatus::Ok => "ok",
            CheckStatus::Improved => "ok+",
            CheckStatus::Regressed => "FAIL",
            CheckStatus::NoBaseline => "new",
        };
        match self.status {
            CheckStatus::NoBaseline => format!(
                "[{tag:<4}] {:<40} {:>12.3} {:<7} no baseline yet ({})",
                format!("{}.{}", self.case, self.metric),
                self.observed,
                self.unit,
                self.group
            ),
            _ => format!(
                "[{tag:<4}] {:<40} baseline {:.3} ±{:.3} {} (n={}), observed {:.3} ({:+.1}%)",
                format!("{}.{}", self.case, self.metric),
                self.baseline,
                self.band,
                self.unit,
                self.window,
                self.observed,
                self.delta_pct
            ),
        }
    }
}

/// The gate's full verdict.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// One line per gated metric.
    pub lines: Vec<CheckLine>,
    /// Older-schema records that were excluded from baselines.
    pub outdated: usize,
    /// The policy the check ran under.
    pub policy: NoisePolicy,
}

impl CheckReport {
    /// True when any metric regressed — the CLI exits nonzero on this.
    pub fn failed(&self) -> bool {
        self.lines
            .iter()
            .any(|l| l.status == CheckStatus::Regressed)
    }

    /// The regressed lines only.
    pub fn regressions(&self) -> Vec<&CheckLine> {
        self.lines
            .iter()
            .filter(|l| l.status == CheckStatus::Regressed)
            .collect()
    }

    /// JSON-lines rendering: one object per gated metric, in the same
    /// order as [`CheckReport::render`] (regressions last). Verdicts
    /// and exit semantics are identical to the text gate — `--json`
    /// only changes the serialization.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for line in self
            .lines
            .iter()
            .filter(|l| l.status != CheckStatus::Regressed)
        {
            let _ = writeln!(out, "{}", line.to_json());
        }
        for line in self.regressions() {
            let _ = writeln!(out, "{}", line.to_json());
        }
        out
    }

    /// Renders the whole verdict, regressions last so they sit next to
    /// the exit status in CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self
            .lines
            .iter()
            .filter(|l| l.status != CheckStatus::Regressed)
        {
            let _ = writeln!(out, "{}", line.render());
        }
        for line in self.regressions() {
            let _ = writeln!(out, "{}", line.render());
        }
        if self.outdated > 0 {
            let _ = writeln!(
                out,
                "note: {} older-schema record(s) excluded from baselines",
                self.outdated
            );
        }
        let regressed = self.regressions().len();
        let _ = writeln!(
            out,
            "{} metric(s) checked · {} regressed (window {}, band max({}×MAD, {:.0}%))",
            self.lines.len(),
            regressed,
            self.policy.window,
            self.policy.mad_factor,
            self.policy.min_pct * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::REGISTRY_SCHEMA_VERSION;
    use crate::{Direction, HostFingerprint, MetricStat};
    use std::collections::BTreeMap;

    fn record(case: &str, value: f64, mad: f64, time: u64) -> BenchRecord {
        BenchRecord {
            schema_version: REGISTRY_SCHEMA_VERSION,
            case: case.into(),
            tier: "quick".into(),
            unix_time: time,
            commit: "testcommit".into(),
            host: HostFingerprint {
                cpus: 4,
                os: "linux".into(),
                arch: "x86_64".into(),
                profile: "release".into(),
            },
            params: BTreeMap::from([("workload".into(), "w".into())]),
            metrics: vec![MetricStat {
                name: "mb_per_sec".into(),
                unit: "MB/s".into(),
                better: Direction::HigherIsBetter,
                median: value,
                mad,
                trials: 5,
            }],
        }
    }

    fn history_of(records: Vec<BenchRecord>) -> History {
        History {
            path: PathBuf::from("test"),
            records,
            outdated: Vec::new(),
        }
    }

    #[test]
    fn stable_series_passes() {
        let records: Vec<_> = [100.0, 101.0, 99.5, 100.5, 100.0, 99.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| record("c", v, 0.5, i as u64))
            .collect();
        let report = history_of(records).check(&NoisePolicy::default());
        assert!(!report.failed());
        assert_eq!(report.lines.len(), 1);
        assert_eq!(report.lines[0].status, CheckStatus::Ok);
    }

    #[test]
    fn planted_twenty_percent_slowdown_fails() {
        let mut records: Vec<_> = [100.0, 101.0, 99.5, 100.5, 100.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| record("c", v, 0.5, i as u64))
            .collect();
        records.push(record("c", 80.0, 0.5, 9));
        let report = history_of(records).check(&NoisePolicy::default());
        assert!(report.failed());
        let line = &report.regressions()[0];
        assert_eq!(line.status, CheckStatus::Regressed);
        assert!(line.delta_pct < -15.0);
        let rendered = line.render();
        assert!(!rendered.contains('\n'));
        assert!(rendered.contains("c.mb_per_sec"));
    }

    #[test]
    fn improvement_beyond_band_passes() {
        let mut records: Vec<_> = (0..5).map(|i| record("c", 100.0, 0.5, i)).collect();
        records.push(record("c", 130.0, 0.5, 9));
        let report = history_of(records).check(&NoisePolicy::default());
        assert!(!report.failed());
        assert_eq!(report.lines[0].status, CheckStatus::Improved);
    }

    #[test]
    fn lower_is_better_flips_direction() {
        let mk = |v, t| {
            let mut r = record("overhead", v, 0.01, t);
            r.metrics[0].better = Direction::LowerIsBetter;
            r
        };
        let rising =
            history_of(vec![mk(1.0, 0), mk(1.0, 1), mk(1.4, 2)]).check(&NoisePolicy::default());
        assert!(rising.failed());
        let falling =
            history_of(vec![mk(1.0, 0), mk(1.0, 1), mk(0.6, 2)]).check(&NoisePolicy::default());
        assert!(!falling.failed());
    }

    #[test]
    fn short_history_reports_no_baseline() {
        let report = history_of(vec![record("c", 100.0, 0.5, 0)]).check(&NoisePolicy::default());
        assert!(!report.failed());
        assert_eq!(report.lines[0].status, CheckStatus::NoBaseline);
        assert!(report.lines[0].render().contains("no baseline"));
        let empty = history_of(Vec::new()).check(&NoisePolicy::default());
        assert!(!empty.failed());
        assert!(empty.lines.is_empty());
    }

    #[test]
    fn different_hosts_never_gate_each_other() {
        let mut fast = record("c", 100.0, 0.5, 0);
        fast.host.cpus = 64;
        // A slow observation from a different host has no 64-cpu
        // baseline, so it is "new", not a regression.
        let records = vec![fast.clone(), fast, record("c", 50.0, 0.5, 1)];
        let report = history_of(records).check(&NoisePolicy::default());
        assert!(!report.failed());
    }

    #[test]
    fn trial_noise_widens_the_band() {
        // Baseline at 100 with within-run MAD 10: a drop to 75 is
        // within 3×10, so it must pass; with MAD 0.5 it must fail.
        let noisy: Vec<_> = (0..5)
            .map(|i| record("c", 100.0, 10.0, i))
            .chain([record("c", 75.0, 10.0, 9)])
            .collect();
        assert!(!history_of(noisy).check(&NoisePolicy::default()).failed());
        let tight: Vec<_> = (0..5)
            .map(|i| record("c", 100.0, 0.5, i))
            .chain([record("c", 75.0, 0.5, 9)])
            .collect();
        assert!(history_of(tight).check(&NoisePolicy::default()).failed());
    }

    #[test]
    fn json_lines_carry_verdicts_and_put_regressions_last() {
        let mut records: Vec<_> = [100.0, 101.0, 99.5, 100.5, 100.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| record("c", v, 0.5, i as u64))
            .collect();
        records.push(record("c", 80.0, 0.5, 9));
        records.push(record("fresh", 10.0, 0.1, 10));
        let report = history_of(records).check(&NoisePolicy::default());
        let json = report.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), report.lines.len());
        // Every line is one standalone JSON object with the gate fields.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            for key in ["\"case\":", "\"metric\":", "\"verdict\":", "\"observed\":"] {
                assert!(line.contains(key), "{line} missing {key}");
            }
        }
        assert!(lines[0].contains("\"verdict\":\"no_baseline\""), "{json}");
        assert!(
            lines.last().unwrap().contains("\"verdict\":\"regressed\""),
            "regressions must come last: {json}"
        );
        assert!(json.contains("\"baseline\":"), "{json}");
        assert!(json.contains("\"window\":5"), "{json}");
    }

    #[test]
    fn append_and_load_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "agave-registry-history-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let empty = History::load(&path).unwrap();
        assert!(empty.records.is_empty());
        History::append(&path, &record("c", 100.0, 0.5, 0)).unwrap();
        History::append(&path, &record("c", 99.0, 0.5, 1)).unwrap();
        let loaded = History::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[1].metrics[0].median, 99.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newer_schema_is_an_error_older_is_set_aside() {
        let path = std::env::temp_dir().join(format!(
            "agave-registry-schema-{}.jsonl",
            std::process::id()
        ));
        let mut old = record("c", 100.0, 0.5, 0);
        old.schema_version = 0;
        std::fs::write(
            &path,
            format!(
                "{}\n{}\n",
                old.to_json(),
                record("c", 101.0, 0.5, 1).to_json()
            ),
        )
        .unwrap();
        let loaded = History::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.outdated, vec![(1, 0)]);

        let mut newer = record("c", 100.0, 0.5, 2);
        newer.schema_version = REGISTRY_SCHEMA_VERSION + 1;
        std::fs::write(&path, format!("{}\n", newer.to_json())).unwrap();
        let err = History::load(&path).unwrap_err();
        assert!(err.contains("newer"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
