//! Trend rendering: per-metric history tables with sparklines.
//!
//! `agave bench history` renders one row per (group, metric): the last
//! few medians as a unicode sparkline (normalized min→max within the
//! row), the latest value, and its delta against the trailing-K median
//! — the same baseline the gate uses, so the table *is* the gate's
//! view of the data.

use crate::harness;
use crate::history::{History, NoisePolicy};
use std::fmt::Write as _;

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` (oldest→newest) as a sparkline, normalized to the
/// slice's own min..max; a flat series renders mid-height.
pub fn sparkline(values: &[f64]) -> String {
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if max > min {
                let idx = ((v - min) / (max - min) * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            } else {
                SPARKS[SPARKS.len() / 2]
            }
        })
        .collect()
}

/// Renders the trend table for every group (optionally filtered to one
/// case), showing at most `last` trailing records per row.
pub fn render(history: &History, case: Option<&str>, last: usize, policy: &NoisePolicy) -> String {
    let mut out = String::new();
    let mut rows = 0usize;
    for key in history.groups() {
        let group = history.group(&key);
        if let Some(case) = case {
            if group[0].case != case {
                continue;
            }
        }
        let _ = writeln!(out, "{key}");
        let metric_names: Vec<&str> = group
            .last()
            .map(|r| r.metrics.iter().map(|m| m.name.as_str()).collect())
            .unwrap_or_default();
        for name in metric_names {
            let series: Vec<&crate::MetricStat> =
                group.iter().filter_map(|r| r.metric(name)).collect();
            let medians: Vec<f64> = series.iter().map(|m| m.median).collect();
            let tail: Vec<f64> = medians
                .iter()
                .copied()
                .skip(medians.len().saturating_sub(last))
                .collect();
            let latest = *medians.last().expect("metric series is non-empty");
            let unit = &series.last().expect("non-empty").unit;
            let delta = match medians.len() {
                0 | 1 => "   (no baseline)".to_owned(),
                n => {
                    let prior = &medians[n.saturating_sub(policy.window + 1)..n - 1];
                    let baseline = harness::median(prior);
                    if baseline != 0.0 {
                        format!(
                            "{:+7.1}% vs trailing-{} median {:.3}",
                            (latest - baseline) / baseline.abs() * 100.0,
                            prior.len(),
                            baseline
                        )
                    } else {
                        "   (zero baseline)".to_owned()
                    }
                }
            };
            let _ = writeln!(
                out,
                "  {:<28} {:<10} {:>12.3} {:<7} {delta}",
                name,
                sparkline(&tail),
                latest,
                unit
            );
            rows += 1;
        }
    }
    if rows == 0 {
        let _ = writeln!(
            out,
            "no records{} in {}",
            case.map(|c| format!(" for case {c:?}")).unwrap_or_default(),
            history.path.display()
        );
    }
    if !history.outdated.is_empty() {
        let _ = writeln!(
            out,
            "note: {} older-schema record(s) not shown",
            history.outdated.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_normalizes_and_handles_flat() {
        let s = sparkline(&[1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[5.0, 5.0]), "▅▅");
    }
}
