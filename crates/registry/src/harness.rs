//! The shared warmup + trials timing loop and its robust statistics.
//!
//! Every timing site in the workspace — the standalone bench targets'
//! `Group::bench` and the registry cases' `run` — funnels through
//! [`time_trials`] / [`TrialStats::from_durations`], so "what is a
//! trial" and "how is noise summarized" have exactly one definition:
//! **median** (robust central value; one preempted trial cannot shift
//! it) and **MAD** (median absolute deviation; the spread estimate the
//! regression gate's noise band is built from).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Robust summary of one bench line's timed trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Fastest trial.
    pub best: Duration,
    /// Arithmetic mean over all trials.
    pub mean: Duration,
    /// Median trial (the value records report).
    pub median: Duration,
    /// Median absolute deviation of the trials.
    pub mad: Duration,
    /// Number of timed trials.
    pub samples: u32,
}

impl TrialStats {
    /// Summarizes a non-empty set of timed trials.
    pub fn from_durations(times: &[Duration]) -> Self {
        assert!(!times.is_empty(), "need at least one trial");
        let mut sorted = times.to_vec();
        sorted.sort();
        let ns: Vec<f64> = sorted.iter().map(|d| d.as_nanos() as f64).collect();
        let med = median_sorted(&ns);
        TrialStats {
            best: sorted[0],
            mean: sorted.iter().sum::<Duration>() / sorted.len() as u32,
            median: Duration::from_nanos(med as u64),
            mad: Duration::from_nanos(mad(&ns, med) as u64),
            samples: times.len() as u32,
        }
    }
}

/// Runs `f` `warmup` untimed times, then `trials` timed times, and
/// returns every trial's duration — the primitive for cases that
/// derive a per-trial metric (MB/s, req/s) from each timing.
pub fn trial_times<R>(warmup: u32, trials: u32, mut f: impl FnMut() -> R) -> Vec<Duration> {
    assert!(trials > 0, "need at least one trial");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut times = Vec::with_capacity(trials as usize);
    for _ in 0..trials {
        let started = Instant::now();
        black_box(f());
        times.push(started.elapsed());
    }
    times
}

/// Runs `f` `warmup` untimed times, then `trials` timed times, and
/// summarizes. The single definition of the timing loop.
pub fn time_trials<R>(warmup: u32, trials: u32, f: impl FnMut() -> R) -> TrialStats {
    TrialStats::from_durations(&trial_times(warmup, trials, f))
}

/// Median of a slice (sorts a copy; even lengths average the middle
/// pair). Empty input returns 0.
pub fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    median_sorted(&sorted)
}

fn median_sorted(sorted: &[f64]) -> f64 {
    match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
    }
}

/// Median absolute deviation around `center`.
pub fn mad(values: &[f64], center: f64) -> f64 {
    let deviations: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let values = [100.0, 101.0, 99.0, 100.0, 500.0];
        let med = median(&values);
        assert_eq!(med, 100.0);
        assert_eq!(mad(&values, med), 1.0);
    }

    #[test]
    fn trial_stats_summarize() {
        let times = [
            Duration::from_nanos(100),
            Duration::from_nanos(300),
            Duration::from_nanos(200),
        ];
        let stats = TrialStats::from_durations(&times);
        assert_eq!(stats.best, Duration::from_nanos(100));
        assert_eq!(stats.median, Duration::from_nanos(200));
        assert_eq!(stats.mean, Duration::from_nanos(200));
        assert_eq!(stats.mad, Duration::from_nanos(100));
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn time_trials_counts_samples() {
        let mut calls = 0u32;
        let stats = time_trials(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(stats.samples, 5);
    }
}
