//! The durable benchmark registry: cases, history, and regression gates.
//!
//! Every prior performance claim in this workspace ("2× hierarchy
//! throughput", "≥3× parallel replay") lived in ad-hoc `BENCH_*.json`
//! snapshots: one run, no history, no environment discipline, and a
//! handful of hard-coded asserts as the only enforcement. This crate is
//! the missing bookkeeping layer that turns those claims into
//! contracts:
//!
//! * [`BenchCase`] — one benchmark as a first-class object: a name,
//!   a parameter map, and a `run` that produces per-trial
//!   [`Measurement`]s under an explicit warmup/trial budget.
//! * [`BenchRecord`] — one run's durable result: `schema_version`,
//!   commit hash, [`HostFingerprint`] (CPU count, OS, arch, build
//!   profile), parameters, and per-metric **median + MAD** over the
//!   trials. Records append to `bench_history.jsonl`, one JSON object
//!   per line, and parse back losslessly.
//! * [`History`] — the append-only log plus the analytics over it:
//!   trend tables ([`trend`]) and the regression gate
//!   ([`History::check`]), which compares each group's latest record
//!   against the **trailing-K baseline** of records with the *same*
//!   case, parameters, tier, and host fingerprint — runs from
//!   different machines or configurations never gate each other.
//!
//! The noise band follows the longitudinal-drift methodology (median +
//! MAD over a series, not an eyeballed pair of numbers): a metric
//! regresses only when it lands outside
//! `max(3 × MAD(baseline medians), 3 × median(baseline MADs),
//! 5% × baseline)` *in the bad direction* — improvements never fail,
//! and within-run trial noise (the record's own MAD) widens the band
//! so a naturally jittery metric does not flap.
//!
//! The concrete cases wrapping the suite's bench targets live in
//! `agave-core` (`benchcases`), and `agave bench list|run|history|check`
//! drives them; this crate stays dependency-light (trace JSON writer,
//! telemetry JSON reader) so anything in the workspace can record to
//! the same history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod fingerprint;
pub mod harness;
pub mod history;
pub mod record;
pub mod trend;

pub use case::{aggregate, BenchCase, Direction, Measurement, RunOpts, Tier};
pub use fingerprint::{commit_hash, HostFingerprint};
pub use harness::{mad, median, time_trials, trial_times, TrialStats};
pub use history::{CheckLine, CheckReport, CheckStatus, History, NoisePolicy};
pub use record::{BenchRecord, MetricStat, REGISTRY_SCHEMA_VERSION};
