//! Host environment metadata: the fingerprint stamped on every record.
//!
//! Runs are only comparable when they ran on comparable hardware, so
//! every [`crate::BenchRecord`] carries a [`HostFingerprint`] and the
//! regression gate groups records by it: a 64-core CI runner never
//! baselines a 1-core laptop. This module is also the single place the
//! workspace probes the host — bench targets that used to call
//! `available_parallelism` ad hoc read [`HostFingerprint::detect`]
//! instead.

use agave_telemetry::parse::Value;
use agave_trace::json;

/// The environment a benchmark ran in: everything that makes two runs
/// comparable (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Logical CPU count (`available_parallelism`; 1 if unknown).
    pub cpus: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Build profile of the measuring binary: `release` or `debug`.
    pub profile: String,
}

impl HostFingerprint {
    /// Probes the current host. This is the workspace's one CPU-count
    /// probe: benches that gate on core count read `.cpus` from here.
    pub fn detect() -> Self {
        HostFingerprint {
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            profile: if cfg!(debug_assertions) {
                "debug".to_owned()
            } else {
                "release".to_owned()
            },
        }
    }

    /// One-line canonical form, used as part of the baseline group key
    /// and in diagnostics: `linux/x86_64/8cpu/release`.
    pub fn canonical(&self) -> String {
        format!(
            "{}/{}/{}cpu/{}",
            self.os, self.arch, self.cpus, self.profile
        )
    }

    /// Renders the fingerprint as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = json::Object::new();
        obj.field_usize("cpus", self.cpus)
            .field_str("os", &self.os)
            .field_str("arch", &self.arch)
            .field_str("profile", &self.profile);
        obj.finish()
    }

    /// Parses the fingerprint back from a record's `host` object.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("host missing {k:?}"));
        Ok(HostFingerprint {
            cpus: field("cpus")?.as_u64().ok_or("host.cpus is not a number")? as usize,
            os: field("os")?
                .as_str()
                .ok_or("host.os is not a string")?
                .to_owned(),
            arch: field("arch")?
                .as_str()
                .ok_or("host.arch is not a string")?
                .to_owned(),
            profile: field("profile")?
                .as_str()
                .ok_or("host.profile is not a string")?
                .to_owned(),
        })
    }
}

/// The commit hash stamped on records: `AGAVE_COMMIT` if set (CI can
/// pin it), else `git rev-parse --short=12 HEAD`, else `"unknown"` —
/// benchmarks still record outside a work tree.
pub fn commit_hash() -> String {
    if let Ok(c) = std::env::var("AGAVE_COMMIT") {
        let c = c.trim().to_owned();
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_round_trips_through_json() {
        let fp = HostFingerprint::detect();
        assert!(fp.cpus >= 1);
        let parsed = agave_telemetry::parse::parse(&fp.to_json()).unwrap();
        assert_eq!(HostFingerprint::from_value(&parsed).unwrap(), fp);
    }

    #[test]
    fn canonical_is_one_line() {
        let fp = HostFingerprint {
            cpus: 8,
            os: "linux".into(),
            arch: "x86_64".into(),
            profile: "release".into(),
        };
        assert_eq!(fp.canonical(), "linux/x86_64/8cpu/release");
    }

    #[test]
    fn commit_hash_is_nonempty() {
        assert!(!commit_hash().is_empty());
    }
}
