//! Benchmark cases: the unit the registry runs and records.
//!
//! A [`BenchCase`] is one benchmark as data — a stable name, a
//! parameter map (everything that would make two runs incomparable if
//! it differed), and a `run` that produces raw per-trial
//! [`Measurement`]s under an explicit [`RunOpts`] budget. The registry
//! aggregates those trials per metric ([`aggregate`]) into the
//! median + MAD statistics a [`crate::BenchRecord`] carries; cases
//! never do their own statistics.

use crate::harness;
use std::collections::BTreeMap;

/// How large a case's workload should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Seconds-scale sizing for CI and local iteration.
    Quick,
    /// The full sizing behind the headline numbers.
    Full,
}

impl Tier {
    /// The tier's name as recorded in history (`quick` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }
}

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: larger is better (MB/s, refs/s, req/s).
    HigherIsBetter,
    /// Cost-like: smaller is better (overhead %, bytes/record).
    LowerIsBetter,
}

impl Direction {
    /// The direction's name as recorded in history (`higher`/`lower`).
    pub fn name(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher",
            Direction::LowerIsBetter => "lower",
        }
    }

    /// Parses the recorded name back.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "higher" => Ok(Direction::HigherIsBetter),
            "lower" => Ok(Direction::LowerIsBetter),
            other => Err(format!("unknown direction {other:?} (higher|lower)")),
        }
    }
}

/// One raw observation: one metric's value from one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Metric name, stable across runs (`decode_mb_per_sec`, …).
    pub metric: String,
    /// Unit label for rendering (`MB/s`, `refs/s`, `%`, …).
    pub unit: String,
    /// Which direction is an improvement.
    pub better: Direction,
    /// The observed value.
    pub value: f64,
}

impl Measurement {
    /// Convenience constructor.
    pub fn new(metric: &str, unit: &str, better: Direction, value: f64) -> Self {
        Measurement {
            metric: metric.to_owned(),
            unit: unit.to_owned(),
            better,
            value,
        }
    }
}

/// The execution budget handed to [`BenchCase::run`].
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Workload sizing.
    pub tier: Tier,
    /// Timed trials per metric (median + MAD are taken over these).
    pub trials: u32,
    /// Untimed warmup iterations before the trials.
    pub warmup: u32,
}

impl RunOpts {
    /// The default budget for a tier: 3 trials (1 warmup) at quick,
    /// 5 trials (2 warmup) at full.
    pub fn for_tier(tier: Tier) -> Self {
        match tier {
            Tier::Quick => RunOpts {
                tier,
                trials: 3,
                warmup: 1,
            },
            Tier::Full => RunOpts {
                tier,
                trials: 5,
                warmup: 2,
            },
        }
    }
}

/// One registered benchmark.
pub trait BenchCase {
    /// Stable case name (`replay_codec`, `hierarchy_walk`, …).
    fn name(&self) -> &str;

    /// One-line description for `agave bench list`.
    fn description(&self) -> &str;

    /// The parameters that define comparability at this tier
    /// (workload label, sizing, grid, client counts, …). Two records
    /// whose params differ never baseline each other.
    fn params(&self, tier: Tier) -> BTreeMap<String, String>;

    /// Executes the case: `opts.warmup` untimed then `opts.trials`
    /// timed rounds, returning every trial's raw measurements.
    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String>;
}

/// Groups raw per-trial measurements by metric (first-appearance
/// order) and summarizes each as median + MAD.
pub fn aggregate(measurements: &[Measurement]) -> Vec<crate::MetricStat> {
    let mut order: Vec<&str> = Vec::new();
    for m in measurements {
        if !order.contains(&m.metric.as_str()) {
            order.push(&m.metric);
        }
    }
    order
        .into_iter()
        .map(|name| {
            let group: Vec<&Measurement> =
                measurements.iter().filter(|m| m.metric == name).collect();
            let values: Vec<f64> = group.iter().map(|m| m.value).collect();
            let med = harness::median(&values);
            crate::MetricStat {
                name: name.to_owned(),
                unit: group[0].unit.clone(),
                better: group[0].better,
                median: med,
                mad: harness::mad(&values, med),
                trials: values.len() as u32,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_groups_by_metric_in_first_seen_order() {
        let ms = vec![
            Measurement::new("a", "MB/s", Direction::HigherIsBetter, 10.0),
            Measurement::new("b", "%", Direction::LowerIsBetter, 1.0),
            Measurement::new("a", "MB/s", Direction::HigherIsBetter, 12.0),
            Measurement::new("a", "MB/s", Direction::HigherIsBetter, 11.0),
            Measurement::new("b", "%", Direction::LowerIsBetter, 3.0),
        ];
        let stats = aggregate(&ms);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "a");
        assert_eq!(stats[0].median, 11.0);
        assert_eq!(stats[0].mad, 1.0);
        assert_eq!(stats[0].trials, 3);
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[1].median, 2.0);
        assert_eq!(stats[1].trials, 2);
    }

    #[test]
    fn direction_round_trips() {
        for d in [Direction::HigherIsBetter, Direction::LowerIsBetter] {
            assert_eq!(Direction::parse(d.name()).unwrap(), d);
        }
        assert!(Direction::parse("sideways").is_err());
    }
}
