//! Regenerates and times **Figure 3 — instruction references by process**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::figure_bench;
use agave_core::FigureTable;

fn main() {
    let (mut group, experiments) = figure_bench(
        "fig3_instr_process",
        "Figure 3 — instruction references by process",
        |ex| ex.figure3().render(),
    );
    let runs = experiments.results().all();
    group.bench("assemble figure from 25 summaries", 10, || {
        FigureTable::figure3(&runs, 9)
    });
}
