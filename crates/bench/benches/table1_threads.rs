//! Regenerates and times **Table I — threads ranked by share of total
//! memory references across the Agave suite**.

use agave_bench::{representative, shared_experiments, Group};
use agave_core::{run_workload, SuiteConfig, TableOne};

fn main() {
    let experiments = shared_experiments();
    println!("\n==== Table I — thread ranking (paper: SurfaceFlinger 43.4, Thread 8.0, AsyncTask 7.6, Compiler 7.1, AudioTrackThread 5.9, GC 5.3) ====");
    println!("{}", experiments.table1_extended(10).render());

    let mut group = Group::new("table1_threads");
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench(&format!("run {workload}"), 10, || {
            run_workload(workload, &config)
        });
    }
    let aggregate = experiments.results().agave_aggregate();
    group.bench("rank threads from suite aggregate", 10, || {
        TableOne::from_runs(std::slice::from_ref(&aggregate), 6)
    });
}
