//! Regenerates and times **Table I — threads ranked by share of total
//! memory references across the Agave suite**.

use agave_bench::figure_bench;
use agave_core::TableOne;

fn main() {
    let (mut group, experiments) = figure_bench(
        "table1_threads",
        "Table I — thread ranking (paper: SurfaceFlinger 43.4, Thread 8.0, \
         AsyncTask 7.6, Compiler 7.1, AudioTrackThread 5.9, GC 5.3)",
        |ex| ex.table1_extended(10).render(),
    );
    let aggregate = experiments.results().agave_aggregate();
    group.bench("rank threads from suite aggregate", 10, || {
        TableOne::from_runs(std::slice::from_ref(&aggregate), 6)
    });
}
