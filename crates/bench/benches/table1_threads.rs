//! Regenerates and times **Table I — threads ranked by share of total
//! memory references across the Agave suite**.

use agave_bench::{representative, shared_experiments};
use agave_core::{run_workload, SuiteConfig, TableOne};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let experiments = shared_experiments();
    println!("\n==== Table I — thread ranking (paper: SurfaceFlinger 43.4, Thread 8.0, AsyncTask 7.6, Compiler 7.1, AudioTrackThread 5.9, GC 5.3) ====");
    println!("{}", experiments.table1_extended(10).render());

    let mut group = c.benchmark_group("table1_threads");
    group.sample_size(10);
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench_function(format!("run {workload}"), |b| {
            b.iter(|| black_box(run_workload(workload, &config)))
        });
    }
    let aggregate = experiments.results().agave_aggregate();
    group.bench_function("rank threads from suite aggregate", |b| {
        b.iter(|| black_box(TableOne::from_runs(std::slice::from_ref(&aggregate), 6)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
