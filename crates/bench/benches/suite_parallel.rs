//! Measures the wall-clock speedup of `engine::run_suite_parallel` over
//! the serial suite, and verifies byte-identical output along the way.
//!
//! The 25 workloads are mutually independent (each boots a private
//! simulated world), so on an N-core host the suite should approach N×;
//! the acceptance bar is ≥ 1.5× at `--jobs ≥ 2` on a multicore host.
//!
//! By default the bench uses the `quick` sizing so it finishes in
//! seconds; set `AGAVE_BENCH_REFERENCE=1` to measure the reference
//! sizing used for the EXPERIMENTS.md numbers.

use agave_core::engine::{self, EngineConfig};
use agave_core::{all_workloads, SuiteResults};
use std::time::{Duration, Instant};

fn suite_json(config: &EngineConfig, jobs: usize) -> (String, Duration) {
    let started = Instant::now();
    let outcomes = engine::run_suite_parallel(&all_workloads(), config, jobs);
    let elapsed = started.elapsed();
    (SuiteResults::from_outcomes(outcomes).to_json(), elapsed)
}

fn best_of(samples: u32, mut f: impl FnMut() -> (String, Duration)) -> (String, Duration) {
    let (json, mut best) = f();
    for _ in 1..samples {
        let (other_json, t) = f();
        assert_eq!(json, other_json, "suite output must be reproducible");
        best = best.min(t);
    }
    (json, best)
}

fn main() {
    let reference = std::env::var("AGAVE_BENCH_REFERENCE").is_ok_and(|v| v == "1");
    let (config, sizing, samples) = if reference {
        (EngineConfig::reference(), "reference", 1)
    } else {
        (EngineConfig::quick(), "quick", 2)
    };
    let cpus = agave_bench::fingerprint().cpus;
    println!("\n-- bench group: suite_parallel ({sizing} sizing, {cpus} CPUs)");

    let (serial_json, serial) = best_of(samples, || suite_json(&config, 1));
    println!("{:<40} {serial:>12?}", "25 workloads, serial (jobs=1)");

    let mut job_counts = vec![2, 4, cpus];
    job_counts.sort_unstable();
    job_counts.dedup();
    for jobs in job_counts.into_iter().filter(|&j| j > 1) {
        let (json, t) = best_of(samples, || suite_json(&config, jobs));
        assert_eq!(
            json, serial_json,
            "jobs={jobs}: parallel output must be byte-identical to serial"
        );
        let speedup = serial.as_secs_f64() / t.as_secs_f64();
        println!(
            "{:<40} {t:>12?}  speedup {speedup:>5.2}x  (output byte-identical)",
            format!("25 workloads, jobs={jobs}")
        );
    }
    if cpus == 1 {
        println!("note: single-CPU host — no speedup is expected here");
    }
}
