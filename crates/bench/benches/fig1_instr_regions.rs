//! Regenerates and times **Figure 1 — instruction references by VMA region**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::figure_bench;
use agave_core::FigureTable;

fn main() {
    let (mut group, experiments) = figure_bench(
        "fig1_instr_regions",
        "Figure 1 — instruction references by VMA region",
        |ex| ex.figure1().render(),
    );
    let runs = experiments.results().all();
    group.bench("assemble figure from 25 summaries", 10, || {
        FigureTable::figure1(&runs, 9)
    });
}
