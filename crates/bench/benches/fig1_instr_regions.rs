//! Regenerates and times **Figure 1 — instruction references by VMA region**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::{representative, shared_experiments, Group};
use agave_core::{run_workload, FigureTable, SuiteConfig};

fn main() {
    let experiments = shared_experiments();
    println!("\n==== Figure 1 — instruction references by VMA region ====");
    println!("{}", experiments.figure1().render());

    let mut group = Group::new("fig1_instr_regions");
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench(&format!("run {workload}"), 10, || {
            run_workload(workload, &config)
        });
    }
    let runs = experiments.results().all();
    group.bench("assemble figure from 25 summaries", 10, || {
        FigureTable::figure1(&runs, 9)
    });
}
