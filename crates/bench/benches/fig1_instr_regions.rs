//! Regenerates and times **Figure 1 — instruction references by VMA region**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::{representative, shared_experiments};
use agave_core::{run_workload, FigureTable, SuiteConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let experiments = shared_experiments();
    println!("\n==== Figure 1 — instruction references by VMA region ====");
    println!("{}", experiments.figure1().render());

    let mut group = c.benchmark_group("fig1_instr_regions");
    group.sample_size(10);
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench_function(format!("run {workload}"), |b| {
            b.iter(|| black_box(run_workload(workload, &config)))
        });
    }
    let runs = experiments.results().all();
    group.bench_function("assemble figure from 25 summaries", |b| {
        b.iter(|| black_box(FigureTable::figure1(&runs, 9)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
