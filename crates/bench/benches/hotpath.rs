//! Hot-path throughput in references per second, with a machine-readable
//! `BENCH_hotpath.json` report (path overridable via `AGAVE_BENCH_JSON`)
//! for CI artifact upload.
//!
//! Two paths are measured over the same workload (`countdown.main` at
//! quick sizing):
//!
//! * `sim_throughput` — the bare simulation loop: tracer accounting and
//!   batched sink delivery with no observer attached.
//! * `cache_throughput` — the same run with the cortex-a9
//!   `MemoryHierarchy` replaying every classified reference.
//!
//! The reference count is measured first with a counting sink, so the
//! reported refs/sec always reflects the stream the timed runs replay.

use agave_bench::{Group, HotpathReport};
use agave_cache::HierarchyGeometry;
use agave_core::engine::{self, EngineConfig};
use agave_core::{run_workload, run_workload_with_cache, AppId, SuiteConfig, Workload};
use agave_trace::{Reference, ReferenceSink};
use std::cell::RefCell;
use std::rc::Rc;

/// Counts delivered reference blocks and the words they carry.
#[derive(Default)]
struct CountingSink {
    blocks: u64,
    words: u64,
}

impl ReferenceSink for CountingSink {
    fn on_reference(&mut self, r: &Reference) {
        self.blocks += 1;
        self.words += r.words;
    }
}

fn main() {
    let config = SuiteConfig::quick();
    let workload = Workload::Agave(AppId::CountdownMain);
    let geometry = HierarchyGeometry::cortex_a9();

    // Measure the stream once: how many reference blocks (and words) one
    // run of the workload delivers to its sinks.
    let counter = Rc::new(RefCell::new(CountingSink::default()));
    let engine_config = EngineConfig {
        app: config.app,
        spec: config.spec,
    };
    engine::run_observed(workload, &engine_config, vec![counter.clone()]);
    let blocks = counter.borrow().blocks;
    let words = counter.borrow().words;
    println!("stream: {blocks} reference blocks, {words} words");

    let mut group = Group::new("hotpath");
    let mut report = HotpathReport::new();

    let sim = group.bench("sim_throughput (no sink)", 10, || {
        run_workload(workload, &config)
    });
    report.record("sim_throughput", blocks, &sim);

    let cache = group.bench("cache_throughput (cortex-a9 hierarchy)", 10, || {
        run_workload_with_cache(workload, &config, geometry)
    });
    report.record("cache_throughput", blocks, &cache);

    println!(
        "rates: sim {:.1} Mrefs/s, cache {:.1} Mrefs/s",
        sim.rate(blocks) / 1e6,
        cache.rate(blocks) / 1e6
    );
    report.write_or_warn();
}
