//! Trace record/replay throughput, with a machine-readable
//! `BENCH_replay.json` report (path overridable via `AGAVE_BENCH_JSON`)
//! for CI artifact upload.
//!
//! Four paths are measured over one representative Android workload
//! (`gallery.mp4.view` at quick sizing):
//!
//! * `record` — live simulation with a `TraceWriter` attached, streaming
//!   a `.agtrace` file (reported in MB/s of trace written);
//! * `live_summary` — the plain live run the replay path competes with;
//! * `replay_summary` — `RunSummary` rebuilt from the trace file alone
//!   (the byte-identity contract's fast path — must beat `live_summary`);
//! * `replay_cache` — the trace driving a cortex-a9 `MemoryHierarchy`.
//!
//! The report also records bytes-per-reference, the format's compression
//! budget (< 8 B/ref, enforced by `tests/replay_roundtrip.rs`).

use agave_bench::{Group, HotpathReport};
use agave_cache::HierarchyGeometry;
use agave_core::{engine, record, AppId, SuiteConfig, Workload};

fn main() {
    let config = SuiteConfig::quick();
    let workload = Workload::Agave(AppId::GalleryMp4View);
    let path =
        std::env::temp_dir().join(format!("agave-replay-bench-{}.agtrace", std::process::id()));

    let mut group = Group::new("replay_throughput");
    let mut report = HotpathReport::named("replay");

    let rec = group.bench("record gallery.mp4.view (quick)", 5, || {
        record::record_workload(workload, &config, &path).expect("record")
    });
    let stats = record::record_workload(workload, &config, &path).expect("record");
    let record_mb_s = stats.file_bytes as f64 / 1e6 / rec.best.as_secs_f64();
    println!(
        "trace: {} records · {} bytes · {:.2} bytes/record · recorded at {:.1} MB/s",
        stats.records,
        stats.file_bytes,
        stats.bytes_per_record(),
        record_mb_s
    );

    let live = group.bench("live run (summary only)", 5, || {
        engine::run(workload, &config)
    });
    let replay = group.bench("replay -> summary rebuild", 5, || {
        record::replay_trace_summary(&path).expect("replay summary")
    });
    let cache = group.bench("replay -> cortex-a9 hierarchy", 5, || {
        record::replay_trace_cache(&path, HierarchyGeometry::cortex_a9()).expect("replay cache")
    });

    let speedup = live.best.as_secs_f64() / replay.best.as_secs_f64();
    println!(
        "rates: replay {:.1} Mrefs/s (summary), {:.1} Mrefs/s (cache) · {:.2}x vs live summary",
        replay.rate(stats.records) / 1e6,
        cache.rate(stats.records) / 1e6,
        speedup
    );
    if speedup < 1.0 {
        eprintln!("WARNING: summary replay is slower than the live run ({speedup:.2}x)");
    }

    report.record("record", stats.records, &rec);
    report.record("live_summary", stats.records, &live);
    report.record("replay_summary", stats.records, &replay);
    report.record("replay_cache", stats.records, &cache);
    let mut extra = agave_trace::json::Object::new();
    extra
        .field_str("path", "format")
        .field_u64("trace_bytes", stats.file_bytes)
        .field_u64("records", stats.records)
        .field_u64("words", stats.words)
        .field_f64("bytes_per_record", stats.bytes_per_record())
        .field_f64("record_mb_per_sec", record_mb_s)
        .field_f64("replay_vs_live_speedup", speedup);
    report.push_raw(extra.finish());

    match report.write() {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write replay report: {e}"),
    }
    std::fs::remove_file(&path).ok();
}
