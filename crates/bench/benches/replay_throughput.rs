//! Trace record/replay throughput, with a machine-readable
//! `BENCH_replay.json` report (path overridable via `AGAVE_BENCH_JSON`)
//! for CI artifact upload.
//!
//! Paths measured over one representative Android workload
//! (`gallery.mp4.view` at quick sizing):
//!
//! * `record` — live simulation with a `TraceWriter` attached, streaming
//!   a `.agtrace` file. The reported e2e MB/s includes the simulation
//!   itself, which dominates; `encode` isolates the codec.
//! * `encode` — pure encoder: the decoded reference stream re-encoded
//!   through a `TraceWriter` into memory (no simulation, no disk).
//! * `live_summary` — the plain live run the replay path competes with;
//! * `replay_summary` — `RunSummary` rebuilt from the trace file alone,
//!   serial (`jobs = 1`) and parallel (`jobs = 0`, one per CPU);
//! * `replay_cache` — the trace driving a cortex-a9 `MemoryHierarchy`.
//!
//! The report records decode MB/s for both job counts and the
//! replay-vs-live ratios, and *gates* them: on hosts with ≥ 4 CPUs the
//! parallel replay must be ≥ 3× the live run; on smaller hosts only
//! amortization is asserted (serial replay at least as fast as live).
//! Bytes-per-reference — the format's < 8 B/ref compression budget — is
//! enforced by `tests/replay_roundtrip.rs`.

use agave_bench::{fingerprint, Group, HotpathReport};
use agave_cache::HierarchyGeometry;
use agave_core::{engine, record, AppId, SuiteConfig, Workload};
use agave_replay::{TraceBuffer, TraceWriter};
use agave_trace::{Reference, ReferenceSink, SharedSink};
use std::cell::RefCell;
use std::rc::Rc;

/// Buffers the replayed stream so the encoder can be timed in isolation.
#[derive(Default)]
struct Collect {
    refs: Vec<Reference>,
}

impl ReferenceSink for Collect {
    fn on_reference(&mut self, r: &Reference) {
        self.refs.push(*r);
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        self.refs.extend_from_slice(batch);
    }
}

fn main() {
    let config = SuiteConfig::quick();
    let workload = Workload::Agave(AppId::GalleryMp4View);
    let path =
        std::env::temp_dir().join(format!("agave-replay-bench-{}.agtrace", std::process::id()));

    let mut group = Group::new("replay_throughput");
    let mut report = HotpathReport::named("replay");
    let cpus = fingerprint().cpus;

    let rec = group.bench("record gallery.mp4.view (quick)", 5, || {
        record::record_workload(workload, &config, &path).expect("record")
    });
    let stats = record::record_workload(workload, &config, &path).expect("record");
    let record_mb_s = stats.file_bytes as f64 / 1e6 / rec.best().as_secs_f64();
    println!(
        "trace: {} records · {} bytes · {:.2} bytes/record · recorded at {:.1} MB/s e2e",
        stats.records,
        stats.file_bytes,
        stats.bytes_per_record(),
        record_mb_s
    );

    // Decode the stream once so the pure encoder can be timed without
    // the simulation or the decoder in the loop.
    let collected = Rc::new(RefCell::new(Collect::default()));
    let buf = TraceBuffer::open(&path).expect("open trace");
    let outcome = buf
        .replay(&[collected.clone() as SharedSink], 1)
        .expect("decode for encoder bench");
    let refs = std::mem::take(&mut collected.borrow_mut().refs);
    let enc = group.bench("encode (pure codec, in memory)", 5, || {
        let mut w = TraceWriter::new(Vec::new(), &outcome.label).expect("writer");
        for r in &refs {
            w.append(r);
        }
        w.finish(&outcome.directory, &outcome.baseline)
            .expect("finish")
    });
    let enc_stats = {
        let mut w = TraceWriter::new(Vec::new(), &outcome.label).expect("writer");
        for r in &refs {
            w.append(r);
        }
        w.finish(&outcome.directory, &outcome.baseline)
            .expect("finish")
    };
    let encode_mb_s = enc_stats.file_bytes as f64 / 1e6 / enc.best().as_secs_f64();
    println!("encode: {encode_mb_s:.1} MB/s (codec only)");

    let live = group.bench("live run (summary only)", 5, || {
        engine::run(workload, &config)
    });
    let replay = group.bench("replay -> summary rebuild (serial)", 5, || {
        record::replay_trace_summary(&path, 1).expect("replay summary")
    });
    let replay_par = group.bench(
        &format!("replay -> summary rebuild ({cpus} jobs)"),
        5,
        || record::replay_trace_summary(&path, 0).expect("replay summary"),
    );
    let cache = group.bench("replay -> cortex-a9 hierarchy", 5, || {
        record::replay_trace_cache(&path, HierarchyGeometry::cortex_a9(), 1).expect("replay cache")
    });

    let decode_mb_s = stats.file_bytes as f64 / 1e6 / replay.best().as_secs_f64();
    let decode_mb_s_par = stats.file_bytes as f64 / 1e6 / replay_par.best().as_secs_f64();
    let speedup = live.best().as_secs_f64() / replay.best().as_secs_f64();
    let speedup_par = live.best().as_secs_f64() / replay_par.best().as_secs_f64();
    println!(
        "rates: decode {:.1} MB/s serial, {:.1} MB/s on {cpus} jobs · replay {:.1} Mrefs/s (summary), {:.1} Mrefs/s (cache)",
        decode_mb_s,
        decode_mb_s_par,
        replay.rate(stats.records) / 1e6,
        cache.rate(stats.records) / 1e6,
    );
    println!("replay vs live: {speedup:.2}x serial, {speedup_par:.2}x parallel");

    // Regression gates. Parallel decode needs cores to show up; on
    // serial hosts only the amortization contract (replay beats
    // re-simulating) is checkable.
    if cpus >= 4 {
        assert!(
            speedup_par >= 3.0,
            "parallel summary replay must be >= 3x live on a {cpus}-CPU host, got {speedup_par:.2}x"
        );
    } else {
        assert!(
            speedup >= 1.0,
            "summary replay must amortize (>= 1x live), got {speedup:.2}x"
        );
    }

    report.record("record", stats.records, &rec);
    report.record("encode", stats.records, &enc);
    report.record("live_summary", stats.records, &live);
    report.record("replay_summary", stats.records, &replay);
    report.record("replay_summary_parallel", stats.records, &replay_par);
    report.record("replay_cache", stats.records, &cache);
    let mut extra = agave_trace::json::Object::new();
    extra
        .field_str("path", "format")
        .field_u64("trace_bytes", stats.file_bytes)
        .field_u64("records", stats.records)
        .field_u64("words", stats.words)
        .field_u64("decode_cpus", cpus as u64)
        .field_f64("bytes_per_record", stats.bytes_per_record())
        .field_f64("record_mb_per_sec", record_mb_s)
        .field_f64("encode_mb_per_sec", encode_mb_s)
        .field_f64("decode_mb_per_sec", decode_mb_s)
        .field_f64("decode_mb_per_sec_parallel", decode_mb_s_par)
        .field_f64("replay_vs_live_speedup", speedup)
        .field_f64("replay_vs_live_speedup_parallel", speedup_par);
    report.push_raw(extra.finish());

    report.write_or_warn();
    std::fs::remove_file(&path).ok();
}
