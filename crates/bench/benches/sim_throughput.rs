//! Simulator-level microbenchmarks: how fast the substrate itself runs.
//!
//! Not a paper artifact — these catch performance regressions in the
//! engine (charge path, Dalvik interpreter, graphics, boot).

use agave_core::{run_workload, AppId, SpecProgram, SuiteConfig, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    let config = SuiteConfig::quick();

    group.bench_function("boot + launch + 1.2s: countdown.main", |b| {
        b.iter(|| black_box(run_workload(Workload::Agave(AppId::CountdownMain), &config)))
    });
    group.bench_function("dalvik-heavy: odr.xls.view", |b| {
        b.iter(|| black_box(run_workload(Workload::Agave(AppId::OdrXlsView), &config)))
    });
    group.bench_function("native-heavy: doom.main", |b| {
        b.iter(|| black_box(run_workload(Workload::Agave(AppId::DoomMain), &config)))
    });
    group.bench_function("spec kernel: 401.bzip2", |b| {
        b.iter(|| black_box(run_workload(Workload::Spec(SpecProgram::Bzip2), &config)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
