//! Simulator-level microbenchmarks: how fast the substrate itself runs.
//!
//! Not a paper artifact — these catch performance regressions in the
//! engine (charge path, Dalvik interpreter, graphics, boot).

use agave_bench::Group;
use agave_core::{run_workload, AppId, SpecProgram, SuiteConfig, Workload};

fn main() {
    let mut group = Group::new("sim_throughput");
    let config = SuiteConfig::quick();

    group.bench("boot + launch + 1.2s: countdown.main", 10, || {
        run_workload(Workload::Agave(AppId::CountdownMain), &config)
    });
    group.bench("dalvik-heavy: odr.xls.view", 10, || {
        run_workload(Workload::Agave(AppId::OdrXlsView), &config)
    });
    group.bench("native-heavy: doom.main", 10, || {
        run_workload(Workload::Agave(AppId::DoomMain), &config)
    });
    group.bench("spec kernel: 401.bzip2", 10, || {
        run_workload(Workload::Spec(SpecProgram::Bzip2), &config)
    });
}
