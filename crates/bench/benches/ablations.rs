//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation prints a small paper-style table of *charged references*
//! under the two settings (the quantity the reproduction is about), then
//! times one representative configuration.
//!
//! 1. **JIT on/off** — interpreter dispatch vs compiled traces.
//! 2. **Video overlay vs GL composition** — the copybit path that lets
//!    `mediaserver` dominate `gallery.mp4.view`.
//! 3. **Display scale** — pixel-vs-compute balance drift away from the
//!    calibrated 1/8-panel operating point.
//! 4. **GC trigger threshold** — collections per run vs allocation churn.

use agave_apps::{run_app, AppId, RunConfig};
use agave_bench::Group;
use agave_dalvik::{Value, Vm};
use agave_dex::{BinOp, Cond, DexFile, MethodBuilder, MethodId, Reg};
use agave_gfx::{Bitmap, DisplayConfig, PixelFormat, SurfaceFlinger, SurfaceStore, VSYNC_PERIOD};
use agave_kernel::{Actor, Ctx, Kernel, Message};

/// Builds the classic sum loop used by the JIT ablation.
fn sum_dex() -> (DexFile, MethodId) {
    let mut dex = DexFile::new();
    let class = dex.add_class("Labl/Sum;", 0, 0);
    let mut m = MethodBuilder::new(5, 1);
    let (n, i, acc, one) = (Reg(4), Reg(0), Reg(1), Reg(2));
    m.konst(i, 0).konst(acc, 0).konst(one, 1);
    let head = m.new_label();
    m.bind(head);
    m.binop(BinOp::Add, acc, acc, i);
    m.binop(BinOp::Add, i, i, one);
    m.if_cmp(Cond::Lt, i, n, head);
    m.ret(Some(acc));
    let id = dex.add_method(class, "sum", m);
    (dex, id)
}

/// Runs a closure in a scratch kernel and returns (result, total refs).
fn measure<R: 'static>(f: impl FnOnce(&mut Ctx<'_>) -> R + 'static) -> (R, u64) {
    struct Runner<F, R> {
        f: Option<F>,
        out: std::rc::Rc<std::cell::RefCell<Option<R>>>,
    }
    impl<F: FnOnce(&mut Ctx<'_>) -> R + 'static, R: 'static> Actor for Runner<F, R> {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            let f = self.f.take().expect("once");
            *self.out.borrow_mut() = Some(f(cx));
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }
    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("ablation");
    kernel.spawn_thread(
        pid,
        "main",
        Box::new(Runner {
            f: Some(f),
            out: out.clone(),
        }),
    );
    kernel.run_to_idle();
    let refs = kernel.tracer().grand_total();
    let r = out.borrow_mut().take().expect("ran");
    (r, refs)
}

fn ablation_jit() {
    println!("\n== Ablation 1: interpreter vs JIT-compiled execution ==");
    println!("{:<28} {:>14} {:>10}", "mode", "charged refs", "vs interp");
    let (_, interp) = measure(|cx| {
        let (dex, id) = sum_dex();
        let mut vm = Vm::new(cx, dex, "abl.dex");
        vm.invoke(cx, id, &[Value::Int(20_000)])
    });
    let (_, jit) = measure(|cx| {
        let (dex, id) = sum_dex();
        let mut vm = Vm::new(cx, dex, "abl.dex");
        vm.force_compiled(id);
        vm.invoke(cx, id, &[Value::Int(20_000)])
    });
    println!("{:<28} {:>14} {:>9.2}x", "interpreted", interp, 1.0);
    println!(
        "{:<28} {:>14} {:>9.2}x",
        "JIT-compiled",
        jit,
        jit as f64 / interp as f64
    );
}

/// One layer composited for ~0.5 s; returns total charged refs.
fn compose_refs(overlay: bool) -> u64 {
    let mut kernel = Kernel::new();
    let cfg = DisplayConfig::wvga().scaled(8);
    let wk = kernel.well_known();
    let fb = kernel.shm_create(wk.fb0, cfg.fb_bytes());
    let store = SurfaceStore::new();
    let ss = kernel.spawn_process("system_server");
    let sf_lib = kernel.intern_region("libsurfaceflinger.so");
    let flinger = SurfaceFlinger::new(cfg, store.clone(), fb);
    kernel.spawn_thread_in(ss, "SurfaceFlinger", sf_lib, Box::new(flinger));

    struct Poster {
        store: SurfaceStore,
        overlay: bool,
        cfg: DisplayConfig,
        handle: Option<agave_gfx::SurfaceHandle>,
    }
    impl Actor for Poster {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            let h = self.store.create_surface(
                cx,
                "abl",
                0,
                0,
                self.cfg.width,
                self.cfg.height,
                PixelFormat::Rgb565,
            );
            h.set_overlay(self.overlay);
            self.handle = Some(h);
            cx.post_self(Message::new(1));
        }
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let h = self.handle.as_ref().expect("surface").clone();
            let frame = Bitmap::new(h.width(), h.height(), PixelFormat::Rgb565);
            h.post_buffer(cx, &frame);
            cx.post_self_after(VSYNC_PERIOD, Message::new(1));
        }
    }
    let app = kernel.spawn_process("benchmark");
    kernel.spawn_thread(
        app,
        "main",
        Box::new(Poster {
            store,
            overlay,
            cfg,
            handle: None,
        }),
    );
    kernel.run_until(VSYNC_PERIOD * 30);
    kernel.tracer().summarize("abl").refs_by_thread["SurfaceFlinger"]
}

fn ablation_overlay() {
    println!("\n== Ablation 2: GL (pixelflinger) vs overlay (copybit) composition ==");
    let gl = compose_refs(false);
    let ov = compose_refs(true);
    println!("{:<28} {:>14}", "path", "SF thread refs");
    println!("{:<28} {:>14}", "pixelflinger (UI layers)", gl);
    println!("{:<28} {:>14}", "overlay (video layers)", ov);
    println!(
        "overlay path is {:.1}x cheaper — the headroom that lets mediaserver\n\
         dominate gallery.mp4.view as in the paper",
        gl as f64 / ov.max(1) as f64
    );
}

fn ablation_display_scale() {
    println!("\n== Ablation 3: display scale vs SurfaceFlinger share ==");
    println!("{:<12} {:>16} {:>10}", "scale", "total refs", "SF share");
    for scale in [16, 8, 4] {
        let config = RunConfig {
            duration_ms: 800,
            display_scale: scale,
        };
        let s = run_app(AppId::FrozenbubbleMain, config);
        let total = s.total_instr + s.total_data;
        let sf = s.refs_by_thread.get("SurfaceFlinger").copied().unwrap_or(0);
        println!(
            "1/{:<10} {:>16} {:>9.1}%",
            scale,
            total,
            sf as f64 * 100.0 / total as f64
        );
    }
    println!("(charging constants are calibrated at 1/8 — see RunConfig docs)");
}

fn ablation_gc_churn() {
    println!("\n== Ablation 4: allocation churn vs collections ==");
    println!(
        "{:<20} {:>8} {:>14}",
        "arrays allocated", "GCs", "GC-ish refs"
    );
    for arrays in [50u64, 400, 1600] {
        let (gcs, refs) = measure(move |cx| {
            let (dex, _) = sum_dex();
            let mut vm = Vm::new(cx, dex, "abl.dex");
            for _ in 0..arrays {
                let _garbage = vm.heap.alloc_array(256);
                vm.request_gc_if_needed(cx);
            }
            // Collections run synchronously here (no GC thread attached):
            // drain by collecting directly for the ablation.
            let stats_before = vm.stats().gc_runs;
            while vm.heap.allocated_since_gc() > 32 * 1024 {
                vm.run_gc(cx);
            }
            vm.stats().gc_runs - stats_before
        });
        println!("{:<20} {:>8} {:>14}", arrays, gcs, refs);
    }
}

fn main() {
    ablation_jit();
    ablation_overlay();
    ablation_display_scale();
    ablation_gc_churn();

    let mut group = Group::new("ablations");
    group.bench("compose 30 vsyncs (pixelflinger)", 10, || {
        compose_refs(false)
    });
    group.bench("compose 30 vsyncs (overlay)", 10, || compose_refs(true));
}
