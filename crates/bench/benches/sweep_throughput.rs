//! Design-space sweep throughput, with a machine-readable
//! `BENCH_sweep.json` report (path overridable via `AGAVE_BENCH_JSON`)
//! for CI artifact upload.
//!
//! The sweep engine amortizes everything that is not per-cell cache
//! state: the `.agtrace` decode runs once (vs 64 times), and the walk's
//! shared front half — line splitting, TLB simulation, stat-row
//! bookkeeping — runs once per line-size group (vs once per cell),
//! while each cell replays only its private L1/L2 probes
//! (`MemoryHierarchy::apply_plan`). Those probes are ~75% of a replay
//! and scale with cell count, so the serial amortization ratio is
//! modest by construction; the fan-out shards exactly that probe work
//! across `parallel_map` workers, which is where the ISSUE 7 headline
//! (≥3x over 64 sequential `replay --cache` runs at N=64) comes from.
//! The gate is therefore enforced when the host can shard (≥4 CPUs,
//! e.g. CI runners); on narrower hosts the measured ratios are still
//! reported in `BENCH_sweep.json`, and the sweep must always win.

use agave_bench::{fingerprint, Group, HotpathReport};
use agave_core::{record, sweep_path, AppId, GridSpec, HierarchyGeometry, SuiteConfig, Workload};

const GRID: &str = "size=4k,8k,16k,32k:assoc=2,4,8,16:line=16,32,64,128";

fn main() {
    let config = SuiteConfig::quick();
    let workload = Workload::Agave(AppId::CountdownMain);
    let path =
        std::env::temp_dir().join(format!("agave-sweep-bench-{}.agtrace", std::process::id()));
    let stats = record::record_workload(workload, &config, &path).expect("record");
    let grid = GridSpec::parse(GRID).expect("grid");
    let cells = grid.cells().expect("cells");
    assert_eq!(cells.len(), 64);
    let jobs = fingerprint().cpus;
    println!(
        "trace: {} · {} records · grid {} ({} cells) · {} CPUs",
        workload.label(),
        stats.records,
        grid,
        cells.len(),
        jobs
    );

    let mut group = Group::new("sweep_throughput");
    let mut report = HotpathReport::named("sweep");

    let sequential = group.bench("64 sequential replay --cache runs", 3, || {
        cells
            .iter()
            .map(|&g| record::replay_trace_cache(&path, g, 1).expect("replay"))
            .collect::<Vec<_>>()
    });
    let serial_fanout = group.bench("sweep: decode once, jobs=1", 3, || {
        sweep_path(&path, &grid, 1).expect("sweep")
    });
    let fanout = group.bench("sweep: decode once, jobs=0 (all CPUs)", 3, || {
        sweep_path(&path, &grid, 0).expect("sweep")
    });

    let cell_refs = stats.records * cells.len() as u64;
    let speedup = sequential.best().as_secs_f64() / fanout.best().as_secs_f64();
    let serial_amortization = sequential.best().as_secs_f64() / serial_fanout.best().as_secs_f64();
    println!(
        "rates: sweep {:.1} Mcell-recs/s · {speedup:.2}x vs sequential ({serial_amortization:.2}x at jobs=1)",
        fanout.rate(cell_refs) / 1e6,
    );

    report.record("sequential_64", cell_refs, &sequential);
    report.record("sweep_64_jobs1", cell_refs, &serial_fanout);
    report.record("sweep_64_jobs0", cell_refs, &fanout);
    let mut extra = agave_trace::json::Object::new();
    extra
        .field_str("path", "sweep")
        .field_str("grid", GRID)
        .field_usize("cells", cells.len())
        .field_u64("records", stats.records)
        .field_usize("effective_jobs", jobs)
        .field_f64("sweep_vs_sequential_speedup", speedup)
        .field_f64("serial_amortization", serial_amortization);
    report.push_raw(extra.finish());

    // Sanity: cell names resolve back to geometries, and the fan-out
    // answer equals a standalone replay (the full byte-identity
    // contract lives in tests/sweep_determinism.rs).
    let sweep = sweep_path(&path, &grid, 0).expect("sweep");
    let standalone = record::replay_trace_cache(
        &path,
        HierarchyGeometry::by_name(sweep.cells[0].name()).expect("cell names resolve"),
        1,
    )
    .expect("replay");
    assert_eq!(sweep.cells[0].report, standalone);

    report.write_or_warn();
    std::fs::remove_file(&path).ok();

    assert!(
        speedup >= 1.05,
        "sweep must beat 64 sequential replays on any host, got {speedup:.2}x"
    );
    if jobs >= 4 {
        assert!(
            speedup >= 3.0,
            "with {jobs} CPUs the sharded sweep must be >=3x faster than \
             64 sequential replays, got {speedup:.2}x"
        );
    } else {
        println!("note: {jobs} CPU(s) — probe sharding unavailable, 3x gate not applicable");
    }
}
