//! Telemetry overhead gate, with a machine-readable
//! `BENCH_telemetry.json` report (path overridable via
//! `AGAVE_BENCH_JSON`) for CI artifact upload.
//!
//! Telemetry's contract has two halves, and this target asserts both
//! (exiting nonzero on violation, so CI can gate on it):
//!
//! 1. **Disabled cost < 2%.** When no `--telemetry` flag is given, the
//!    only cost telemetry adds to a run is one relaxed atomic load +
//!    branch per *batch-granular* gate (sink flush, hierarchy batch,
//!    writer batch) plus a handful of span-constructor gates. The bench
//!    counts those gates for a real workload, calibrates the cost of
//!    one gate check directly, and asserts
//!    `gates x per_gate_ns / run_ns < 2%`. This bounds the disabled
//!    overhead structurally instead of trying to resolve a sub-noise
//!    delta between two timed runs.
//! 2. **Byte identity.** Enabling telemetry must not change analysis
//!    output: the suite summaries' JSON with telemetry on equals the
//!    JSON with it off, byte for byte.

use agave_bench::{Group, HotpathReport};
use agave_core::engine::{self, EngineConfig};
use agave_core::{AppId, SpecProgram, Workload};
use agave_trace::{Reference, ReferenceSink};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant;

/// Counts delivered reference blocks and batches (one batch = one
/// disabled-path gate check in the instrumented sinks).
#[derive(Default)]
struct CountingSink {
    blocks: u64,
    batches: u64,
}

impl ReferenceSink for CountingSink {
    fn on_reference(&mut self, r: &Reference) {
        let _ = r;
        self.blocks += 1;
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        self.blocks += batch.len() as u64;
        self.batches += 1;
    }
}

/// Times one `agave_telemetry::enabled()` gate check (load + branch),
/// amortized over a large loop.
fn calibrate_gate_ns() -> f64 {
    const ITERS: u64 = 20_000_000;
    let started = Instant::now();
    let mut hits = 0u64;
    for _ in 0..ITERS {
        if black_box(agave_telemetry::enabled()) {
            hits += 1;
        }
    }
    black_box(hits);
    started.elapsed().as_nanos() as f64 / ITERS as f64
}

fn suite_json(workloads: &[Workload], config: &EngineConfig) -> String {
    engine::run_suite_parallel(workloads, config, 2)
        .iter()
        .map(|o| o.summary.to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let config = EngineConfig::quick();
    let workload = Workload::Agave(AppId::CountdownMain);
    let workloads = [
        Workload::Agave(AppId::CountdownMain),
        Workload::Agave(AppId::JetboyMain),
        Workload::Spec(SpecProgram::Specrand),
    ];

    // How many batch-granular gate checks one run performs: every sink
    // batch is one flush_sinks gate; double it to also cover a second
    // instrumented sink (hierarchy or trace writer), and pad for the
    // span/heartbeat constructor gates.
    let counter = Rc::new(RefCell::new(CountingSink::default()));
    engine::run_observed(workload, &config, vec![counter.clone()]);
    let blocks = counter.borrow().blocks;
    let gates = counter.borrow().batches * 2 + 16;
    println!("stream: {blocks} reference blocks in {} batches", {
        counter.borrow().batches
    });

    let mut group = Group::new("telemetry_overhead");
    let mut report = HotpathReport::named("telemetry");

    assert!(
        !agave_telemetry::enabled(),
        "telemetry must start disabled in the bench process"
    );
    let disabled = group.bench("run (telemetry disabled)", 10, || {
        engine::run(workload, &config)
    });
    report.record("run_disabled", blocks, &disabled);

    let per_gate_ns = calibrate_gate_ns();
    let run_ns = disabled.best().as_nanos() as f64;
    let overhead_pct = gates as f64 * per_gate_ns / run_ns * 100.0;
    println!(
        "disabled gate cost: {gates} gates x {per_gate_ns:.2} ns / {:.2} ms run = {overhead_pct:.4}%",
        run_ns / 1e6
    );

    // Byte identity: the same suite subset, telemetry off vs on. The
    // capture itself goes to a separate file/stderr, never stdout JSON.
    let json_off = suite_json(&workloads, &config);
    agave_telemetry::set_enabled(true);
    let enabled = group.bench("run (telemetry enabled)", 10, || {
        engine::run(workload, &config)
    });
    report.record("run_enabled", blocks, &enabled);
    let json_on = suite_json(&workloads, &config);
    agave_telemetry::set_enabled(false);
    let snapshot = agave_telemetry::capture();
    println!(
        "enabled capture: {} spans, {} counters, {} histograms",
        snapshot.spans.len(),
        snapshot.metrics.counters.len(),
        snapshot.metrics.histograms.len()
    );

    let mut row = agave_trace::json::Object::new();
    row.field_str("path", "disabled_gate_overhead")
        .field_u64("gates", gates)
        .field_f64("per_gate_ns", per_gate_ns)
        .field_u64("run_best_ns", disabled.best().as_nanos() as u64)
        .field_f64("overhead_pct", overhead_pct);
    report.push_raw(row.finish());

    report.write_or_warn();

    assert_eq!(
        json_off, json_on,
        "enabling telemetry changed analysis output"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-path telemetry overhead {overhead_pct:.4}% exceeds the 2% budget"
    );
    println!("telemetry overhead gate: OK ({overhead_pct:.4}% < 2%)");
}
