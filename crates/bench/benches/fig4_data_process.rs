//! Regenerates and times **Figure 4 — data references by process**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::figure_bench;
use agave_core::FigureTable;

fn main() {
    let (mut group, experiments) = figure_bench(
        "fig4_data_process",
        "Figure 4 — data references by process",
        |ex| ex.figure4().render(),
    );
    let runs = experiments.results().all();
    group.bench("assemble figure from 25 summaries", 10, || {
        FigureTable::figure4(&runs, 9)
    });
}
