//! Regenerates and times **Figure 4 — data references by process**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::{representative, shared_experiments};
use agave_core::{run_workload, FigureTable, SuiteConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let experiments = shared_experiments();
    println!("\n==== Figure 4 — data references by process ====");
    println!("{}", experiments.figure4().render());

    let mut group = c.benchmark_group("fig4_data_process");
    group.sample_size(10);
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench_function(format!("run {workload}"), |b| {
            b.iter(|| black_box(run_workload(workload, &config)))
        });
    }
    let runs = experiments.results().all();
    group.bench_function("assemble figure from 25 summaries", |b| {
        b.iter(|| black_box(FigureTable::figure4(&runs, 9)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
