//! Regenerates and times **Figure 4 — data references by process**.
//!
//! The bench first prints the artifact (paper reproduction), then times
//! the simulation runs that feed it plus the figure assembly itself.

use agave_bench::{representative, shared_experiments, Group};
use agave_core::{run_workload, FigureTable, SuiteConfig};

fn main() {
    let experiments = shared_experiments();
    println!("\n==== Figure 4 — data references by process ====");
    println!("{}", experiments.figure4().render());

    let mut group = Group::new("fig4_data_process");
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench(&format!("run {workload}"), 10, || {
            run_workload(workload, &config)
        });
    }
    let runs = experiments.results().all();
    group.bench("assemble figure from 25 summaries", 10, || {
        FigureTable::figure4(&runs, 9)
    });
}
