//! Cache-subsystem microbenchmarks: raw `SetAssocCache` access rate and
//! the end-to-end cost of attaching a `MemoryHierarchy` sink to a run.
//!
//! The hierarchy observes every classified reference, so its overhead is
//! the price of producing the cache characterization — this bench keeps
//! that price visible.

use agave_bench::Group;
use agave_cache::{HierarchyGeometry, Level, SetAssocCache};
use agave_core::{run_workload, run_workload_with_cache, AppId, SuiteConfig, Workload};

fn main() {
    let mut group = Group::new("cache_throughput");
    let geometry = HierarchyGeometry::cortex_a9();

    // Raw model throughput: a mostly-hitting strided walk over 64 KiB.
    let mut l1 = SetAssocCache::new(geometry.l1d);
    group.bench("4M strided accesses through L1D model", 10, || {
        let mut hits = 0u64;
        for i in 0..4_000_000u64 {
            hits += u64::from(l1.access((i * 16) & 0xFFFF));
        }
        hits
    });

    // End-to-end: the same workload bare vs with the hierarchy attached.
    let config = SuiteConfig::quick();
    let workload = Workload::Agave(AppId::CountdownMain);
    group.bench("countdown.main, no sink", 10, || {
        run_workload(workload, &config)
    });
    group.bench("countdown.main + cortex-a9 hierarchy", 10, || {
        run_workload_with_cache(workload, &config, geometry)
    });

    let report = run_workload_with_cache(workload, &config, geometry);
    println!(
        "sanity: L1I {:.2}% miss over {} accesses",
        report.l1i_miss_rate() * 100.0,
        report.total(Level::L1i).accesses()
    );
}
