//! `agave-serve` under load, with a machine-readable `BENCH_serve.json`
//! report (path overridable via `AGAVE_BENCH_JSON`) for CI artifact
//! upload.
//!
//! Four phases, each asserting the server's contracts while timing it:
//!
//! * `analyze_fanout` — 200 concurrent clients each fire repeated
//!   summary analyses; every response must be **byte-identical** to
//!   local replay of the same trace.
//! * `upload_fanout` — 100 concurrent clients upload distinct sessions;
//!   all must land, validated, in the registry.
//! * `backpressure` — a deliberately tiny server (one slow worker, two
//!   queue slots) against 64 concurrent clients: the server must shed
//!   load with RETRY (bounded memory), yet every client must eventually
//!   succeed through the retry path.
//! * `sketch_bounds` — a synthetic trace with known exact per-region
//!   totals is uploaded and sketched; the served report must match the
//!   local sketch byte-for-byte and every estimate must respect the
//!   documented space-saving error bounds.
//! * `stats_overhead` — serial ping batches against servers with
//!   request tracing on vs off; the measured per-request tracing cost
//!   must stay under the telemetry-overhead budget (2%).

use agave_bench::{Group, HotpathReport};
use agave_core::{record, AppId, SuiteConfig, Workload};
use agave_replay::TraceWriter;
use agave_serve::{Analysis, Client, ServeConfig, Server, SketchSink};
use agave_trace::{json, RefKind, SharedSink, Tracer, XorShift64};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::time::Instant;

const ANALYZE_CLIENTS: usize = 200;
const ANALYZE_REQUESTS_EACH: usize = 3;
const UPLOAD_CLIENTS: usize = 100;
const PRESSURE_CLIENTS: usize = 64;

fn main() {
    let dir = std::env::temp_dir().join(format!("agave-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let mut group = Group::new("serve_load");
    let mut report = HotpathReport::named("serve");

    let trace = dir.join("gallery.agtrace");
    let stats = record::record_workload(
        Workload::Agave(AppId::GalleryMp4View),
        &SuiteConfig::quick(),
        &trace,
    )
    .expect("record");
    let expected = record::replay_trace_summary(&trace, 1)
        .expect("local replay")
        .to_json();

    analyze_fanout(&mut group, &mut report, &trace, &expected, stats.records);
    upload_fanout(&mut report, &trace);
    backpressure(&mut report, &trace);
    sketch_bounds(&mut group, &mut report, &dir);
    stats_overhead(&mut report);

    println!();
    report.write_or_warn();
    std::fs::remove_dir_all(&dir).ok();
}

/// 200 concurrent clients, each firing summary analyses; every response
/// byte-identical to the locally replayed JSON.
fn analyze_fanout(
    group: &mut Group,
    report: &mut HotpathReport,
    trace: &Path,
    expected: &str,
    records: u64,
) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 0,
        queue_cap: ANALYZE_CLIENTS,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let (stats, sample, total) = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        Client::new(addr.clone())
            .upload("shared", trace)
            .expect("upload");
        let total = (ANALYZE_CLIENTS * ANALYZE_REQUESTS_EACH) as u64;
        let sample = group.bench(
            &format!("{ANALYZE_CLIENTS} clients x {ANALYZE_REQUESTS_EACH} summary analyses"),
            3,
            || {
                std::thread::scope(|clients| {
                    for _ in 0..ANALYZE_CLIENTS {
                        let addr = addr.clone();
                        clients.spawn(move || {
                            let client = Client::new(addr);
                            for _ in 0..ANALYZE_REQUESTS_EACH {
                                let served = client
                                    .analyze("shared", &Analysis::Summary)
                                    .expect("analyze");
                                assert_eq!(served, expected, "served summary diverged under load");
                            }
                        });
                    }
                });
            },
        );
        Client::new(addr.clone()).shutdown().expect("shutdown");
        (daemon.join().expect("daemon"), sample, total)
    });
    assert_eq!(stats.errors, 0, "no request may fail under analyze load");
    println!(
        "analyze fan-out: {:.0} requests/s · {:.1} Mrefs/s served · {} rejects absorbed",
        total as f64 / sample.best().as_secs_f64(),
        sample.rate(total * records) / 1e6,
        stats.rejects
    );
    let mut obj = json::Object::new();
    obj.field_str("path", "analyze_fanout")
        .field_u64("clients", ANALYZE_CLIENTS as u64)
        .field_u64("requests", total)
        .field_u64("best_ns", sample.best().as_nanos() as u64)
        .field_u64("mean_ns", sample.mean().as_nanos() as u64)
        .field_f64(
            "requests_per_sec",
            total as f64 / sample.best().as_secs_f64(),
        )
        .field_u64("rejects", stats.rejects);
    report.push_raw(obj.finish());
}

/// 100 concurrent clients uploading distinct sessions.
fn upload_fanout(report: &mut HotpathReport, trace: &Path) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 0,
        queue_cap: UPLOAD_CLIENTS,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let file_bytes = std::fs::metadata(trace).expect("trace metadata").len();
    let (stats, elapsed) = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        let started = Instant::now();
        std::thread::scope(|clients| {
            for i in 0..UPLOAD_CLIENTS {
                let addr = addr.clone();
                clients.spawn(move || {
                    Client::new(addr)
                        .upload(&format!("tenant-{i:03}"), trace)
                        .expect("upload");
                });
            }
        });
        let elapsed = started.elapsed();
        let client = Client::new(addr.clone());
        assert_eq!(client.list().expect("list").len(), UPLOAD_CLIENTS);
        client.shutdown().expect("shutdown");
        (daemon.join().expect("daemon"), elapsed)
    });
    assert_eq!(stats.uploads, UPLOAD_CLIENTS as u64);
    assert_eq!(stats.bytes_ingested, file_bytes * UPLOAD_CLIENTS as u64);
    let mb_s = stats.bytes_ingested as f64 / 1e6 / elapsed.as_secs_f64();
    println!(
        "serve_load/{} concurrent uploads: {} x {} bytes in {:?} · {:.0} MB/s ingested · {} rejects absorbed",
        UPLOAD_CLIENTS,
        stats.uploads,
        file_bytes,
        elapsed,
        mb_s,
        stats.rejects
    );
    let mut obj = json::Object::new();
    obj.field_str("path", "upload_fanout")
        .field_u64("clients", UPLOAD_CLIENTS as u64)
        .field_u64("bytes_ingested", stats.bytes_ingested)
        .field_u64("elapsed_ns", elapsed.as_nanos() as u64)
        .field_f64("ingest_mb_per_sec", mb_s)
        .field_u64("rejects", stats.rejects);
    report.push_raw(obj.finish());
}

/// A tiny saturated server must reject with RETRY — never buffer without
/// bound — while every client still completes through the retry path.
fn backpressure(report: &mut HotpathReport, trace: &Path) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 1,
        queue_cap: 2,
        retry_after_ms: 2,
        handle_delay_ms: 5,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let started = Instant::now();
    let stats = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        std::thread::scope(|clients| {
            for i in 0..PRESSURE_CLIENTS {
                let addr = addr.clone();
                clients.spawn(move || {
                    let mut client = Client::new(addr);
                    client.max_retries = 2000;
                    client
                        .upload(&format!("pressed-{i:02}"), trace)
                        .expect("upload under pressure");
                });
            }
        });
        let client = Client::new(addr.clone());
        assert_eq!(client.list().expect("list").len(), PRESSURE_CLIENTS);
        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon")
    });
    let elapsed = started.elapsed();
    assert!(
        stats.rejects > 0,
        "{PRESSURE_CLIENTS} clients against a 2-slot queue must be shed"
    );
    assert_eq!(
        stats.uploads, PRESSURE_CLIENTS as u64,
        "every client must recover"
    );
    println!(
        "serve_load/backpressure: {} clients vs 2-slot queue: {} rejects, all {} uploads landed in {:?}",
        PRESSURE_CLIENTS,
        stats.rejects,
        stats.uploads,
        elapsed
    );
    let mut obj = json::Object::new();
    obj.field_str("path", "backpressure")
        .field_u64("clients", PRESSURE_CLIENTS as u64)
        .field_u64("queue_cap", 2)
        .field_u64("rejects", stats.rejects)
        .field_u64("uploads", stats.uploads)
        .field_u64("elapsed_ns", elapsed.as_nanos() as u64);
    report.push_raw(obj.finish());
}

/// Generates a skewed synthetic trace with exact per-region totals,
/// then checks the served sketch against both the local sketch (byte
/// identity) and the exact counts (error bounds).
fn sketch_bounds(group: &mut Group, report: &mut HotpathReport, dir: &Path) {
    let (path, exact) = synthetic_trace(dir);
    let total: u64 = exact.values().sum();

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let (served, sample) = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        let client = Client::new(addr.clone());
        client.upload("synthetic", &path).expect("upload");
        let sample = group.bench("sketch analysis of synthetic trace", 3, || {
            client
                .analyze("synthetic", &Analysis::Sketch)
                .expect("sketch")
        });
        let served = client
            .analyze("synthetic", &Analysis::Sketch)
            .expect("sketch");
        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon");
        (served, sample)
    });

    // Byte identity: the served sketch is exactly the local one.
    let buf = agave_replay::TraceBuffer::open(&path).expect("open");
    let sink = Rc::new(RefCell::new(SketchSink::new(SketchSink::DEFAULT_CAPACITY)));
    let outcome = buf
        .replay(&[sink.clone() as SharedSink], 0)
        .expect("replay");
    let local = sink.borrow().report(&outcome.label, &outcome.directory);
    assert_eq!(served, local.to_json(), "served sketch diverged from local");

    // Error bounds against the exact totals tracked at generation time.
    assert_eq!(local.words, total, "word totals are exact counters");
    let bound = local.error_bound;
    for h in &local.heavy {
        let truth = exact.get(h.region.as_str()).copied().unwrap_or(0);
        assert!(h.words >= truth, "{}: estimate below truth", h.region);
        assert!(
            h.words - h.err <= truth,
            "{}: lower bound violated",
            h.region
        );
        assert!(h.err <= bound, "{}: error beyond W/k", h.region);
    }
    let tracked: Vec<&str> = local.heavy.iter().map(|h| h.region.as_str()).collect();
    for (region, &w) in &exact {
        if w > bound {
            assert!(tracked.contains(region), "heavy region {region} missing");
        }
    }
    println!(
        "sketch: {} words over {} regions, capacity {} · bound {} · all estimates within bounds",
        total,
        exact.len(),
        local.capacity,
        bound
    );
    report.record("sketch_synthetic", local.records, &sample);
}

const OVERHEAD_PINGS: usize = 500;
const OVERHEAD_TRIALS: usize = 7;
const OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Per-request tracing cost: serial ping batches against a traced and
/// an untraced server. Ping is the cheapest verb, so tracing cost is
/// largest relative to it — this is an upper bound for real verbs.
/// Best-of across trials because scheduling noise only adds time.
fn stats_overhead(report: &mut HotpathReport) {
    let ping_batch = |tracing: bool| -> f64 {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            jobs: 1,
            trace_requests: tracing,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| server.run());
            let client = Client::new(addr.clone());
            client.ping().expect("warmup ping");
            let mut best = f64::INFINITY;
            for _ in 0..OVERHEAD_TRIALS {
                let started = Instant::now();
                for _ in 0..OVERHEAD_PINGS {
                    client.ping().expect("ping");
                }
                best = best.min(started.elapsed().as_secs_f64());
            }
            client.shutdown().expect("shutdown");
            daemon.join().expect("daemon");
            best
        })
    };
    let traced = ping_batch(true);
    let untraced = ping_batch(false);
    let overhead_pct = (traced - untraced) / untraced * 100.0;
    println!(
        "serve_load/stats_overhead: {OVERHEAD_PINGS} pings · traced {:.3} ms vs untraced {:.3} ms · {overhead_pct:+.2}% overhead",
        traced * 1e3,
        untraced * 1e3,
    );
    assert!(
        overhead_pct < OVERHEAD_BUDGET_PCT,
        "per-request tracing overhead {overhead_pct:.2}% exceeds the {OVERHEAD_BUDGET_PCT}% budget"
    );
    let mut obj = json::Object::new();
    obj.field_str("path", "stats_overhead")
        .field_u64("pings", OVERHEAD_PINGS as u64)
        .field_u64("traced_best_ns", (traced * 1e9) as u64)
        .field_u64("untraced_best_ns", (untraced * 1e9) as u64)
        .field_f64("overhead_pct", overhead_pct)
        .field_f64("budget_pct", OVERHEAD_BUDGET_PCT);
    report.push_raw(obj.finish());
}

/// A skewed synthetic trace (160 regions, ~400k records) plus its exact
/// per-region word totals.
fn synthetic_trace(dir: &Path) -> (PathBuf, BTreeMap<&'static str, u64>) {
    const REGIONS: usize = 160;
    let names: Vec<String> = (0..REGIONS).map(|i| format!("lib{i:03}.so")).collect();
    let leaked: Vec<&'static str> = names
        .into_iter()
        .map(|n| Box::leak(n.into_boxed_str()) as &'static str)
        .collect();

    let path = dir.join("synthetic.agtrace");
    let mut t = Tracer::new();
    let pid = t.register_process("synthetic");
    let tid = t.register_thread(pid, "gen");
    let ids: Vec<_> = leaked.iter().map(|n| t.intern_region(n)).collect();
    let baseline = t.counter_snapshot();
    let writer = Rc::new(RefCell::new(
        TraceWriter::create(&path, "synthetic").unwrap(),
    ));
    t.add_sink(writer.clone() as SharedSink);

    let mut exact: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut rng = XorShift64::new(0x5e12e);
    for _ in 0..400_000u64 {
        // Quadratic skew: low-index regions dominate.
        let r = (rng.below(REGIONS as u64) * rng.below(REGIONS as u64) / REGIONS as u64) as usize;
        let words = 1 + rng.below(9);
        let addr = rng.below(1 << 32);
        t.charge_at(pid, tid, ids[r], RefKind::DataRead, addr, words);
        *exact.entry(leaked[r]).or_default() += words;
    }
    t.flush_sinks();
    writer
        .borrow_mut()
        .finish(&t.name_directory(), &baseline)
        .unwrap();
    (path, exact)
}
