//! Shared helpers for the Criterion benches that regenerate the paper's
//! figures and table.
//!
//! Each bench target corresponds to one evaluation artifact:
//!
//! | target | artifact |
//! |--------|----------|
//! | `fig1_instr_regions` | Figure 1 — instruction references by VMA region |
//! | `fig2_data_regions`  | Figure 2 — data references by VMA region |
//! | `fig3_instr_process` | Figure 3 — instruction references by process |
//! | `fig4_data_process`  | Figure 4 — data references by process |
//! | `table1_threads`     | Table I — thread ranking |
//! | `sim_throughput`     | simulator-level microbenchmarks |
//!
//! Running `cargo bench -p agave-bench --bench fig1_instr_regions` first
//! prints the regenerated artifact (so the bench run doubles as the
//! reproduction), then times the workloads feeding it.

#![forbid(unsafe_code)]

use agave_core::{Experiments, SuiteConfig};
use std::sync::OnceLock;

/// One shared quick-suite run reused by all figure benches in a process.
pub fn shared_experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::from_config(&SuiteConfig::quick()))
}

/// Representative workloads timed by every figure bench: one
/// graphics-heavy app, one media app, one SPEC baseline.
pub fn representative() -> [agave_core::Workload; 3] {
    use agave_core::{AppId, SpecProgram, Workload};
    [
        Workload::Agave(AppId::FrozenbubbleMain),
        Workload::Agave(AppId::GalleryMp4View),
        Workload::Spec(SpecProgram::Mcf),
    ]
}
