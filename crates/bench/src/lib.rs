//! Shared helpers for the bench targets that regenerate the paper's
//! figures and table, plus a minimal in-tree timing harness (no external
//! bench framework, so the workspace builds with zero network access).
//!
//! Each bench target corresponds to one evaluation artifact:
//!
//! | target | artifact |
//! |--------|----------|
//! | `fig1_instr_regions` | Figure 1 — instruction references by VMA region |
//! | `fig2_data_regions`  | Figure 2 — data references by VMA region |
//! | `fig3_instr_process` | Figure 3 — instruction references by process |
//! | `fig4_data_process`  | Figure 4 — data references by process |
//! | `table1_threads`     | Table I — thread ranking |
//! | `sim_throughput`     | simulator-level microbenchmarks |
//! | `cache_throughput`   | `agave-cache` hierarchy simulation overhead |
//! | `suite_parallel`     | `run_suite_parallel` speedup vs the serial path |
//!
//! Running `cargo bench -p agave-bench --bench fig1_instr_regions` first
//! prints the regenerated artifact (so the bench run doubles as the
//! reproduction), then times the workloads feeding it.

#![forbid(unsafe_code)]

use agave_core::{Experiments, SuiteConfig};
use agave_registry::harness;
use std::sync::OnceLock;
use std::time::Duration;

/// The host fingerprint shared by every bench target: CPU count, OS,
/// arch, and build profile, probed once. Benches that gate on
/// parallel speedups read `fingerprint().cpus` instead of re-probing
/// `available_parallelism` themselves, so the gate condition and the
/// recorded environment can never disagree.
pub fn fingerprint() -> &'static agave_registry::HostFingerprint {
    static CELL: OnceLock<agave_registry::HostFingerprint> = OnceLock::new();
    CELL.get_or_init(agave_registry::HostFingerprint::detect)
}

/// One shared quick-suite run reused by all figure benches in a process.
pub fn shared_experiments() -> &'static Experiments {
    static CELL: OnceLock<Experiments> = OnceLock::new();
    CELL.get_or_init(|| Experiments::from_config(&SuiteConfig::quick()))
}

/// Representative workloads timed by every figure bench: one
/// graphics-heavy app, one media app, one SPEC baseline.
pub fn representative() -> [agave_core::Workload; 3] {
    use agave_core::{AppId, SpecProgram, Workload};
    [
        Workload::Agave(AppId::FrozenbubbleMain),
        Workload::Agave(AppId::GalleryMp4View),
        Workload::Spec(SpecProgram::Mcf),
    ]
}

/// The shared opening of every figure/table bench target: print the
/// regenerated artifact (so the bench run doubles as the reproduction),
/// then time the representative workloads feeding it.
///
/// Returns the open [`Group`] (for the target's artifact-specific
/// assembly timing) and the shared quick-suite [`Experiments`].
pub fn figure_bench(
    name: &str,
    banner: &str,
    artifact: impl FnOnce(&Experiments) -> String,
) -> (Group, &'static Experiments) {
    let experiments = shared_experiments();
    println!("\n==== {banner} ====");
    println!("{}", artifact(experiments));

    let mut group = Group::new(name);
    let config = SuiteConfig::quick();
    for workload in representative() {
        group.bench(&format!("run {workload}"), 10, || {
            agave_core::run_workload(workload, &config)
        });
    }
    (group, experiments)
}

/// A minimal fixed-sample timing harness.
///
/// Each call to [`Group::bench`] runs the closure once for warmup, then
/// `samples` timed iterations through the registry's shared timing loop
/// ([`agave_registry::harness::time_trials`] — the same one `agave
/// bench run` uses), and prints the best, median, and MAD wall time —
/// enough to catch engine-level performance regressions without an
/// external bench framework.
#[derive(Debug)]
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a named group (prints its header).
    pub fn new(name: &str) -> Self {
        println!("\n-- bench group: {name}");
        Group {
            name: name.to_owned(),
        }
    }

    /// Times `f` over `samples` iterations, prints one summary line, and
    /// returns the measurement for machine-readable reporting.
    pub fn bench<R>(&mut self, label: &str, samples: u32, f: impl FnMut() -> R) -> Sample {
        let stats = harness::time_trials(1, samples, f);
        println!(
            "{:<56} best {:>12?}  median {:>12?} ±{:?}  ({} samples)",
            format!("{}/{label}", self.name),
            stats.best,
            stats.median,
            stats.mad,
            stats.samples
        );
        Sample {
            label: label.to_owned(),
            stats,
        }
    }
}

/// One [`Group::bench`] measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The bench line's label.
    pub label: String,
    /// Robust summary of the timed samples (best / mean / median / MAD).
    pub stats: harness::TrialStats,
}

impl Sample {
    /// Fastest sample.
    pub fn best(&self) -> Duration {
        self.stats.best
    }

    /// Mean over all samples.
    pub fn mean(&self) -> Duration {
        self.stats.mean
    }

    /// Median sample.
    pub fn median(&self) -> Duration {
        self.stats.median
    }

    /// Events-per-second implied by the best sample for `events` events
    /// per iteration.
    pub fn rate(&self, events: u64) -> f64 {
        events as f64 / self.stats.best.as_secs_f64()
    }
}

/// The `BENCH_*.json` document schema version, bumped when field
/// meanings change. Emitted by every report that goes through
/// [`write_bench_json`].
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The single `BENCH_*.json` emission point: writes `json` (one
/// document, newline-terminated) to `AGAVE_BENCH_JSON` if set, else
/// `BENCH_<suite>.json`, and returns the path written. Every bench
/// target's machine-readable output goes through here so CI artifact
/// globs and schema versioning stay in one place.
pub fn write_bench_json(suite: &str, json: &str) -> std::io::Result<String> {
    let path = std::env::var("AGAVE_BENCH_JSON").unwrap_or_else(|_| format!("BENCH_{suite}.json"));
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

/// A machine-readable throughput report, written as `BENCH_<suite>.json`
/// by its bench target (path overridable via `AGAVE_BENCH_JSON`) and
/// uploaded as a CI artifact. The `hotpath` and `replay_throughput`
/// targets both use this shape.
#[derive(Debug)]
pub struct HotpathReport {
    suite: String,
    lines: Vec<String>,
}

impl HotpathReport {
    /// An empty report for the `hotpath` suite.
    pub fn new() -> Self {
        Self::named("hotpath")
    }

    /// An empty report for a named suite; [`HotpathReport::write`] puts
    /// it at `BENCH_<suite>.json`.
    pub fn named(suite: &str) -> Self {
        HotpathReport {
            suite: suite.to_owned(),
            lines: Vec::new(),
        }
    }

    /// Appends one pre-rendered JSON object to the `paths` array — for
    /// rows carrying suite-specific fields beyond what
    /// [`HotpathReport::record`] emits.
    pub fn push_raw(&mut self, json_object: String) {
        self.lines.push(json_object);
    }

    /// Records one measured path: `refs` references replayed per
    /// iteration, timed by `sample`.
    pub fn record(&mut self, path: &str, refs: u64, sample: &Sample) {
        let mut obj = agave_trace::json::Object::new();
        obj.field_str("path", path)
            .field_u64("references", refs)
            .field_u64("best_ns", sample.stats.best.as_nanos() as u64)
            .field_u64("mean_ns", sample.stats.mean.as_nanos() as u64)
            .field_u64("median_ns", sample.stats.median.as_nanos() as u64)
            .field_u64("mad_ns", sample.stats.mad.as_nanos() as u64)
            .field_f64("refs_per_sec", sample.rate(refs));
        self.lines.push(obj.finish());
    }

    /// Renders the report as a JSON document. The envelope (schema
    /// version, time, commit, host fingerprint) is stamped by
    /// [`agave_registry::record::stamp`] — the same envelope
    /// `bench_history.jsonl` records carry, so standalone bench reports
    /// and `agave bench run` output stay schema-identical.
    pub fn to_json(&self) -> String {
        let mut obj = agave_trace::json::Object::new();
        agave_registry::record::stamp(&mut obj, BENCH_SCHEMA_VERSION);
        obj.field_str("suite", &self.suite).field_raw(
            "paths",
            &agave_trace::json::array(self.lines.iter().cloned()),
        );
        obj.finish()
    }

    /// Writes the report via [`write_bench_json`] and returns the path
    /// written.
    pub fn write(&self) -> std::io::Result<String> {
        write_bench_json(&self.suite, &self.to_json())
    }

    /// Writes the report, printing the path on success and a warning on
    /// failure — the shared tail of every standalone bench target (a
    /// bench run is still useful even when the report can't land).
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => println!("wrote {path}"),
            Err(err) => eprintln!("could not write {} report: {err}", self.suite),
        }
    }
}

impl Default for HotpathReport {
    fn default() -> Self {
        Self::new()
    }
}
