//! The full memory hierarchy: a [`ReferenceSink`] that replays the
//! classified reference stream through split L1s, a unified L2 and
//! split TLBs, accounting hits and misses per (process, region, level).

use crate::geometry::HierarchyGeometry;
use crate::model::SetAssocCache;
use crate::report::{CacheReport, LevelStats, RegionRow};
use agave_trace::{NameDirectory, NameId, Pid, Reference, ReferenceSink};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Sentinel for "no page touched yet" — unreachable as a real page
/// number since pages are addresses shifted right by the page bits.
const NO_PAGE: u64 = u64::MAX;

/// A level of the modeled hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// L1 instruction cache.
    L1i,
    /// L1 data cache.
    L1d,
    /// Unified second-level cache.
    L2,
    /// Instruction TLB.
    Itlb,
    /// Data TLB.
    Dtlb,
}

impl Level {
    /// All levels, in report order.
    pub const ALL: [Level; 5] = [Level::L1i, Level::L1d, Level::L2, Level::Itlb, Level::Dtlb];

    /// Compact dense index (0..5).
    pub fn index(self) -> usize {
        match self {
            Level::L1i => 0,
            Level::L1d => 1,
            Level::L2 => 2,
            Level::Itlb => 3,
            Level::Dtlb => 4,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Level::L1i => "L1I",
            Level::L1d => "L1D",
            Level::L2 => "L2",
            Level::Itlb => "ITLB",
            Level::Dtlb => "DTLB",
        }
    }
}

/// The hierarchy simulator.
///
/// Accounting model, applied line by line within each reference block:
/// every word access goes to the appropriate L1; a missing line costs one
/// L1 miss (the remaining words of that line then hit) and one L2
/// access, which hits or misses in turn. Each line touched also costs
/// one TLB lookup on the matching side. This charges long sequential
/// runs realistically — one miss per line, not per word — while staying
/// exact for the LRU state.
///
/// A per-side last-line memo short-circuits the common case of a block
/// that stays inside the previously touched cache line (the synthetic
/// 8/16 KiB window streams do this constantly): that line is by
/// construction the MRU line of its L1 set and its page the MRU TLB
/// entry, so the block is counted as pure hits without touching any set —
/// and since re-touching the MRU entry cannot change any LRU ordering,
/// the recency state stays *exactly* what the full walk would produce.
///
/// Register it on a tracer (via `Rc<RefCell<…>>`, see
/// [`agave_trace::SharedSink`]) and pull a [`CacheReport`] afterwards.
#[derive(Debug)]
pub struct MemoryHierarchy {
    geometry: HierarchyGeometry,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    itlb: SetAssocCache,
    dtlb: SetAssocCache,
    /// Per-side ([instr, data]) L1 line last touched, for the memo path.
    last_line: [Option<u64>; 2],
    /// Per-side page last touched (`NO_PAGE` when cold): the MRU entry of
    /// that side's TLB, letting the walk skip the TLB model for runs of
    /// lines inside one page.
    last_page: [u64; 2],
    /// Row index into `stat_rows` per (process, region).
    stats: HashMap<(Pid, NameId), usize>,
    /// Flat hit/miss counters, one `[LevelStats; 5]` row per pair.
    stat_rows: Vec<[LevelStats; 5]>,
    /// One-entry cache over `stats` for runs of same-pair blocks.
    last_stat: Option<(Pid, NameId, usize)>,
    totals: [LevelStats; 5],
}

impl MemoryHierarchy {
    /// Creates a cold hierarchy with the given geometry.
    pub fn new(geometry: HierarchyGeometry) -> Self {
        geometry.validate();
        MemoryHierarchy {
            geometry,
            l1i: SetAssocCache::new(geometry.l1i),
            l1d: SetAssocCache::new(geometry.l1d),
            l2: SetAssocCache::new(geometry.l2),
            itlb: SetAssocCache::tlb(geometry.itlb),
            dtlb: SetAssocCache::tlb(geometry.dtlb),
            last_line: [None; 2],
            last_page: [NO_PAGE; 2],
            stats: HashMap::new(),
            stat_rows: Vec::new(),
            last_stat: None,
            totals: [LevelStats::default(); 5],
        }
    }

    /// Resolves (allocating if new) the stats row for `(pid, region)`.
    fn stat_slot(&mut self, pid: Pid, region: NameId) -> usize {
        let next = self.stat_rows.len();
        let idx = *self.stats.entry((pid, region)).or_insert(next);
        if idx == next {
            self.stat_rows.push([LevelStats::default(); 5]);
        }
        self.last_stat = Some((pid, region, idx));
        idx
    }

    /// The configured geometry.
    pub fn geometry(&self) -> HierarchyGeometry {
        self.geometry
    }

    /// Suite-wide hit/miss totals for one level.
    pub fn totals(&self, level: Level) -> LevelStats {
        self.totals[level.index()]
    }

    /// Distinct (process, region) pairs that issued references.
    pub fn tracked_pairs(&self) -> usize {
        self.stats.len()
    }

    /// Builds the post-run report, resolving ids through `dir`.
    ///
    /// Rows are aggregated per region name (processes summed), sorted by
    /// total L1 accesses descending; per-process totals ride along.
    pub fn report(&self, benchmark: &str, dir: &NameDirectory) -> CacheReport {
        let mut by_region: BTreeMap<String, [LevelStats; 5]> = BTreeMap::new();
        let mut by_process: BTreeMap<String, [LevelStats; 5]> = BTreeMap::new();
        for (&(pid, region), &row) in &self.stats {
            let stats = &self.stat_rows[row];
            let region_name = dir.region(region).to_owned();
            let proc_name = dir.process(pid).to_owned();
            for (level, s) in Level::ALL.iter().zip(stats) {
                by_region.entry(region_name.clone()).or_default()[level.index()].absorb(*s);
                by_process.entry(proc_name.clone()).or_default()[level.index()].absorb(*s);
            }
        }
        let mut regions: Vec<RegionRow> = by_region
            .into_iter()
            .map(|(name, levels)| RegionRow { name, levels })
            .collect();
        regions.sort_by(|a, b| {
            b.l1_accesses()
                .cmp(&a.l1_accesses())
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut processes: Vec<RegionRow> = by_process
            .into_iter()
            .map(|(name, levels)| RegionRow { name, levels })
            .collect();
        processes.sort_by(|a, b| {
            b.l1_accesses()
                .cmp(&a.l1_accesses())
                .then_with(|| a.name.cmp(&b.name))
        });
        CacheReport {
            benchmark: benchmark.to_owned(),
            preset: self.geometry.name.to_owned(),
            totals: self.totals,
            regions,
            processes,
        }
    }
}

/// One planned L1-line probe (the non-memo walk path).
#[derive(Debug, Clone, Copy)]
struct PlanOp {
    l1_line: u64,
    /// L2 line of the first byte this op touches — what
    /// `on_reference`'s `self.l2.access(addr)` would probe on a miss.
    l2_line: u64,
    words: u64,
}

/// One non-memo block: the row its probe outcomes charge and its ops.
#[derive(Debug, Clone, Copy)]
struct PlanWalk {
    row: u32,
    instr: bool,
    ops_start: u32,
    ops_len: u32,
}

/// A cell-independent counter increment, `(row, level) += (hits, misses)`.
#[derive(Debug, Clone, Copy)]
struct PlanAdd {
    row: u32,
    level: u8,
    hits: u64,
    misses: u64,
}

/// The shareable part of one batch's hierarchy walk.
///
/// Everything in [`MemoryHierarchy::on_reference`] except the L1 and L2
/// probes depends only on the reference stream and the geometry's
/// [`plan signature`](HierarchyGeometry::plan_signature) — line
/// splitting, TLB hit/miss accounting, the same-line memo decision, and
/// stat-row allocation are identical for every L1 size × associativity
/// at a fixed line size. A sweep therefore runs [`PlanBuilder`] once
/// per signature and each grid cell replays only its private probes via
/// [`MemoryHierarchy::apply_plan`], producing counters byte-identical
/// to a standalone walk of the same stream.
#[derive(Debug, Default)]
pub struct BatchPlan {
    /// `(pid, region)` pairs first seen in this batch, in allocation
    /// order; their row indices continue from `rows_before`.
    new_pairs: Vec<(Pid, NameId)>,
    rows_before: usize,
    /// TLB counts and memo-path L1 hits — identical for every cell.
    adds: Vec<PlanAdd>,
    walks: Vec<PlanWalk>,
    ops: Vec<PlanOp>,
}

impl BatchPlan {
    /// Appends a cell-independent increment, coalescing with the last
    /// entry when it targets the same `(row, level)` (streams charge
    /// long same-row runs, so this keeps `adds` tiny).
    fn add(&mut self, row: u32, level: Level, hits: u64, misses: u64) {
        let level = level.index() as u8;
        if let Some(last) = self.adds.last_mut() {
            if last.row == row && last.level == level {
                last.hits += hits;
                last.misses += misses;
                return;
            }
        }
        self.adds.push(PlanAdd {
            row,
            level,
            hits,
            misses,
        });
    }
}

/// The shared front half of a fan-out sweep's hierarchy walk — see
/// [`BatchPlan`]. Owns the TLB models, memos and stat-row directory that
/// `on_reference` would otherwise run per cell, and replays the stream
/// through them exactly once per batch.
#[derive(Debug)]
pub struct PlanBuilder {
    itlb: SetAssocCache,
    dtlb: SetAssocCache,
    l1i_shift: u32,
    l1d_shift: u32,
    l2_shift: u32,
    last_line: [Option<u64>; 2],
    last_page: [u64; 2],
    stats: HashMap<(Pid, NameId), usize>,
    rows: usize,
    last_stat: Option<(Pid, NameId, usize)>,
    plan: BatchPlan,
}

impl PlanBuilder {
    /// A cold plan builder for hierarchies sharing `geometry`'s
    /// [`plan signature`](HierarchyGeometry::plan_signature).
    pub fn new(geometry: HierarchyGeometry) -> Self {
        geometry.validate();
        PlanBuilder {
            itlb: SetAssocCache::tlb(geometry.itlb),
            dtlb: SetAssocCache::tlb(geometry.dtlb),
            l1i_shift: geometry.l1i.line_bytes.trailing_zeros(),
            l1d_shift: geometry.l1d.line_bytes.trailing_zeros(),
            l2_shift: geometry.l2.line_bytes.trailing_zeros(),
            last_line: [None; 2],
            last_page: [NO_PAGE; 2],
            stats: HashMap::new(),
            rows: 0,
            last_stat: None,
            plan: BatchPlan::default(),
        }
    }

    /// Plans one batch: the same walk as [`MemoryHierarchy::on_batch`],
    /// with each L1/L2 probe recorded instead of performed. Must see
    /// every batch of the stream, in order.
    pub fn plan(&mut self, batch: &[Reference]) -> &BatchPlan {
        self.plan.new_pairs.clear();
        self.plan.adds.clear();
        self.plan.walks.clear();
        self.plan.ops.clear();
        self.plan.rows_before = self.rows;
        for r in batch {
            if r.words == 0 {
                continue;
            }
            let instr = r.kind.is_instr();
            let side = usize::from(!instr);
            let (shift, tlb, tlb_level, l1_level) = if instr {
                (self.l1i_shift, &mut self.itlb, Level::Itlb, Level::L1i)
            } else {
                (self.l1d_shift, &mut self.dtlb, Level::Dtlb, Level::L1d)
            };
            let row = match self.last_stat {
                Some((pid, region, idx)) if pid == r.pid && region == r.region => idx,
                _ => {
                    let next = self.rows;
                    let idx = *self.stats.entry((r.pid, r.region)).or_insert(next);
                    if idx == next {
                        self.rows += 1;
                        self.plan.new_pairs.push((r.pid, r.region));
                    }
                    self.last_stat = Some((r.pid, r.region, idx));
                    idx
                }
            } as u32;
            let first_line = r.addr >> shift;
            let last_line = (r.addr + r.bytes() - 1) >> shift;
            if first_line == last_line && self.last_line[side] == Some(first_line) {
                // Memo fast path — all hits in every cell: the line was
                // each cell's most recent touch on this side, so it is
                // resident and MRU regardless of L1 size or ways.
                self.plan.add(row, tlb_level, 1, 0);
                self.plan.add(row, l1_level, r.words, 0);
                continue;
            }
            let mut tlb_hits = 0u64;
            let mut tlb_misses = 0u64;
            let ops_start = self.plan.ops.len();
            let page_shift = tlb.line_shift() - shift;
            let mut last_page = self.last_page[side];
            let mut addr = r.addr;
            let end = r.addr + r.bytes();
            let mut line = first_line;
            while line <= last_line {
                let page = line >> page_shift;
                let run_last = last_line.min(((page + 1) << page_shift) - 1);
                if page == last_page {
                    tlb_hits += run_last - line + 1;
                } else {
                    if tlb.access_line(page) {
                        tlb_hits += 1;
                    } else {
                        tlb_misses += 1;
                    }
                    tlb_hits += run_last - line;
                    last_page = page;
                }
                while line <= run_last {
                    let line_end = (line + 1) << shift;
                    let words_here = (end.min(line_end) - addr) >> 2;
                    self.plan.ops.push(PlanOp {
                        l1_line: line,
                        l2_line: addr >> self.l2_shift,
                        words: words_here,
                    });
                    addr = line_end;
                    line += 1;
                }
            }
            self.last_line[side] = Some(last_line);
            self.last_page[side] = last_page;
            self.plan.add(row, tlb_level, tlb_hits, tlb_misses);
            self.plan.walks.push(PlanWalk {
                row,
                instr,
                ops_start: ops_start as u32,
                ops_len: (self.plan.ops.len() - ops_start) as u32,
            });
        }
        &self.plan
    }
}

impl MemoryHierarchy {
    /// Replays one planned batch through this hierarchy's private L1s
    /// and L2 — the per-cell half of the sweep walk, byte-identical in
    /// effect to feeding the same batch through
    /// [`ReferenceSink::on_batch`]. The hierarchy must share the plan
    /// builder's geometry signature and must be driven exclusively by
    /// plans of the same builder, from cold, in stream order.
    pub fn apply_plan(&mut self, plan: &BatchPlan) {
        debug_assert_eq!(
            self.stat_rows.len(),
            plan.rows_before,
            "hierarchy fed a plan from a different stream position"
        );
        for &pair in &plan.new_pairs {
            let idx = self.stat_rows.len();
            self.stats.insert(pair, idx);
            self.stat_rows.push([LevelStats::default(); 5]);
        }
        for add in &plan.adds {
            let level = usize::from(add.level);
            let entry = &mut self.stat_rows[add.row as usize][level];
            entry.hits += add.hits;
            entry.misses += add.misses;
            self.totals[level].hits += add.hits;
            self.totals[level].misses += add.misses;
        }
        for walk in &plan.walks {
            let (l1, li) = if walk.instr {
                (&mut self.l1i, Level::L1i.index())
            } else {
                (&mut self.l1d, Level::L1d.index())
            };
            let mut l1_hits = 0u64;
            let mut l1_misses = 0u64;
            let mut l2_hits = 0u64;
            let mut l2_misses = 0u64;
            let ops = &plan.ops[walk.ops_start as usize..(walk.ops_start + walk.ops_len) as usize];
            for op in ops {
                if l1.access_line(op.l1_line) {
                    l1_hits += op.words;
                } else {
                    l1_misses += 1;
                    l1_hits += op.words - 1;
                    if self.l2.access_line(op.l2_line) {
                        l2_hits += 1;
                    } else {
                        l2_misses += 1;
                    }
                }
            }
            let entry = &mut self.stat_rows[walk.row as usize];
            entry[li].hits += l1_hits;
            entry[li].misses += l1_misses;
            self.totals[li].hits += l1_hits;
            self.totals[li].misses += l1_misses;
            if l1_misses > 0 {
                let l2 = Level::L2.index();
                entry[l2].hits += l2_hits;
                entry[l2].misses += l2_misses;
                self.totals[l2].hits += l2_hits;
                self.totals[l2].misses += l2_misses;
            }
        }
    }
}

impl ReferenceSink for MemoryHierarchy {
    fn on_reference(&mut self, r: &Reference) {
        if r.words == 0 {
            return;
        }
        let side = usize::from(!r.kind.is_instr());
        let (l1, tlb, tlb_level, l1_level) = if r.kind.is_instr() {
            (&mut self.l1i, &mut self.itlb, Level::Itlb, Level::L1i)
        } else {
            (&mut self.l1d, &mut self.dtlb, Level::Dtlb, Level::L1d)
        };
        // Scalar per-block deltas: a block touches at most three levels
        // (its side's TLB and L1, plus L2 on L1 misses), so six counters
        // beat zeroing and re-absorbing a full `[LevelStats; 5]`.
        let mut tlb_hits = 0u64;
        let mut tlb_misses = 0u64;
        let mut l1_hits = 0u64;
        let mut l1_misses = 0u64;
        let mut l2_hits = 0u64;
        let mut l2_misses = 0u64;
        let shift = l1.line_shift();
        let first_line = r.addr >> shift;
        let last_line = (r.addr + r.bytes() - 1) >> shift;
        if first_line == last_line && self.last_line[side] == Some(first_line) {
            // Memo fast path: the block stays inside the line this side
            // touched last, which is resident and MRU (and its page MRU
            // in the TLB) — all hits, no set or recency state to update.
            tlb_hits = 1;
            l1_hits = r.words;
        } else {
            // Lines per page, as a shift: the TLB "line" is the page.
            let page_shift = tlb.line_shift() - shift;
            let mut last_page = self.last_page[side];
            let mut addr = r.addr;
            let end = r.addr + r.bytes();
            let mut line = first_line;
            while line <= last_line {
                // One TLB resolution covers the whole run of lines inside
                // this page: after the first touch the page is the MRU TLB
                // entry (`last_page` memo), so every later line in the run
                // is a guaranteed hit that changes no LRU ordering — count
                // them in bulk instead of probing the model per line.
                let page = line >> page_shift;
                let run_last = last_line.min(((page + 1) << page_shift) - 1);
                if page == last_page {
                    tlb_hits += run_last - line + 1;
                } else {
                    if tlb.access_line(page) {
                        tlb_hits += 1;
                    } else {
                        tlb_misses += 1;
                    }
                    tlb_hits += run_last - line;
                    last_page = page;
                }
                while line <= run_last {
                    let line_end = (line + 1) << shift;
                    let words_here = (end.min(line_end) - addr) >> 2;
                    if l1.access_line(line) {
                        l1_hits += words_here;
                    } else {
                        l1_misses += 1;
                        l1_hits += words_here - 1;
                        if self.l2.access(addr) {
                            l2_hits += 1;
                        } else {
                            l2_misses += 1;
                        }
                    }
                    addr = line_end;
                    line += 1;
                }
            }
            self.last_line[side] = Some(last_line);
            self.last_page[side] = last_page;
        }
        let row = match self.last_stat {
            Some((pid, region, idx)) if pid == r.pid && region == r.region => idx,
            _ => self.stat_slot(r.pid, r.region),
        };
        let entry = &mut self.stat_rows[row];
        let ti = tlb_level.index();
        let li = l1_level.index();
        entry[ti].hits += tlb_hits;
        entry[ti].misses += tlb_misses;
        entry[li].hits += l1_hits;
        entry[li].misses += l1_misses;
        self.totals[ti].hits += tlb_hits;
        self.totals[ti].misses += tlb_misses;
        self.totals[li].hits += l1_hits;
        self.totals[li].misses += l1_misses;
        if l1_misses > 0 {
            let l2 = Level::L2.index();
            entry[l2].hits += l2_hits;
            entry[l2].misses += l2_misses;
            self.totals[l2].hits += l2_hits;
            self.totals[l2].misses += l2_misses;
        }
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        // One telemetry check per 1024-block batch; the per-reference
        // walk above stays untouched either way.
        if !agave_telemetry::enabled() {
            for r in batch {
                self.on_reference(r);
            }
            return;
        }
        use agave_telemetry::metrics::{Counter, Histogram};
        use std::sync::OnceLock;
        static WALK_NS: OnceLock<&'static Counter> = OnceLock::new();
        static WALK_BLOCKS: OnceLock<&'static Counter> = OnceLock::new();
        static BATCH_WALK_NS: OnceLock<&'static Histogram> = OnceLock::new();
        static BATCH_L1_MISSES: OnceLock<&'static Histogram> = OnceLock::new();
        let miss_before =
            self.totals[Level::L1i.index()].misses + self.totals[Level::L1d.index()].misses;
        let start = std::time::Instant::now();
        for r in batch {
            self.on_reference(r);
        }
        let ns = start.elapsed().as_nanos() as u64;
        let miss_after =
            self.totals[Level::L1i.index()].misses + self.totals[Level::L1d.index()].misses;
        WALK_NS
            .get_or_init(|| agave_telemetry::metrics::counter("cache.walk_ns"))
            .add(ns);
        WALK_BLOCKS
            .get_or_init(|| agave_telemetry::metrics::counter("cache.walk_blocks"))
            .add(batch.len() as u64);
        BATCH_WALK_NS
            .get_or_init(|| agave_telemetry::metrics::histogram("cache.batch_walk_ns"))
            .record(ns);
        BATCH_L1_MISSES
            .get_or_init(|| agave_telemetry::metrics::histogram("cache.batch_l1_misses"))
            .record(miss_after - miss_before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::{RefKind, SharedSink, Tracer};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn reference(tracer: &mut Tracer) -> (Pid, agave_trace::Tid, NameId) {
        let pid = tracer.register_process("p");
        let tid = tracer.register_thread(pid, "t");
        let region = tracer.intern_region("r");
        (pid, tid, region)
    }

    #[test]
    fn sequential_data_walk_misses_once_per_line() {
        let mut t = Tracer::new();
        let (pid, tid, region) = reference(&mut t);
        let sink = Rc::new(RefCell::new(
            MemoryHierarchy::new(HierarchyGeometry::tiny()),
        ));
        t.add_sink(sink.clone() as SharedSink);
        // 64 words = 256 bytes = 16 tiny (16 B) lines, cold cache.
        t.charge_at(pid, tid, region, RefKind::DataRead, 0x1000, 64);
        t.flush_sinks();
        let h = sink.borrow();
        let l1d = h.totals(Level::L1d);
        assert_eq!(l1d.misses, 16);
        assert_eq!(l1d.hits, 64 - 16);
        assert_eq!(h.totals(Level::L2).accesses(), 16);
        assert_eq!(h.totals(Level::L1i).accesses(), 0);
        // 256 bytes within one 4 KiB page: 16 TLB lookups, 1 miss.
        let dtlb = h.totals(Level::Dtlb);
        assert_eq!(dtlb.accesses(), 16);
        assert_eq!(dtlb.misses, 1);
    }

    #[test]
    fn repeated_walk_hits_after_warmup() {
        let mut t = Tracer::new();
        let (pid, tid, region) = reference(&mut t);
        let sink = Rc::new(RefCell::new(
            MemoryHierarchy::new(HierarchyGeometry::tiny()),
        ));
        t.add_sink(sink.clone() as SharedSink);
        // 256 bytes fits the 1 KiB tiny L1D; the second pass is all hits.
        for _ in 0..2 {
            t.charge_at(pid, tid, region, RefKind::DataRead, 0x1000, 64);
        }
        t.flush_sinks();
        let h = sink.borrow();
        assert_eq!(h.totals(Level::L1d).misses, 16); // first pass only
        assert_eq!(h.totals(Level::L1d).hits, 128 - 16);
    }

    #[test]
    fn instruction_and_data_sides_are_split() {
        let mut t = Tracer::new();
        let (pid, tid, region) = reference(&mut t);
        let sink = Rc::new(RefCell::new(
            MemoryHierarchy::new(HierarchyGeometry::tiny()),
        ));
        t.add_sink(sink.clone() as SharedSink);
        t.charge_at(pid, tid, region, RefKind::InstrFetch, 0x2000, 4);
        t.charge_at(pid, tid, region, RefKind::DataWrite, 0x2000, 4);
        t.flush_sinks();
        let h = sink.borrow();
        // Same address, but each side took its own compulsory miss.
        assert_eq!(h.totals(Level::L1i).misses, 1);
        assert_eq!(h.totals(Level::L1d).misses, 1);
        assert_eq!(h.totals(Level::Itlb).misses, 1);
        assert_eq!(h.totals(Level::Dtlb).misses, 1);
        // The unified L2 served the instruction miss, then hit for data.
        assert_eq!(h.totals(Level::L2).misses, 1);
        assert_eq!(h.totals(Level::L2).hits, 1);
    }

    #[test]
    fn determinism_same_stream_same_counts() {
        fn run() -> Vec<(Level, u64, u64)> {
            let mut t = Tracer::new();
            let pid = t.register_process("p");
            let tid = t.register_thread(pid, "t");
            let a = t.intern_region("a");
            let b = t.intern_region("b");
            let sink = Rc::new(RefCell::new(
                MemoryHierarchy::new(HierarchyGeometry::tiny()),
            ));
            t.add_sink(sink.clone() as SharedSink);
            for i in 0..50u64 {
                t.charge(pid, tid, a, RefKind::InstrFetch, 100 + i);
                t.charge(pid, tid, b, RefKind::DataRead, 37);
                t.charge_at(pid, tid, b, RefKind::DataWrite, 0x8000 + i * 24, 6);
            }
            t.flush_sinks();
            let h = sink.borrow();
            Level::ALL
                .iter()
                .map(|&l| (l, h.totals(l).hits, h.totals(l).misses))
                .collect()
        }
        assert_eq!(run(), run());
    }

    /// Plan-driven hierarchies must be observationally identical to
    /// stream-driven ones: same counters, same rows, same report — for
    /// any mix of L1 capacities and associativities sharing the plan
    /// signature, over a random batched stream.
    #[test]
    fn apply_plan_matches_direct_walk_for_shared_signature() {
        use crate::geometry::{CacheGeometry, TlbGeometry};
        let base = HierarchyGeometry::tiny();
        let l1 = |kib: u32, ways: u32| CacheGeometry {
            sets: kib * 1024 / (ways * base.l1i.line_bytes),
            ways,
            line_bytes: base.l1i.line_bytes,
        };
        // Three cells: tiny itself plus two that differ only in L1
        // capacity/ways (same line sizes and TLB shapes).
        let cells = [
            base,
            HierarchyGeometry {
                l1i: l1(4, 2),
                l1d: l1(4, 2),
                ..base
            },
            HierarchyGeometry {
                l1i: l1(8, 4),
                l1d: l1(8, 4),
                itlb: TlbGeometry {
                    entries: base.itlb.entries,
                    page_bytes: base.itlb.page_bytes,
                },
                ..base
            },
        ];
        assert!(cells
            .iter()
            .all(|c| c.plan_signature() == base.plan_signature()));

        let mut builder = PlanBuilder::new(base);
        let mut planned: Vec<MemoryHierarchy> =
            cells.iter().map(|&c| MemoryHierarchy::new(c)).collect();
        let mut direct: Vec<MemoryHierarchy> =
            cells.iter().map(|&c| MemoryHierarchy::new(c)).collect();

        let mut t = Tracer::new();
        let pid = t.register_process("p");
        let tid = t.register_thread(pid, "t");
        let regions = [t.intern_region("a"), t.intern_region("b")];
        let mut rng = agave_trace::XorShift64::new(0xF00D);
        let mut batch = Vec::new();
        let collect = Rc::new(RefCell::new(Vec::<Reference>::new()));
        struct Grab(Rc<RefCell<Vec<Reference>>>);
        impl ReferenceSink for Grab {
            fn on_reference(&mut self, r: &Reference) {
                self.0.borrow_mut().push(*r);
            }
        }
        t.add_sink(Rc::new(RefCell::new(Grab(collect.clone()))) as SharedSink);
        for step in 0..4000u64 {
            let kind = match step % 4 {
                0 => RefKind::InstrFetch,
                1 => RefKind::DataRead,
                _ => RefKind::DataWrite,
            };
            let region = regions[(step % 2) as usize];
            // Mix tight same-line runs (memo path), multi-line blocks,
            // and page-crossing jumps.
            // Word-aligned, like the simulator's per-word charges.
            let addr = match rng.below(8) {
                0 => rng.next_u64() >> 20,
                1..=3 => 0x1000 + rng.below(64),
                _ => 0x4_0000 + rng.below(16 * 1024),
            } & !3;
            t.charge_at(pid, tid, region, kind, addr, 1 + rng.below(40));
        }
        t.flush_sinks();
        for r in collect.borrow().iter() {
            batch.push(*r);
            if batch.len() == 256 {
                let plan = builder.plan(&batch);
                for h in &mut planned {
                    h.apply_plan(plan);
                }
                for h in &mut direct {
                    h.on_batch(&batch);
                }
                batch.clear();
            }
        }
        let plan = builder.plan(&batch);
        for h in &mut planned {
            h.apply_plan(plan);
        }
        for h in &mut direct {
            h.on_batch(&batch);
        }

        let dir = t.name_directory();
        for (p, d) in planned.iter().zip(&direct) {
            for level in Level::ALL {
                assert_eq!(
                    (p.totals(level).hits, p.totals(level).misses),
                    (d.totals(level).hits, d.totals(level).misses),
                    "{level:?} diverged for {}",
                    p.geometry().name
                );
            }
            assert_eq!(p.tracked_pairs(), d.tracked_pairs());
            let (pr, dr) = (p.report("x", &dir), d.report("x", &dir));
            assert_eq!(pr, dr);
            assert_eq!(pr.to_json(), dr.to_json());
        }
    }

    #[test]
    fn report_resolves_names_and_aggregates() {
        let mut t = Tracer::new();
        let pid = t.register_process("system_server");
        let tid = t.register_thread(pid, "main");
        let region = t.intern_region("libdvm.so");
        let sink = Rc::new(RefCell::new(
            MemoryHierarchy::new(HierarchyGeometry::tiny()),
        ));
        t.add_sink(sink.clone() as SharedSink);
        t.charge(pid, tid, region, RefKind::InstrFetch, 1000);
        t.flush_sinks();
        let dir = t.name_directory();
        let report = sink.borrow().report("demo", &dir);
        assert_eq!(report.benchmark, "demo");
        assert_eq!(report.preset, "tiny");
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].name, "libdvm.so");
        assert_eq!(report.processes[0].name, "system_server");
        let l1i = report.regions[0].levels[Level::L1i.index()];
        assert_eq!(l1i.accesses(), 1000);
        assert!(l1i.misses > 0);
    }
}
