//! Cache and TLB geometries, and the named hierarchy presets.

use std::fmt;

/// Geometry of one set-associative cache level.
///
/// All three parameters must be powers of two so set index and tag are
/// pure bit fields of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (lines per set); 1 = direct-mapped.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// Panics unless every parameter is a nonzero power of two.
    pub fn validate(&self) {
        for (what, v) in [
            ("sets", self.sets),
            ("ways", self.ways),
            ("line_bytes", self.line_bytes),
        ] {
            assert!(
                v.is_power_of_two(),
                "{what} must be a power of two, got {v}"
            );
        }
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity_bytes();
        if cap.is_multiple_of(1024) {
            write!(f, "{} KiB", cap / 1024)?;
        } else {
            write!(f, "{cap} B")?;
        }
        write!(f, " {}-way, {} B lines", self.ways, self.line_bytes)
    }
}

/// Geometry of a fully-associative TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u32,
}

impl TlbGeometry {
    /// Address span covered when every entry is live.
    pub fn reach_bytes(&self) -> u64 {
        u64::from(self.entries) * u64::from(self.page_bytes)
    }
}

impl fmt::Display for TlbGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries, {} KiB pages",
            self.entries,
            self.page_bytes / 1024
        )
    }
}

/// A full hierarchy configuration: split L1, unified L2, split TLBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyGeometry {
    /// Preset name (`"cortex-a9"`, `"tiny"`, …).
    pub name: &'static str,
    /// L1 instruction cache.
    pub l1i: CacheGeometry,
    /// L1 data cache.
    pub l1d: CacheGeometry,
    /// Unified second-level cache.
    pub l2: CacheGeometry,
    /// Instruction TLB.
    pub itlb: TlbGeometry,
    /// Data TLB.
    pub dtlb: TlbGeometry,
}

impl HierarchyGeometry {
    /// A Cortex-A9-class hierarchy, contemporary with the Gingerbread-era
    /// devices the paper models: 32 KiB 4-way split L1 with 32 B lines,
    /// 512 KiB 8-way unified L2, 32-entry split TLBs over 4 KiB pages.
    pub fn cortex_a9() -> Self {
        HierarchyGeometry {
            name: "cortex-a9",
            l1i: CacheGeometry {
                sets: 256,
                ways: 4,
                line_bytes: 32,
            },
            l1d: CacheGeometry {
                sets: 256,
                ways: 4,
                line_bytes: 32,
            },
            l2: CacheGeometry {
                sets: 2048,
                ways: 8,
                line_bytes: 32,
            },
            itlb: TlbGeometry {
                entries: 32,
                page_bytes: 4096,
            },
            dtlb: TlbGeometry {
                entries: 32,
                page_bytes: 4096,
            },
        }
    }

    /// A deliberately tiny hierarchy for fast, eviction-heavy tests:
    /// 1 KiB 2-way split L1 with 16 B lines, 8 KiB 4-way L2, 4-entry
    /// TLBs.
    pub fn tiny() -> Self {
        HierarchyGeometry {
            name: "tiny",
            l1i: CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 16,
            },
            l1d: CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 16,
            },
            l2: CacheGeometry {
                sets: 128,
                ways: 4,
                line_bytes: 16,
            },
            itlb: TlbGeometry {
                entries: 4,
                page_bytes: 4096,
            },
            dtlb: TlbGeometry {
                entries: 4,
                page_bytes: 4096,
            },
        }
    }

    /// Names of all built-in presets.
    pub const PRESET_NAMES: [&'static str; 2] = ["cortex-a9", "tiny"];

    /// Looks up a preset by name.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "cortex-a9" => Some(Self::cortex_a9()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }

    /// Panics unless every level's geometry is well-formed.
    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        assert!(self.itlb.page_bytes.is_power_of_two());
        assert!(self.dtlb.page_bytes.is_power_of_two());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cortex_a9_matches_datasheet_capacities() {
        let g = HierarchyGeometry::cortex_a9();
        g.validate();
        assert_eq!(g.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(g.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(g.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(g.itlb.reach_bytes(), 128 * 1024);
    }

    #[test]
    fn tiny_is_small() {
        let g = HierarchyGeometry::tiny();
        g.validate();
        assert_eq!(g.l1i.capacity_bytes(), 1024);
        assert_eq!(g.l2.capacity_bytes(), 8 * 1024);
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in HierarchyGeometry::PRESET_NAMES {
            let g = HierarchyGeometry::preset(name).unwrap();
            assert_eq!(g.name, name);
        }
        assert!(HierarchyGeometry::preset("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_non_power_of_two() {
        CacheGeometry {
            sets: 3,
            ways: 2,
            line_bytes: 32,
        }
        .validate();
    }

    #[test]
    fn display_is_readable() {
        let g = HierarchyGeometry::cortex_a9();
        assert_eq!(g.l1i.to_string(), "32 KiB 4-way, 32 B lines");
        assert_eq!(g.itlb.to_string(), "32 entries, 4 KiB pages");
    }
}
