//! Cache and TLB geometries, the named hierarchy presets, and the one
//! place geometry names resolve: [`HierarchyGeometry::by_name`].
//!
//! Every layer that accepts a geometry on its surface — `agave cache
//! --preset`, `agave replay --cache`, the served `ANALYZE`/`SWEEP`
//! verbs, `agave sweep` grid cells — funnels through `by_name`, so the
//! accepted grammar and the unknown-name diagnostics live here and
//! nowhere else. Besides the built-in presets, `by_name` accepts *L1
//! cell specs* of the form `size=16k,assoc=2,line=32`: a cortex-a9
//! hierarchy with both L1 sides replaced by the requested capacity,
//! associativity, and line size — the coordinate system of a design-
//! space sweep, where every grid cell must also be reproducible as a
//! standalone replay.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Geometry of one set-associative cache level.
///
/// All three parameters must be powers of two so set index and tag are
/// pure bit fields of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (lines per set); 1 = direct-mapped.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// Panics unless every parameter is a nonzero power of two.
    pub fn validate(&self) {
        for (what, v) in [
            ("sets", self.sets),
            ("ways", self.ways),
            ("line_bytes", self.line_bytes),
        ] {
            assert!(
                v.is_power_of_two(),
                "{what} must be a power of two, got {v}"
            );
        }
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity_bytes();
        if cap.is_multiple_of(1024) {
            write!(f, "{} KiB", cap / 1024)?;
        } else {
            write!(f, "{cap} B")?;
        }
        write!(f, " {}-way, {} B lines", self.ways, self.line_bytes)
    }
}

/// Geometry of a fully-associative TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u32,
}

impl TlbGeometry {
    /// Address span covered when every entry is live.
    pub fn reach_bytes(&self) -> u64 {
        u64::from(self.entries) * u64::from(self.page_bytes)
    }
}

impl fmt::Display for TlbGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries, {} KiB pages",
            self.entries,
            self.page_bytes / 1024
        )
    }
}

/// A full hierarchy configuration: split L1, unified L2, split TLBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyGeometry {
    /// Preset name (`"cortex-a9"`, `"tiny"`, …).
    pub name: &'static str,
    /// L1 instruction cache.
    pub l1i: CacheGeometry,
    /// L1 data cache.
    pub l1d: CacheGeometry,
    /// Unified second-level cache.
    pub l2: CacheGeometry,
    /// Instruction TLB.
    pub itlb: TlbGeometry,
    /// Data TLB.
    pub dtlb: TlbGeometry,
}

impl HierarchyGeometry {
    /// A Cortex-A9-class hierarchy, contemporary with the Gingerbread-era
    /// devices the paper models: 32 KiB 4-way split L1 with 32 B lines,
    /// 512 KiB 8-way unified L2, 32-entry split TLBs over 4 KiB pages.
    pub fn cortex_a9() -> Self {
        HierarchyGeometry {
            name: "cortex-a9",
            l1i: CacheGeometry {
                sets: 256,
                ways: 4,
                line_bytes: 32,
            },
            l1d: CacheGeometry {
                sets: 256,
                ways: 4,
                line_bytes: 32,
            },
            l2: CacheGeometry {
                sets: 2048,
                ways: 8,
                line_bytes: 32,
            },
            itlb: TlbGeometry {
                entries: 32,
                page_bytes: 4096,
            },
            dtlb: TlbGeometry {
                entries: 32,
                page_bytes: 4096,
            },
        }
    }

    /// A deliberately tiny hierarchy for fast, eviction-heavy tests:
    /// 1 KiB 2-way split L1 with 16 B lines, 8 KiB 4-way L2, 4-entry
    /// TLBs.
    pub fn tiny() -> Self {
        HierarchyGeometry {
            name: "tiny",
            l1i: CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 16,
            },
            l1d: CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 16,
            },
            l2: CacheGeometry {
                sets: 128,
                ways: 4,
                line_bytes: 16,
            },
            itlb: TlbGeometry {
                entries: 4,
                page_bytes: 4096,
            },
            dtlb: TlbGeometry {
                entries: 4,
                page_bytes: 4096,
            },
        }
    }

    /// Names of all built-in presets.
    pub const PRESET_NAMES: [&'static str; 2] = ["cortex-a9", "tiny"];

    /// Looks up a preset by name.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "cortex-a9" => Some(Self::cortex_a9()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }

    /// Resolves any geometry name the suite accepts: a built-in preset
    /// (`cortex-a9`, `tiny`) or an L1 cell spec
    /// (`size=<cap>,assoc=<ways>,line=<bytes>`, e.g.
    /// `size=16k,assoc=2,line=32`). This is the single lookup every
    /// CLI flag and wire verb resolves through; the error carries the
    /// full list of valid names and the spec grammar.
    pub fn by_name(name: &str) -> Result<Self, GeometryError> {
        if let Some(preset) = Self::preset(name) {
            return Ok(preset);
        }
        if name.contains('=') {
            return Self::parse_l1_spec(name);
        }
        Err(GeometryError::unknown(name))
    }

    /// A cortex-a9 hierarchy with both L1 sides replaced by an
    /// `l1_bytes`-capacity, `assoc`-way cache with `line_bytes` lines —
    /// one cell of a design-space sweep. The L2 and TLBs stay at the
    /// cortex-a9 base so cells differ only along the swept axes.
    ///
    /// The cell's canonical name (`size=16k,assoc=2,line=32`) round-
    /// trips through [`HierarchyGeometry::by_name`], which is what lets
    /// a sweep cell be re-run standalone with byte-identical reports.
    pub fn with_l1(l1_bytes: u64, assoc: u32, line_bytes: u32) -> Result<Self, GeometryError> {
        let bad = |what: String| Err(GeometryError::BadSpec(what));
        if !(assoc as u64).is_power_of_two() || !(line_bytes as u64).is_power_of_two() {
            return bad(format!(
                "assoc ({assoc}) and line ({line_bytes}) must be powers of two"
            ));
        }
        let way_bytes = u64::from(assoc) * u64::from(line_bytes);
        if l1_bytes == 0 || !l1_bytes.is_multiple_of(way_bytes) {
            return bad(format!(
                "size ({l1_bytes}) must be a multiple of assoc*line ({way_bytes})"
            ));
        }
        let sets = l1_bytes / way_bytes;
        if !sets.is_power_of_two() || sets > u64::from(u32::MAX) {
            return bad(format!(
                "size/(assoc*line) must be a power-of-two set count, got {sets}"
            ));
        }
        let l1 = CacheGeometry {
            sets: sets as u32,
            ways: assoc,
            line_bytes,
        };
        let base = Self::cortex_a9();
        Ok(HierarchyGeometry {
            name: intern_name(&format!(
                "size={},assoc={assoc},line={line_bytes}",
                format_size(l1_bytes)
            )),
            l1i: l1,
            l1d: l1,
            ..base
        })
    }

    /// Parses an L1 cell spec (`size=16k,assoc=2,line=32`; keys in any
    /// order, each exactly once).
    fn parse_l1_spec(spec: &str) -> Result<Self, GeometryError> {
        let mut size = None;
        let mut assoc = None;
        let mut line = None;
        for part in spec.split(',') {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                GeometryError::BadSpec(format!("expected key=value, got {part:?}"))
            })?;
            let slot = match key {
                "size" => &mut size,
                "assoc" => &mut assoc,
                "line" => &mut line,
                other => {
                    return Err(GeometryError::BadSpec(format!(
                        "unknown key {other:?} (want size, assoc, line)"
                    )))
                }
            };
            if slot.is_some() {
                return Err(GeometryError::BadSpec(format!("duplicate key {key:?}")));
            }
            *slot = Some(
                parse_size(value)
                    .ok_or_else(|| GeometryError::BadSpec(format!("bad {key} value {value:?}")))?,
            );
        }
        match (size, assoc, line) {
            (Some(size), Some(assoc), Some(line)) => {
                let narrow = |v: u64, what: &str| {
                    u32::try_from(v)
                        .map_err(|_| GeometryError::BadSpec(format!("{what} too large ({v})")))
                };
                Self::with_l1(size, narrow(assoc, "assoc")?, narrow(line, "line")?)
            }
            _ => Err(GeometryError::BadSpec(
                "spec needs all of size=, assoc=, line=".to_owned(),
            )),
        }
    }

    /// Panics unless every level's geometry is well-formed.
    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        assert!(self.itlb.page_bytes.is_power_of_two());
        assert!(self.dtlb.page_bytes.is_power_of_two());
    }

    /// The parts of the geometry a shared [`crate::BatchPlan`] walk
    /// depends on: line sizes (L1s and L2) and TLB shapes. Hierarchies
    /// with equal signatures — e.g. sweep cells differing only in L1
    /// capacity and associativity — walk the reference stream
    /// identically outside their private L1/L2 probes, so one
    /// [`crate::PlanBuilder`] can front all of them.
    pub fn plan_signature(&self) -> (u32, u32, u32, TlbGeometry, TlbGeometry) {
        (
            self.l1i.line_bytes,
            self.l1d.line_bytes,
            self.l2.line_bytes,
            self.itlb,
            self.dtlb,
        )
    }
}

/// Why a geometry name failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The name is neither a preset nor an L1 cell spec.
    Unknown {
        /// The rejected name.
        name: String,
    },
    /// The name looked like a cell spec but did not parse or validate.
    BadSpec(String),
}

impl GeometryError {
    fn unknown(name: &str) -> Self {
        GeometryError::Unknown {
            name: name.to_owned(),
        }
    }
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Unknown { name } => write!(
                f,
                "unknown geometry {name:?}; valid: {} or an L1 spec like size=16k,assoc=2,line=32",
                HierarchyGeometry::PRESET_NAMES.join(", ")
            ),
            GeometryError::BadSpec(what) => write!(
                f,
                "bad geometry spec: {what} (format: size=16k,assoc=2,line=32)"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Parses `"16k"`, `"1m"`, or a plain byte count.
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, scale) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1024),
        b'm' | b'M' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(scale)
}

/// Renders a byte count the way cell names spell it (`16k` when it
/// divides evenly, raw bytes otherwise) — the inverse of [`parse_size`]
/// on canonical names.
pub fn format_size(bytes: u64) -> String {
    if bytes > 0 && bytes.is_multiple_of(1024 * 1024) {
        format!("{}m", bytes / (1024 * 1024))
    } else if bytes > 0 && bytes.is_multiple_of(1024) {
        format!("{}k", bytes / 1024)
    } else {
        bytes.to_string()
    }
}

/// Leak-once interning for dynamic geometry names.
///
/// [`HierarchyGeometry`] is `Copy` with a `&'static str` name — the
/// right shape for the hot path, where geometries are passed by value
/// everywhere. Sweep cells need *computed* names, so each distinct cell
/// name is leaked exactly once and reused forever after; a long-running
/// server resolving the same grids repeatedly does not grow.
fn intern_name(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut map = NAMES
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("geometry name table poisoned");
    if let Some(&interned) = map.get(name) {
        return interned;
    }
    let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(name.to_owned(), interned);
    interned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cortex_a9_matches_datasheet_capacities() {
        let g = HierarchyGeometry::cortex_a9();
        g.validate();
        assert_eq!(g.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(g.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(g.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(g.itlb.reach_bytes(), 128 * 1024);
    }

    #[test]
    fn tiny_is_small() {
        let g = HierarchyGeometry::tiny();
        g.validate();
        assert_eq!(g.l1i.capacity_bytes(), 1024);
        assert_eq!(g.l2.capacity_bytes(), 8 * 1024);
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in HierarchyGeometry::PRESET_NAMES {
            let g = HierarchyGeometry::preset(name).unwrap();
            assert_eq!(g.name, name);
        }
        assert!(HierarchyGeometry::preset("nope").is_none());
    }

    #[test]
    fn by_name_resolves_presets_and_cell_specs() {
        assert_eq!(
            HierarchyGeometry::by_name("cortex-a9").unwrap(),
            HierarchyGeometry::cortex_a9()
        );
        let cell = HierarchyGeometry::by_name("size=16k,assoc=2,line=32").unwrap();
        cell.validate();
        assert_eq!(cell.name, "size=16k,assoc=2,line=32");
        assert_eq!(cell.l1i.capacity_bytes(), 16 * 1024);
        assert_eq!(cell.l1i.ways, 2);
        assert_eq!(cell.l1i.line_bytes, 32);
        assert_eq!(cell.l1i, cell.l1d);
        // Only the L1s move; the rest stays at the cortex-a9 base.
        let base = HierarchyGeometry::cortex_a9();
        assert_eq!(cell.l2, base.l2);
        assert_eq!(cell.itlb, base.itlb);
        assert_eq!(cell.dtlb, base.dtlb);
    }

    #[test]
    fn cell_names_round_trip_and_intern_once() {
        let a = HierarchyGeometry::with_l1(64 * 1024, 4, 64).unwrap();
        assert_eq!(a.name, "size=64k,assoc=4,line=64");
        let b = HierarchyGeometry::by_name(a.name).unwrap();
        assert_eq!(a, b);
        // Same spec spelled differently canonicalizes to one interned str.
        let c = HierarchyGeometry::by_name("line=64,size=65536,assoc=4").unwrap();
        assert!(std::ptr::eq(a.name, c.name));
    }

    #[test]
    fn by_name_rejects_with_useful_messages() {
        let err = HierarchyGeometry::by_name("nope").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cortex-a9") && msg.contains("tiny"), "{msg}");
        assert!(msg.contains("size=16k,assoc=2,line=32"), "{msg}");
        for bad in [
            "size=16k",                       // missing keys
            "size=16k,assoc=2,line=32,zap=1", // unknown key
            "size=16k,assoc=2,assoc=2",       // duplicate key
            "size=16q,assoc=2,line=32",       // bad number
            "size=16k,assoc=3,line=32",       // non-power-of-two assoc
            "size=17k,assoc=2,line=32",       // size not multiple of way
            "size=24k,assoc=2,line=32",       // non-power-of-two sets
        ] {
            assert!(
                matches!(
                    HierarchyGeometry::by_name(bad),
                    Err(GeometryError::BadSpec(_))
                ),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn size_formatting_round_trips() {
        for (text, bytes) in [("16k", 16 * 1024), ("2m", 2 * 1024 * 1024), ("100", 100)] {
            assert_eq!(parse_size(text), Some(bytes));
            assert_eq!(format_size(bytes), text);
        }
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("k"), None);
        assert_eq!(parse_size("-4k"), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_non_power_of_two() {
        CacheGeometry {
            sets: 3,
            ways: 2,
            line_bytes: 32,
        }
        .validate();
    }

    #[test]
    fn display_is_readable() {
        let g = HierarchyGeometry::cortex_a9();
        assert_eq!(g.l1i.to_string(), "32 KiB 4-way, 32 B lines");
        assert_eq!(g.itlb.to_string(), "32 entries, 4 KiB pages");
    }
}
