//! Memory-hierarchy characterization over the Agave reference stream.
//!
//! The paper measures every memory reference on gem5's atomic, cache-less
//! CPU model and leaves the locality question open: Android spreads
//! instruction fetches over more than 65 VMA regions (data over ~170)
//! where SPEC uses little more than the application binary and the
//! kernel — what does that do to a real cache? This crate answers it in
//! simulation. It consumes the classified reference stream through the
//! [`agave_trace::ReferenceSink`] observer API and replays it through a
//! configurable hierarchy — split L1I/L1D, unified L2, split I/D TLBs,
//! exact LRU — accounting hits and misses per (process, region, level).
//!
//! # Example
//!
//! ```
//! use agave_cache::{HierarchyGeometry, Level, MemoryHierarchy};
//! use agave_trace::{RefKind, SharedSink, Tracer};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let mut tracer = Tracer::new();
//! let sink = Rc::new(RefCell::new(MemoryHierarchy::new(HierarchyGeometry::tiny())));
//! tracer.add_sink(sink.clone() as SharedSink);
//!
//! let pid = tracer.register_process("app_process");
//! let tid = tracer.register_thread(pid, "main");
//! let region = tracer.intern_region("libdvm.so");
//! tracer.charge(pid, tid, region, RefKind::InstrFetch, 10_000);
//! tracer.flush_sinks(); // sink delivery is batched
//!
//! let report = sink.borrow().report("demo", &tracer.name_directory());
//! assert_eq!(report.total(Level::L1i).accesses(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod hierarchy;
mod model;
mod report;

pub use geometry::{
    format_size, parse_size, CacheGeometry, GeometryError, HierarchyGeometry, TlbGeometry,
};
pub use hierarchy::{BatchPlan, Level, MemoryHierarchy, PlanBuilder};
pub use model::SetAssocCache;
pub use report::{CacheReport, LevelStats, RegionRow};
