//! The core set-associative lookup structure with exact LRU.

use crate::geometry::{CacheGeometry, TlbGeometry};

/// A set-associative cache (or, with one set, a fully-associative TLB).
///
/// Each set is a recency-ordered vector of line numbers: index 0 is the
/// most recently used way. A hit moves the line to the front; a miss
/// inserts at the front and evicts the back when the set is full. This
/// is exact LRU — appropriate at simulation speed, and deterministic.
///
/// # Example
///
/// ```
/// use agave_cache::{CacheGeometry, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry { sets: 2, ways: 2, line_bytes: 16 });
/// assert!(!c.access(0x00)); // compulsory miss
/// assert!(c.access(0x04));  // same 16-byte line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// `sets[i]` holds line numbers, most recently used first.
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is not a power of two.
    pub fn new(geometry: CacheGeometry) -> Self {
        geometry.validate();
        SetAssocCache {
            geometry,
            sets: vec![Vec::with_capacity(geometry.ways as usize); geometry.sets as usize],
            line_shift: geometry.line_bytes.trailing_zeros(),
            set_mask: u64::from(geometry.sets) - 1,
        }
    }

    /// Builds a fully-associative cache modeling a TLB: one set,
    /// `entries` ways, page-sized "lines".
    pub fn tlb(geometry: TlbGeometry) -> Self {
        Self::new(CacheGeometry {
            sets: 1,
            ways: geometry.entries,
            line_bytes: geometry.page_bytes,
        })
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The line number containing `addr` (the unit of residency).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// The set index serving `addr`.
    pub fn set_of(&self, addr: u64) -> u64 {
        self.line_of(addr) & self.set_mask
    }

    /// The tag stored for `addr` (line number above the set bits).
    pub fn tag_of(&self, addr: u64) -> u64 {
        self.line_of(addr) >> self.set_mask.count_ones()
    }

    /// Looks up the line containing `addr`, updating recency and
    /// contents. Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if pos != 0 {
                let hit = set.remove(pos);
                set.insert(0, hit);
            }
            return true;
        }
        if set.len() == self.geometry.ways as usize {
            set.pop();
        }
        set.insert(0, line);
        false
    }

    /// Returns `true` if the line containing `addr` is resident, without
    /// touching recency (for tests and introspection).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        self.sets[(line & self.set_mask) as usize]
            .iter()
            .any(|&l| l == line)
    }

    /// Number of resident lines across all sets.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 16 B lines = 128 B.
        SetAssocCache::new(CacheGeometry {
            sets: 4,
            ways: 2,
            line_bytes: 16,
        })
    }

    #[test]
    fn set_index_and_tag_split_at_line_boundaries() {
        let c = small();
        // Addresses inside one 16-byte line share line, set and tag.
        assert_eq!(c.line_of(0x20), c.line_of(0x2f));
        assert_eq!(c.set_of(0x20), c.set_of(0x2f));
        assert_eq!(c.tag_of(0x20), c.tag_of(0x2f));
        // The next byte starts a new line and the next set.
        assert_eq!(c.line_of(0x30), c.line_of(0x20) + 1);
        assert_eq!(c.set_of(0x30), (c.set_of(0x20) + 1) % 4);
        // Lines 4 sets apart map to the same set with different tags.
        let a = 0x20;
        let b = a + 4 * 16;
        assert_eq!(c.set_of(a), c.set_of(b));
        assert_ne!(c.tag_of(a), c.tag_of(b));
    }

    #[test]
    fn same_line_hits_after_compulsory_miss() {
        let mut c = small();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x10f)); // last byte of the same line
        assert!(!c.access(0x110)); // next line
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets * line).
        let (a, b, d) = (0x000, 0x040, 0x080);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a; LRU is now b
        assert!(!c.access(d)); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(!c.access(b)); // b was evicted -> miss, evicts a (LRU)
        assert!(!c.contains(a));
        assert!(c.contains(d));
    }

    #[test]
    fn tlb_reach_is_entries_times_page() {
        let mut t = SetAssocCache::tlb(TlbGeometry {
            entries: 4,
            page_bytes: 4096,
        });
        // Touch 4 distinct pages: all compulsory misses, then all hits.
        for p in 0..4u64 {
            assert!(!t.access(p * 4096));
        }
        for p in 0..4u64 {
            assert!(t.access(p * 4096));
        }
        assert_eq!(t.resident_lines(), 4);
        // A fifth page exceeds the reach and evicts the LRU (page 0).
        assert!(!t.access(4 * 4096));
        assert!(!t.contains(0));
        assert!(t.contains(4096));
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = small();
        c.access(0);
        c.access(64);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn direct_mapped_conflicts_without_lru() {
        let mut c = SetAssocCache::new(CacheGeometry {
            sets: 2,
            ways: 1,
            line_bytes: 16,
        });
        assert!(!c.access(0x00));
        assert!(!c.access(0x20)); // same set, conflict
        assert!(!c.access(0x00)); // ping-pong
    }
}
