//! The core set-associative lookup structure with exact LRU.

use crate::geometry::{CacheGeometry, TlbGeometry};

/// Sentinel for an empty way. Real line numbers are `addr >> line_shift`
/// with `line_shift ≥ 2` (word-sized lines at minimum), so they can never
/// collide with it.
const INVALID_LINE: u64 = u64::MAX;

/// A set-associative cache (or, with one set, a fully-associative TLB).
///
/// All sets live in one flat `sets × ways` slot array (no per-set heap
/// allocations), with a parallel packed recency array: each slot carries
/// the cache-wide clock value of its last touch, so the victim in a set
/// is simply the slot with the smallest stamp. Empty ways keep stamp 0,
/// below every live stamp, so sets fill before they evict. This encodes
/// *exact* LRU — identical hit/miss decisions to a recency-ordered list
/// (a property test checks this against the naive list oracle) — while a
/// lookup touches two small contiguous slices instead of chasing a
/// per-set `Vec`.
///
/// # Example
///
/// ```
/// use agave_cache::{CacheGeometry, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry { sets: 2, ways: 2, line_bytes: 16 });
/// assert!(!c.access(0x00)); // compulsory miss
/// assert!(c.access(0x04));  // same 16-byte line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Resident line numbers, `sets × ways`, set-major.
    lines: Vec<u64>,
    /// Recency stamps parallel to `lines`; larger = more recently used.
    stamps: Vec<u64>,
    /// Per-set most-recently-used line, checked before the way scan (the
    /// recency-ordered list got this for free by keeping the MRU line at
    /// scan position 0). The MRU slot already holds its set's largest
    /// stamp and stamps are only compared within a set, so a hint hit is
    /// a pure read — no stamp, clock, or hint update needed.
    mru_line: Vec<u64>,
    /// Monotonic access clock feeding the stamps.
    clock: u64,
    line_shift: u32,
    set_mask: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is not a power of two.
    pub fn new(geometry: CacheGeometry) -> Self {
        geometry.validate();
        let slots = geometry.sets as usize * geometry.ways as usize;
        SetAssocCache {
            geometry,
            lines: vec![INVALID_LINE; slots],
            stamps: vec![0; slots],
            mru_line: vec![INVALID_LINE; geometry.sets as usize],
            clock: 0,
            line_shift: geometry.line_bytes.trailing_zeros(),
            set_mask: u64::from(geometry.sets) - 1,
        }
    }

    /// Builds a fully-associative cache modeling a TLB: one set,
    /// `entries` ways, page-sized "lines".
    pub fn tlb(geometry: TlbGeometry) -> Self {
        Self::new(CacheGeometry {
            sets: 1,
            ways: geometry.entries,
            line_bytes: geometry.page_bytes,
        })
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Log2 of the line size (the shift from address to line number).
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// The line number containing `addr` (the unit of residency).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// The set index serving `addr`.
    pub fn set_of(&self, addr: u64) -> u64 {
        self.line_of(addr) & self.set_mask
    }

    /// The tag stored for `addr` (line number above the set bits).
    pub fn tag_of(&self, addr: u64) -> u64 {
        self.line_of(addr) >> self.set_mask.count_ones()
    }

    /// Looks up the line containing `addr`, updating recency and
    /// contents. Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(addr >> self.line_shift)
    }

    /// [`Self::access`] with the line number already extracted — the
    /// hierarchy walk iterates lines directly, skipping the per-call
    /// address shift.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, INVALID_LINE, "address aliases the empty-way sentinel");
        let set = (line & self.set_mask) as usize;
        // MRU hint first: repeated touches of a set's hot line cost one
        // load and compare, with nothing written (see `mru_line`).
        if self.mru_line[set] == line {
            return true;
        }
        let ways = self.geometry.ways as usize;
        let base = set * ways;
        self.clock += 1;
        let clock = self.clock;
        // Dispatch to a fixed-width sweep for the associativities the
        // shipped geometries actually use, so the scan fully unrolls.
        match ways {
            2 => self.sweep::<2>(line, set, base, clock),
            4 => self.sweep::<4>(line, set, base, clock),
            8 => self.sweep::<8>(line, set, base, clock),
            32 => self.sweep::<32>(line, set, base, clock),
            _ => self.sweep_dyn(line, set, base, ways, clock),
        }
    }

    /// One fused pass over a fixed-width set: look for the line and track
    /// the smallest stamp — an empty way (stamp 0) if any, else the exact
    /// LRU line — so a miss costs a single sweep. The `W`-sized array
    /// views let the compiler unroll and drop all bounds checks.
    #[inline]
    fn sweep<const W: usize>(&mut self, line: u64, set: usize, base: usize, clock: u64) -> bool {
        let lines: &mut [u64; W] = (&mut self.lines[base..base + W]).try_into().unwrap();
        let stamps: &mut [u64; W] = (&mut self.stamps[base..base + W]).try_into().unwrap();
        // Branchless tag match: selecting the hit index with no early
        // exit lets the compare vectorize, so hit and full-scan miss both
        // cost one wide sweep instead of W predicted branches.
        let mut hit = usize::MAX;
        for (i, &l) in lines.iter().enumerate() {
            if l == line {
                hit = i;
            }
        }
        if hit != usize::MAX {
            // `% W` is free (W is a power of two) and proves the index.
            stamps[hit % W] = clock;
            self.mru_line[set] = line;
            return true;
        }
        // Miss: the victim is the smallest stamp — an empty way (stamp 0)
        // if any, else the exact LRU line. Packing `(stamp << log2 W) | way`
        // turns the indexed scan into a plain min-reduction (stamps are
        // unique within a set, so the packed order equals stamp order).
        let way_bits = W.trailing_zeros();
        let mut packed_min = u64::MAX;
        for (i, &stamp) in stamps.iter().enumerate() {
            let packed = (stamp << way_bits) | i as u64;
            if packed < packed_min {
                packed_min = packed;
            }
        }
        let victim = (packed_min as usize) % W;
        lines[victim] = line;
        stamps[victim] = clock;
        self.mru_line[set] = line;
        false
    }

    /// [`Self::sweep`] for associativities without a fixed-width variant.
    fn sweep_dyn(&mut self, line: u64, set: usize, base: usize, ways: usize, clock: u64) -> bool {
        let lines = &mut self.lines[base..base + ways];
        let stamps = &mut self.stamps[base..base + ways];
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for i in 0..ways {
            if lines[i] == line {
                stamps[i] = clock;
                self.mru_line[set] = line;
                return true;
            }
            if stamps[i] < victim_stamp {
                victim_stamp = stamps[i];
                victim = i;
            }
        }
        lines[victim] = line;
        stamps[victim] = clock;
        self.mru_line[set] = line;
        false
    }

    /// Returns `true` if the line containing `addr` is resident, without
    /// touching recency (for tests and introspection).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let ways = self.geometry.ways as usize;
        let base = ((line & self.set_mask) as usize) * ways;
        self.lines[base..base + ways].contains(&line)
    }

    /// Number of resident lines across all sets.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|&&l| l != INVALID_LINE).count()
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.stamps.fill(0);
        self.mru_line.fill(INVALID_LINE);
        self.clock = 0;
    }
}

/// The pre-flattening implementation — a recency-ordered `Vec` per set —
/// kept as the oracle for the packed-LRU property test.
#[cfg(test)]
pub(crate) struct NaiveLruCache {
    ways: usize,
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
}

#[cfg(test)]
impl NaiveLruCache {
    pub(crate) fn new(geometry: CacheGeometry) -> Self {
        geometry.validate();
        NaiveLruCache {
            ways: geometry.ways as usize,
            sets: vec![Vec::with_capacity(geometry.ways as usize); geometry.sets as usize],
            line_shift: geometry.line_bytes.trailing_zeros(),
            set_mask: u64::from(geometry.sets) - 1,
        }
    }

    pub(crate) fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if pos != 0 {
                let hit = set.remove(pos);
                set.insert(0, hit);
            }
            return true;
        }
        if set.len() == self.ways {
            set.pop();
        }
        set.insert(0, line);
        false
    }

    pub(crate) fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        self.sets[(line & self.set_mask) as usize].contains(&line)
    }

    pub(crate) fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::XorShift64;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 16 B lines = 128 B.
        SetAssocCache::new(CacheGeometry {
            sets: 4,
            ways: 2,
            line_bytes: 16,
        })
    }

    #[test]
    fn set_index_and_tag_split_at_line_boundaries() {
        let c = small();
        // Addresses inside one 16-byte line share line, set and tag.
        assert_eq!(c.line_of(0x20), c.line_of(0x2f));
        assert_eq!(c.set_of(0x20), c.set_of(0x2f));
        assert_eq!(c.tag_of(0x20), c.tag_of(0x2f));
        // The next byte starts a new line and the next set.
        assert_eq!(c.line_of(0x30), c.line_of(0x20) + 1);
        assert_eq!(c.set_of(0x30), (c.set_of(0x20) + 1) % 4);
        // Lines 4 sets apart map to the same set with different tags.
        let a = 0x20;
        let b = a + 4 * 16;
        assert_eq!(c.set_of(a), c.set_of(b));
        assert_ne!(c.tag_of(a), c.tag_of(b));
    }

    #[test]
    fn same_line_hits_after_compulsory_miss() {
        let mut c = small();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x10f)); // last byte of the same line
        assert!(!c.access(0x110)); // next line
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets * line).
        let (a, b, d) = (0x000, 0x040, 0x080);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a; LRU is now b
        assert!(!c.access(d)); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(!c.access(b)); // b was evicted -> miss, evicts a (LRU)
        assert!(!c.contains(a));
        assert!(c.contains(d));
    }

    #[test]
    fn tlb_reach_is_entries_times_page() {
        let mut t = SetAssocCache::tlb(TlbGeometry {
            entries: 4,
            page_bytes: 4096,
        });
        // Touch 4 distinct pages: all compulsory misses, then all hits.
        for p in 0..4u64 {
            assert!(!t.access(p * 4096));
        }
        for p in 0..4u64 {
            assert!(t.access(p * 4096));
        }
        assert_eq!(t.resident_lines(), 4);
        // A fifth page exceeds the reach and evicts the LRU (page 0).
        assert!(!t.access(4 * 4096));
        assert!(!t.contains(0));
        assert!(t.contains(4096));
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = small();
        c.access(0);
        c.access(64);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn direct_mapped_conflicts_without_lru() {
        let mut c = SetAssocCache::new(CacheGeometry {
            sets: 2,
            ways: 1,
            line_bytes: 16,
        });
        assert!(!c.access(0x00));
        assert!(!c.access(0x20)); // same set, conflict
        assert!(!c.access(0x00)); // ping-pong
    }

    /// The packed-LRU flat layout must be observationally identical to
    /// the naive recency-list oracle on random address streams: same
    /// hit/miss decision on every access, same residency throughout.
    #[test]
    fn packed_lru_matches_naive_oracle_on_random_streams() {
        let geometries = [
            // Direct-mapped, the degenerate no-LRU case.
            CacheGeometry {
                sets: 8,
                ways: 1,
                line_bytes: 16,
            },
            // The tiny test preset's L1 shape.
            CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 16,
            },
            // Cortex-A9 L1 shape.
            CacheGeometry {
                sets: 256,
                ways: 4,
                line_bytes: 32,
            },
            // Fully-associative, TLB-like: 1 set, 32 ways, 4 KiB lines.
            CacheGeometry {
                sets: 1,
                ways: 32,
                line_bytes: 4096,
            },
        ];
        for (gi, geometry) in geometries.into_iter().enumerate() {
            let mut packed = SetAssocCache::new(geometry);
            let mut naive = NaiveLruCache::new(geometry);
            let mut rng = XorShift64::new(0xA9A9_0000 + gi as u64);
            // A footprint a few times the capacity keeps hits and
            // evictions both frequent.
            let window = geometry.capacity_bytes() * 3;
            for step in 0..30_000u64 {
                // Occasionally jump to a far address to exercise tags.
                let addr = if rng.below(64) == 0 {
                    rng.next_u64() >> 8
                } else {
                    rng.below(window)
                };
                assert_eq!(
                    packed.access(addr),
                    naive.access(addr),
                    "geometry {gi}, step {step}, addr {addr:#x}: hit/miss diverged"
                );
                if step % 1024 == 0 {
                    assert_eq!(packed.resident_lines(), naive.resident_lines());
                    let probe = rng.below(window);
                    assert_eq!(packed.contains(probe), naive.contains(probe));
                }
            }
            assert_eq!(packed.resident_lines(), naive.resident_lines());
        }
    }
}
