//! Post-run cache reports: per-region and per-process hit/miss
//! breakdowns, text rendering and JSON export.

use crate::hierarchy::Level;
use agave_trace::json;
use std::fmt;

/// Hit/miss counters for one level of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses served by this level.
    pub hits: u64,
    /// Accesses passed down (or, for the last level, to memory).
    pub misses: u64,
}

impl LevelStats {
    /// Total lookups at this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in 0.0–1.0 (0.0 when the level was never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.misses as f64 / (self.hits + self.misses) as f64
        }
    }

    /// Records one access.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Adds another counter pair into this one.
    pub fn absorb(&mut self, other: LevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Per-level stats for one named row (a region or a process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionRow {
    /// Region (or process) name.
    pub name: String,
    /// Stats indexed by [`Level::index`].
    pub levels: [LevelStats; 5],
}

impl RegionRow {
    /// Stats for one level.
    pub fn level(&self, level: Level) -> LevelStats {
        self.levels[level.index()]
    }

    /// Combined L1I + L1D accesses — the row's total reference count,
    /// used for ranking.
    pub fn l1_accesses(&self) -> u64 {
        self.level(Level::L1i).accesses() + self.level(Level::L1d).accesses()
    }

    fn to_json(&self, key: &str) -> String {
        let mut obj = json::Object::new();
        obj.field_str(key, &self.name);
        for level in Level::ALL {
            let s = self.level(level);
            let mut l = json::Object::new();
            l.field_u64("hits", s.hits)
                .field_u64("misses", s.misses)
                .field_f64("miss_rate", s.miss_rate());
            obj.field_raw(level.label(), &l.finish());
        }
        obj.finish()
    }
}

/// The distilled result of running one benchmark through a
/// [`crate::MemoryHierarchy`].
///
/// Produced by [`crate::MemoryHierarchy::report`]; rendered by
/// [`CacheReport::render`] for the CLI and serialized by
/// [`CacheReport::to_json`] for artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheReport {
    /// Benchmark label.
    pub benchmark: String,
    /// Geometry preset name the run used.
    pub preset: String,
    /// Whole-run stats indexed by [`Level::index`].
    pub totals: [LevelStats; 5],
    /// Per-region rows, descending by total L1 accesses.
    pub regions: Vec<RegionRow>,
    /// Per-process rows, descending by total L1 accesses.
    pub processes: Vec<RegionRow>,
}

impl CacheReport {
    /// Whole-run stats for one level.
    pub fn total(&self, level: Level) -> LevelStats {
        self.totals[level.index()]
    }

    /// Whole-run L1I miss rate — the paper-implied locality headline.
    pub fn l1i_miss_rate(&self) -> f64 {
        self.total(Level::L1i).miss_rate()
    }

    /// Whole-run L1D miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        self.total(Level::L1d).miss_rate()
    }

    /// Stats of a region by name, if it issued references.
    pub fn region(&self, name: &str) -> Option<&RegionRow> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Renders the report as a fixed-width table: the `top` regions by
    /// reference count with L1I / L1D / L2 accesses and miss rates, then
    /// whole-run totals including TLBs.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cache report: {} (preset {})\n",
            self.benchmark, self.preset
        ));
        let shown = &self.regions[..self.regions.len().min(top)];
        let name_w = shown
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once("region".len()))
            .max()
            .unwrap_or(6);
        out.push_str(&format!(
            "{:name_w$}  {:>14} {:>7}  {:>14} {:>7}  {:>14} {:>7}\n",
            "region", "L1I acc", "miss%", "L1D acc", "miss%", "L2 acc", "miss%"
        ));
        for row in shown {
            out.push_str(&format!("{:name_w$}", row.name));
            for level in [Level::L1i, Level::L1d, Level::L2] {
                let s = row.level(level);
                out.push_str(&format!(
                    "  {:>14} {:>6.2}%",
                    s.accesses(),
                    s.miss_rate() * 100.0
                ));
            }
            out.push('\n');
        }
        if self.regions.len() > shown.len() {
            out.push_str(&format!(
                "… and {} more regions\n",
                self.regions.len() - shown.len()
            ));
        }
        out.push_str("totals:");
        for level in Level::ALL {
            let s = self.total(level);
            out.push_str(&format!(
                "  {} {}/{} ({:.2}% miss)",
                level.label(),
                s.hits,
                s.misses,
                s.miss_rate() * 100.0
            ));
        }
        out.push('\n');
        out
    }

    /// Serializes the full report (all regions and processes) as JSON.
    pub fn to_json(&self) -> String {
        let mut totals = json::Object::new();
        for level in Level::ALL {
            let s = self.total(level);
            let mut l = json::Object::new();
            l.field_u64("hits", s.hits)
                .field_u64("misses", s.misses)
                .field_f64("miss_rate", s.miss_rate());
            totals.field_raw(level.label(), &l.finish());
        }
        json::Object::new()
            .field_str("benchmark", &self.benchmark)
            .field_str("preset", &self.preset)
            .field_raw("totals", &totals.finish())
            .field_raw(
                "regions",
                &json::array(self.regions.iter().map(|r| r.to_json("region"))),
            )
            .field_raw(
                "processes",
                &json::array(self.processes.iter().map(|r| r.to_json("process"))),
            )
            .finish()
    }
}

impl fmt::Display for CacheReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hits: u64, misses: u64) -> LevelStats {
        LevelStats { hits, misses }
    }

    fn sample() -> CacheReport {
        let mk = |name: &str, l1i: LevelStats| RegionRow {
            name: name.to_owned(),
            levels: [l1i, stats(50, 50), stats(3, 1), stats(9, 1), stats(8, 2)],
        };
        CacheReport {
            benchmark: "demo".to_owned(),
            preset: "tiny".to_owned(),
            totals: [
                stats(900, 100),
                stats(100, 100),
                stats(6, 2),
                stats(18, 2),
                stats(16, 4),
            ],
            regions: vec![
                mk("libdvm.so", stats(800, 50)),
                mk("libc.so", stats(100, 50)),
            ],
            processes: vec![mk("system_server", stats(900, 100))],
        }
    }

    #[test]
    fn miss_rates_divide_correctly() {
        assert_eq!(stats(0, 0).miss_rate(), 0.0);
        assert!((stats(3, 1).miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(stats(3, 1).accesses(), 4);
    }

    #[test]
    fn record_and_absorb_accumulate() {
        let mut s = LevelStats::default();
        s.record(true);
        s.record(false);
        s.absorb(stats(10, 5));
        assert_eq!(s, stats(11, 6));
    }

    #[test]
    fn render_lists_top_regions_and_totals() {
        let r = sample();
        let text = r.render(1);
        assert!(text.contains("preset tiny"));
        assert!(text.contains("libdvm.so"));
        assert!(!text.contains("libc.so")); // truncated by top=1
        assert!(text.contains("and 1 more regions"));
        assert!(text.contains("L1I 900/100 (10.00% miss)"));
        assert!(text.contains("DTLB"));
    }

    #[test]
    fn json_contains_all_levels_and_rows() {
        let j = sample().to_json();
        assert!(j.starts_with(r#"{"benchmark":"demo","preset":"tiny""#));
        for label in ["L1I", "L1D", "L2", "ITLB", "DTLB"] {
            assert!(j.contains(&format!("\"{label}\"")), "missing {label}");
        }
        assert!(j.contains(r#""region":"libdvm.so""#));
        assert!(j.contains(r#""process":"system_server""#));
        assert!(j.contains(r#""miss_rate":0.25"#));
    }

    #[test]
    fn headline_rates_use_totals() {
        let r = sample();
        assert!((r.l1i_miss_rate() - 0.1).abs() < 1e-12);
        assert!((r.l1d_miss_rate() - 0.5).abs() < 1e-12);
        assert!(r.region("libc.so").is_some());
        assert!(r.region("nope").is_none());
    }
}
