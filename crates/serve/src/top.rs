//! `agave top`: a polling terminal view of a live daemon.
//!
//! Each poll issues one `STATS` request (JSON format, notable-filtered
//! flight window), parses the snapshot with the telemetry crate's own
//! JSON parser, and renders a dashboard: request/error rates (deltas
//! between consecutive polls), per-verb totals through the shared
//! [`TimingTable`], per-verb p50/p99 interpolated from the log2 latency
//! buckets, queue state, and the most recent slow/error requests.
//!
//! Parsing lives here (not in the CLI) so it is unit-testable against
//! canned snapshots without a socket.

use agave_telemetry::format::{fmt_ns, TimingTable};
use agave_telemetry::parse::{parse, Value};
use agave_telemetry::HistogramData;
use std::collections::BTreeMap;

/// One flight-recorder record, as parsed from a `recent` array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecentEntry {
    /// Recorder sequence number (newest = highest).
    pub seq: u64,
    /// Client-stamped request id.
    pub id: u64,
    /// Client origin tag.
    pub origin: String,
    /// Request verb name.
    pub verb: String,
    /// Targeted session (may be empty).
    pub tenant: String,
    /// `ok`, `error`, or `retry`.
    pub outcome: String,
    /// Payload bytes (ingested or responded).
    pub bytes: u64,
    /// Queue wait in nanoseconds.
    pub queue_ns: u64,
    /// Handle time in nanoseconds.
    pub handle_ns: u64,
    /// Whether the server marked the request slow.
    pub slow: bool,
}

/// One parsed `STATS` JSON snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSample {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Aggregated histograms, as scraped.
    pub histograms: Vec<HistogramData>,
    /// The flight-recorder window, newest first.
    pub recent: Vec<RecentEntry>,
}

fn u64_field(obj: &Value, key: &str) -> u64 {
    obj.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn str_field(obj: &Value, key: &str) -> String {
    obj.get(key)
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string()
}

impl StatsSample {
    /// Parses a `STATS` JSON response body.
    pub fn parse(json: &str) -> Result<StatsSample, String> {
        let doc = parse(json)?;
        let mut sample = StatsSample::default();
        if let Some(Value::Obj(counters)) = doc.get("counters") {
            for (name, v) in counters {
                sample
                    .counters
                    .insert(name.clone(), v.as_u64().unwrap_or(0));
            }
        }
        if let Some(Value::Obj(gauges)) = doc.get("gauges") {
            for (name, v) in gauges {
                sample.gauges.insert(name.clone(), v.as_u64().unwrap_or(0));
            }
        }
        for h in doc
            .get("histograms")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let buckets = h
                .get("buckets")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_u64()? as u8, pair.get(1)?.as_u64()?))
                })
                .collect();
            sample.histograms.push(HistogramData {
                name: str_field(h, "name"),
                count: u64_field(h, "count"),
                sum: u64_field(h, "sum"),
                buckets,
            });
        }
        for r in doc.get("recent").and_then(Value::as_array).unwrap_or(&[]) {
            sample.recent.push(RecentEntry {
                seq: u64_field(r, "seq"),
                id: u64_field(r, "id"),
                origin: str_field(r, "origin"),
                verb: str_field(r, "verb"),
                tenant: str_field(r, "tenant"),
                outcome: str_field(r, "outcome"),
                bytes: u64_field(r, "bytes"),
                queue_ns: u64_field(r, "queue_ns"),
                handle_ns: u64_field(r, "handle_ns"),
                slow: matches!(r.get("slow"), Some(Value::Bool(true))),
            });
        }
        Ok(sample)
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    fn histogram(&self, name: &str) -> Option<&HistogramData> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Latency histogram values are recorded in microseconds; scale an
/// interpolated quantile back to nanoseconds for display.
fn quantile_ns(h: &HistogramData, q: f64) -> u64 {
    (h.quantile_interp(q) * 1_000.0) as u64
}

/// Renders one dashboard frame. `prev` (the previous poll) and
/// `elapsed_secs` between the polls turn monotonic counters into rates;
/// the first frame prints totals only.
pub fn render_dashboard(
    addr: &str,
    prev: Option<&StatsSample>,
    cur: &StatsSample,
    elapsed_secs: f64,
) -> String {
    let requests = cur.counter("serve.requests");
    let errors = cur.counter("serve.request_errors");
    let mut out = format!(
        "agave top — {addr}\n{} requests · {} uploads · {} analyses · {} sweeps · {} rejects · {} errors\n",
        requests,
        cur.counter("serve.uploads"),
        cur.counter("serve.analyses"),
        cur.counter("serve.sweeps"),
        cur.counter("serve.rejects"),
        errors,
    );
    if let Some(prev) = prev {
        let d_req = requests.saturating_sub(prev.counter("serve.requests"));
        let d_err = errors.saturating_sub(prev.counter("serve.request_errors"));
        let rate = if elapsed_secs > 0.0 {
            d_req as f64 / elapsed_secs
        } else {
            0.0
        };
        let err_rate = if d_req > 0 {
            100.0 * d_err as f64 / d_req as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{rate:.1} req/s · {err_rate:.1}% errors (last {elapsed_secs:.1}s)\n"
        ));
    }
    out.push_str(&format!(
        "queue {} deep · {} sessions stored\n",
        cur.gauge("serve.queue"),
        cur.gauge("serve.active_sessions"),
    ));

    let mut table = TimingTable::new();
    let mut quantiles = String::new();
    for h in &cur.histograms {
        let Some(verb) = h.name.strip_prefix("serve.latency.") else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        // Histogram values are µs; the table wants ns and "refs"
        // (requests here).
        table.row(verb, h.sum.saturating_mul(1_000), h.count);
        quantiles.push_str(&format!(
            "  {:<10} p50 {:>10}   p99 {:>10}\n",
            verb,
            fmt_ns(quantile_ns(h, 0.5)),
            fmt_ns(quantile_ns(h, 0.99)),
        ));
    }
    out.push('\n');
    out.push_str(&table.render("per-verb totals (wall = handle time)", "all verbs"));
    if !quantiles.is_empty() {
        out.push_str("\nper-verb latency (interpolated from log2 buckets)\n");
        out.push_str(&quantiles);
    }
    if let Some(wait) = cur.histogram("serve.queue_wait") {
        if wait.count > 0 {
            out.push_str(&format!(
                "queue wait   p50 {:>10}   p99 {:>10}\n",
                fmt_ns(quantile_ns(wait, 0.5)),
                fmt_ns(quantile_ns(wait, 0.99)),
            ));
        }
    }
    if !cur.recent.is_empty() {
        out.push_str("\nrecent slow/error requests (newest first)\n");
        for r in cur.recent.iter().take(10) {
            out.push_str(&format!(
                "  #{:<8} {:<8} {:<16} {:<6} {:>10} queued {:>9} ran {:>9}{}\n",
                r.id,
                r.verb,
                if r.tenant.is_empty() { "-" } else { &r.tenant },
                r.outcome,
                format!("{} B", r.bytes),
                fmt_ns(r.queue_ns),
                fmt_ns(r.handle_ns),
                if r.slow { "  SLOW" } else { "" },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned STATS response: what a daemon that handled a few
    /// requests would return.
    fn canned() -> String {
        concat!(
            "{\"schema_version\":1,\"tool\":\"agave-telemetry\",",
            "\"counters\":{\"serve.analyses\":2,\"serve.request_errors\":1,",
            "\"serve.requests\":8,\"serve.uploads\":1},",
            "\"gauges\":{\"serve.active_sessions\":1,\"serve.queue\":3},",
            "\"histograms\":[",
            "{\"name\":\"serve.latency.analyze\",\"count\":2,\"sum\":3000,",
            "\"buckets\":[[11,2]]},",
            "{\"name\":\"serve.queue_wait\",\"count\":8,\"sum\":80,",
            "\"buckets\":[[4,8]]}",
            "],\"spans\":[],\"traceEvents\":[],",
            "\"recent\":[{\"seq\":9,\"id\":41,\"origin\":\"agave/7\",",
            "\"verb\":\"analyze\",\"tenant\":\"sess-a\",\"outcome\":\"error\",",
            "\"bytes\":120,\"queue_ns\":1500,\"handle_ns\":2500000,",
            "\"slow\":true}]}"
        )
        .to_string()
    }

    #[test]
    fn samples_parse_counters_histograms_and_recent() {
        let sample = StatsSample::parse(&canned()).unwrap();
        assert_eq!(sample.counter("serve.requests"), 8);
        assert_eq!(sample.gauge("serve.queue"), 3);
        let h = sample.histogram("serve.latency.analyze").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![(11, 2)]);
        assert_eq!(sample.recent.len(), 1);
        let r = &sample.recent[0];
        assert_eq!(r.id, 41);
        assert_eq!(r.verb, "analyze");
        assert!(r.slow);
        assert!(StatsSample::parse("not json").is_err());
    }

    #[test]
    fn dashboard_shows_rates_quantiles_and_recent_rows() {
        let cur = StatsSample::parse(&canned()).unwrap();
        let mut prev = cur.clone();
        prev.counters.insert("serve.requests".to_string(), 4);
        prev.counters.insert("serve.request_errors".to_string(), 0);
        let frame = render_dashboard("127.0.0.1:4950", Some(&prev), &cur, 2.0);
        assert!(frame.contains("agave top — 127.0.0.1:4950"), "{frame}");
        assert!(frame.contains("2.0 req/s"), "{frame}");
        assert!(frame.contains("25.0% errors"), "{frame}");
        assert!(frame.contains("queue 3 deep"), "{frame}");
        assert!(frame.contains("analyze"), "{frame}");
        assert!(frame.contains("p50"), "{frame}");
        assert!(frame.contains("#41"), "{frame}");
        assert!(frame.contains("SLOW"), "{frame}");
        // First poll: totals only, no rate line.
        let first = render_dashboard("x", None, &cur, 0.0);
        assert!(!first.contains("req/s"), "{first}");
    }
}
