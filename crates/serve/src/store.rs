//! The sharded session registry: named, validated, on-disk traces.
//!
//! Uploaded traces are spooled to disk (never held in memory) and
//! registered here by client-chosen name. The registry is sharded the
//! same way the telemetry metrics are — name-hashed across independent
//! mutexes — so concurrent workers touching different sessions almost
//! never contend, and no lock is held across any I/O.

use crate::protocol::SessionInfo;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of registry shards (power of two; the pick is a mask).
const SHARDS: usize = 8;

/// One stored session: its wire-visible info plus the spool file.
#[derive(Debug, Clone)]
pub struct SessionMeta {
    /// The listing/acknowledgment row.
    pub info: SessionInfo,
    /// Where the validated trace lives on disk.
    pub path: PathBuf,
}

/// The server's session registry plus its spool directory.
#[derive(Debug)]
pub struct TraceStore {
    spool: PathBuf,
    /// Remove the spool directory on drop (it was auto-created).
    own_spool: bool,
    shards: [Mutex<BTreeMap<String, SessionMeta>>; SHARDS],
    seq: AtomicU64,
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; same discipline as the trace checksum.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

impl TraceStore {
    /// Opens a store spooling into `dir`, or into a fresh per-process
    /// temp directory (removed when the store drops) when `None`.
    pub fn new(dir: Option<PathBuf>) -> std::io::Result<Self> {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let (spool, own_spool) = match dir {
            Some(d) => (d, false),
            None => {
                let mut d = std::env::temp_dir();
                d.push(format!(
                    "agave-serve-spool-{}-{}",
                    std::process::id(),
                    STORE_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                (d, true)
            }
        };
        std::fs::create_dir_all(&spool)?;
        Ok(TraceStore {
            spool,
            own_spool,
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            seq: AtomicU64::new(0),
        })
    }

    /// The spool directory uploads land in.
    pub fn spool_dir(&self) -> &Path {
        &self.spool
    }

    /// A fresh spool path for an incoming upload of session `name`.
    /// Sequence-numbered so a re-upload never truncates the file a
    /// concurrent analysis may be streaming.
    pub fn spool_file(&self, name: &str) -> PathBuf {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.spool.join(format!("{seq:06}-{safe}.agtrace"))
    }

    /// Registers (or replaces) a session. A replaced session's spool
    /// file is deleted.
    pub fn insert(&self, meta: SessionMeta) {
        let old = self.shards[shard_of(&meta.info.name)]
            .lock()
            .expect("session shard poisoned")
            .insert(meta.info.name.clone(), meta);
        if let Some(old) = old {
            std::fs::remove_file(&old.path).ok();
        }
    }

    /// Looks up a session by name.
    pub fn get(&self, name: &str) -> Option<SessionMeta> {
        self.shards[shard_of(name)]
            .lock()
            .expect("session shard poisoned")
            .get(name)
            .cloned()
    }

    /// Every stored session's info, sorted by name.
    pub fn list(&self) -> Vec<SessionInfo> {
        let mut out: Vec<SessionInfo> = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .expect("session shard poisoned")
                    .values()
                    .map(|m| m.info.clone()),
            );
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of stored sessions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("session shard poisoned").len())
            .sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for TraceStore {
    fn drop(&mut self) {
        if self.own_spool {
            std::fs::remove_dir_all(&self.spool).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str) -> SessionInfo {
        SessionInfo {
            name: name.to_owned(),
            label: "demo".to_owned(),
            file_bytes: 10,
            records: 1,
            words: 2,
            chunks: 1,
        }
    }

    #[test]
    fn insert_get_list_are_consistent_and_sorted() {
        let store = TraceStore::new(None).unwrap();
        for name in ["zeta", "alpha", "mid"] {
            let path = store.spool_file(name);
            std::fs::write(&path, b"x").unwrap();
            store.insert(SessionMeta {
                info: info(name),
                path,
            });
        }
        assert_eq!(store.len(), 3);
        assert!(store.get("alpha").is_some());
        assert!(store.get("nope").is_none());
        let names: Vec<String> = store.list().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn reupload_replaces_and_removes_the_old_spool_file() {
        let store = TraceStore::new(None).unwrap();
        let first = store.spool_file("same");
        std::fs::write(&first, b"old").unwrap();
        store.insert(SessionMeta {
            info: info("same"),
            path: first.clone(),
        });
        let second = store.spool_file("same");
        assert_ne!(first, second, "spool paths must be sequence-unique");
        std::fs::write(&second, b"new").unwrap();
        store.insert(SessionMeta {
            info: info("same"),
            path: second.clone(),
        });
        assert_eq!(store.len(), 1);
        assert!(!first.exists(), "replaced spool file must be deleted");
        assert!(second.exists());
    }

    #[test]
    fn auto_spool_dir_is_removed_on_drop() {
        let store = TraceStore::new(None).unwrap();
        let dir = store.spool_dir().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }

    #[test]
    fn concurrent_inserts_across_shards_do_not_lose_sessions() {
        let store = TraceStore::new(None).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50 {
                        let name = format!("t{t}-s{i}");
                        let path = store.spool_file(&name);
                        std::fs::write(&path, b"x").unwrap();
                        store.insert(SessionMeta {
                            info: info(&name),
                            path,
                        });
                    }
                });
            }
        });
        assert_eq!(store.len(), 400);
    }
}
