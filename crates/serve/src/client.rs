//! The client side of the wire protocol.
//!
//! Each call opens one connection, sends one request frame, and reads
//! one response frame — mirroring the server's one-request-per-
//! connection discipline. Uploads stream the trace file through
//! `io::copy`'s fixed buffer, so client memory stays bounded no matter
//! the trace size.
//!
//! The `*_once` methods surface [`Response::Retry`] verbatim (tests and
//! the load bench want to *see* backpressure); the plain methods loop
//! on RETRY, sleeping the server-suggested back-off, up to a retry
//! budget.

use crate::flight::RecentFilter;
use crate::protocol::{
    decode_response, decode_session, decode_sessions, encode_analyze, encode_list, encode_ping,
    encode_request, encode_shutdown, encode_stats, encode_sweep, encode_upload_header, read_frame,
    write_frame, Analysis, RequestMeta, Response, SessionInfo, StatsFormat, WireError,
    MAX_CONTROL_FRAME,
};
use std::fmt;
use std::io::{self, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide monotonic request-id source: every wire request this
/// process sends — across all [`Client`] handles and retries — gets a
/// distinct id, so server-side flight records are unambiguous.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Claims the next request id (monotonic, nonzero, process-wide).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or speak to the server.
    Wire(WireError),
    /// The server answered with an ERR frame.
    Server(String),
    /// The server kept answering RETRY past the retry budget.
    Saturated {
        /// Attempts made before giving up.
        attempts: u32,
        /// The server's last RETRY message.
        message: String,
    },
    /// A local file problem (e.g. the trace to upload is unreadable).
    Local(io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Saturated { attempts, message } => {
                write!(f, "server saturated after {attempts} attempts: {message}")
            }
            ClientError::Local(e) => write!(f, "local i/o error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A client handle: just the server address; every request dials fresh.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// RETRY responses tolerated before [`ClientError::Saturated`].
    pub max_retries: u32,
    /// Origin tag stamped into every request's [`RequestMeta`].
    /// Defaults to `agave/<pid>`.
    pub origin: String,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `"127.0.0.1:4950"`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            max_retries: 20,
            origin: format!("agave/{}", std::process::id()),
        }
    }

    /// A client with an explicit origin tag (shows up in server spans
    /// and `STATS --recent` records).
    pub fn with_origin(addr: impl Into<String>, origin: impl Into<String>) -> Client {
        let mut client = Client::new(addr);
        client.origin = origin.into();
        client
    }

    /// Fresh meta for one wire request. Each retry attempt is a new
    /// request on the wire, so each gets its own id.
    fn meta(&self) -> RequestMeta {
        RequestMeta {
            id: next_request_id(),
            origin: self.origin.clone(),
        }
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(120)))?;
        Ok(stream)
    }

    /// One full exchange for an in-memory verb payload (meta prepended
    /// here).
    fn roundtrip(&self, verb_payload: &[u8]) -> Result<Response, ClientError> {
        let mut stream = self.connect()?;
        write_frame(&mut stream, &encode_request(&self.meta(), verb_payload))?;
        let frame = read_frame(&mut stream, MAX_CONTROL_FRAME)?;
        Ok(decode_response(&frame)?)
    }

    /// Runs `attempt` until it stops answering RETRY, sleeping the
    /// server-suggested back-off between tries. Transient connect-level
    /// failures (refused, reset, ephemeral-port exhaustion — routine on
    /// a loopback being hammered by a parallel test suite or a busy
    /// host) count as backpressure and retry against the same budget;
    /// only persistent wire failures surface as errors.
    fn with_retry(
        &self,
        mut attempt: impl FnMut() -> Result<Response, ClientError>,
    ) -> Result<Vec<u8>, ClientError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let response = match attempt() {
                Ok(response) => response,
                Err(ClientError::Wire(WireError::Io(e)))
                    if transient_connect(&e) && attempts <= self.max_retries =>
                {
                    Response::Retry {
                        after_ms: 10 * attempts,
                        message: format!("transient connect failure: {e}"),
                    }
                }
                Err(other) => return Err(other),
            };
            match response {
                Response::Ok(body) => return Ok(body),
                Response::Err(message) => return Err(ClientError::Server(message)),
                Response::Retry { after_ms, message } => {
                    if attempts > self.max_retries {
                        return Err(ClientError::Saturated { attempts, message });
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(after_ms)));
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.with_retry(|| self.roundtrip(&encode_ping()))
            .map(|_| ())
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.with_retry(|| self.roundtrip(&encode_shutdown()))
            .map(|_| ())
    }

    /// Lists stored sessions, sorted by name.
    pub fn list(&self) -> Result<Vec<SessionInfo>, ClientError> {
        let body = self.with_retry(|| self.roundtrip(&encode_list()))?;
        Ok(decode_sessions(&body)?)
    }

    /// Uploads the `.agtrace` at `path` as session `name`, retrying on
    /// backpressure. Returns the server's acknowledgment.
    pub fn upload(&self, name: &str, path: &Path) -> Result<SessionInfo, ClientError> {
        let body = self.with_retry(|| self.upload_once(name, path))?;
        Ok(decode_session(&body)?)
    }

    /// One upload attempt; RETRY comes back verbatim.
    ///
    /// A server shedding load answers RETRY *and closes* while the
    /// client may still be streaming trace bytes, so the client can hit
    /// a broken pipe before it ever reads the frame. A connection
    /// dropped mid-upload is therefore reported as a RETRY, not an
    /// error — bounded by the usual retry budget.
    pub fn upload_once(&self, name: &str, path: &Path) -> Result<Response, ClientError> {
        let mut file = std::fs::File::open(path).map_err(ClientError::Local)?;
        let file_len = file.metadata().map_err(ClientError::Local)?.len();
        let header = encode_request(&self.meta(), &encode_upload_header(name));
        let frame_len = header.len() as u64 + file_len;
        if frame_len > u64::from(u32::MAX) {
            return Err(ClientError::Local(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace too large for one frame ({file_len} bytes)"),
            )));
        }
        let mut stream = self.connect()?;
        let attempt = (|| -> Result<Response, ClientError> {
            stream.write_all(&(frame_len as u32).to_le_bytes())?;
            stream.write_all(&header)?;
            let copied = io::copy(&mut file, &mut stream)?;
            if copied != file_len {
                return Err(ClientError::Local(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("trace shrank mid-upload ({copied} of {file_len} bytes)"),
                )));
            }
            stream.flush()?;
            let frame = read_frame(&mut stream, MAX_CONTROL_FRAME)?;
            Ok(decode_response(&frame)?)
        })();
        match attempt {
            Err(ClientError::Wire(WireError::Io(e))) if dropped_mid_stream(&e) => {
                Ok(Response::Retry {
                    after_ms: 20,
                    message: format!("connection dropped mid-upload ({e}); server shedding load"),
                })
            }
            other => other,
        }
    }

    /// Runs `analysis` against stored session `name`, retrying on
    /// backpressure. Returns the server-rendered JSON text.
    pub fn analyze(&self, name: &str, analysis: &Analysis) -> Result<String, ClientError> {
        let body = self.with_retry(|| self.analyze_once(name, analysis))?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Wire(WireError::Malformed("analysis not UTF-8".into())))
    }

    /// One analyze attempt; RETRY comes back verbatim.
    pub fn analyze_once(&self, name: &str, analysis: &Analysis) -> Result<Response, ClientError> {
        self.roundtrip(&encode_analyze(name, analysis))
    }

    /// Runs a design-space sweep (`size=..:assoc=..:line=..` grid)
    /// against stored session `name`, retrying on backpressure.
    /// Returns the server-rendered sweep JSON.
    pub fn sweep(&self, name: &str, grid: &str) -> Result<String, ClientError> {
        let body = self.with_retry(|| self.sweep_once(name, grid))?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Wire(WireError::Malformed("sweep not UTF-8".into())))
    }

    /// One sweep attempt; RETRY comes back verbatim.
    pub fn sweep_once(&self, name: &str, grid: &str) -> Result<Response, ClientError> {
        self.roundtrip(&encode_sweep(name, grid))
    }

    /// Scrapes the daemon's live telemetry. Returns the rendered text:
    /// the native JSON schema (with a `recent` flight-recorder array
    /// appended) or Prometheus exposition. `recent` bounds the
    /// flight-recorder window; `filter` narrows it to errors/slow
    /// requests.
    pub fn stats(
        &self,
        format: StatsFormat,
        recent: u64,
        filter: RecentFilter,
    ) -> Result<String, ClientError> {
        let body = self.with_retry(|| self.roundtrip(&encode_stats(format, recent, filter)))?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Wire(WireError::Malformed("stats not UTF-8".into())))
    }

    /// Reads the raw response to an arbitrary prebuilt verb payload
    /// (the load bench uses this to measure rejects without retry
    /// logic). Meta is prepended like every other request.
    pub fn raw(&self, verb_payload: &[u8]) -> Result<Response, ClientError> {
        self.roundtrip(verb_payload)
    }
}

/// Whether an I/O failure is a transient connect-level fault worth
/// retrying: the listener's backlog overflowed (refused/reset) or the
/// client side ran out of ephemeral ports (`EADDRNOTAVAIL`). Both
/// clear in milliseconds on a live host.
fn transient_connect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::AddrNotAvailable
    )
}

/// Whether an I/O failure means the peer hung up mid-stream (the
/// load-shedding signature) rather than a local fault.
fn dropped_mid_stream(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
    )
}

/// Renders a session table the way `agave client list` prints it.
pub fn render_sessions(sessions: &[SessionInfo]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>10} {:>8}  label\n",
        "session", "bytes", "words", "records", "chunks"
    ));
    for s in sessions {
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>10} {:>8}  {}\n",
            s.name, s.file_bytes, s.words, s.records, s.chunks, s.label
        ));
    }
    if sessions.is_empty() {
        out.push_str("(no sessions stored)\n");
    }
    out
}
