//! agave-serve: a multi-tenant trace replay & analysis daemon.
//!
//! The suite's recorder (`agave record`) produces `.agtrace` files and
//! replays them locally with byte-identical results. This crate turns
//! that contract into a service: a zero-dependency TCP daemon that
//! accepts trace uploads from many clients at once, stores them in a
//! sharded session registry, and answers analysis requests — the
//! recorded run's `RunSummary`, a cache-hierarchy replay against a
//! named geometry preset, or a bounded-memory streaming *sketch*
//! (heavy-hitter regions + inter-reference delta quantiles) for traces
//! larger than the server's RAM.
//!
//! The moving parts, bottom-up:
//!
//! - [`protocol`] — length-prefixed binary frames; uploads streamed,
//!   responses bounded by [`protocol::MAX_CONTROL_FRAME`].
//! - [`sketch`] — space-saving heavy hitters and log2 quantiles with
//!   documented error bounds, fed through the standard
//!   [`ReferenceSink`](agave_trace::ReferenceSink) batch path.
//! - [`store`] — the name-sharded on-disk session registry.
//! - [`server`] — bounded accept queue (full ⇒ RETRY with a suggested
//!   back-off, never unbounded buffering), worker pool over
//!   [`agave_trace::par::parallel_map`], per-request telemetry.
//! - [`client`] — the same codec from the dialing side, with
//!   retry-on-backpressure helpers.
//!
//! Responses are byte-identical to local replay: the server renders
//! the exact JSON `agave replay` would print, and the integration
//! tests assert equality byte-for-byte.

pub mod client;
pub mod flight;
pub mod protocol;
pub mod server;
pub mod store;
pub mod top;

/// The streaming sketches now live in the analysis registry crate
/// (`agave-analysis`); re-exported here so existing `agave_serve::sketch`
/// paths keep working.
pub use agave_analysis::sketch;

pub use client::{next_request_id, render_sessions, Client, ClientError};
pub use flight::{FlightRecorder, RecentFilter, RequestRecord};
pub use protocol::{Analysis, RequestMeta, Response, SessionInfo, StatsFormat, WireError};
pub use server::{analyze_trace, analyze_trace_jobs, ServeConfig, ServeStats, Server};
pub use sketch::{SketchReport, SketchSink};
pub use store::{SessionMeta, TraceStore};
pub use top::{render_dashboard, RecentEntry, StatsSample};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Records a tiny workload to a trace file under `dir`.
    fn record_fixture(dir: &std::path::Path, stem: &str) -> PathBuf {
        use agave_replay::TraceWriter;
        use agave_trace::{RefKind, SharedSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let path = dir.join(format!("{stem}.agtrace"));
        let mut t = Tracer::new();
        let pid = t.register_process("app_process");
        let tid = t.register_thread(pid, "main");
        let code = t.intern_region("[app].text");
        let heap = t.intern_region("[heap]");
        let baseline = t.counter_snapshot();
        let writer = Rc::new(RefCell::new(TraceWriter::create(&path, stem).unwrap()));
        t.add_sink(writer.clone() as SharedSink);
        for i in 0..5000u64 {
            t.charge_at(pid, tid, code, RefKind::InstrFetch, 0x1000 + 4 * i, 1);
            if i % 3 == 0 {
                t.charge_at(pid, tid, heap, RefKind::DataRead, 0x8000_0000 + 8 * i, 2);
            }
        }
        t.flush_sinks();
        writer
            .borrow_mut()
            .finish(&t.name_directory(), &baseline)
            .unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("agave-serve-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn upload_list_analyze_shutdown_end_to_end() {
        let dir = temp_dir("e2e");
        let trace = record_fixture(&dir, "fixture");
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            jobs: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| server.run());
            let client = Client::new(addr.clone());
            client.ping().unwrap();

            let ack = client.upload("sess-a", &trace).unwrap();
            assert_eq!(ack.name, "sess-a");
            assert_eq!(ack.label, "fixture");
            assert!(ack.words > 0 && ack.records > 0 && ack.chunks > 0);

            let listed = client.list().unwrap();
            assert_eq!(listed, vec![ack]);

            let remote = client.analyze("sess-a", &Analysis::Summary).unwrap();
            let local = agave_replay::replay_summary(&trace, 1).unwrap().to_json();
            assert_eq!(remote, local, "served summary must be byte-identical");

            let sketch = client.analyze("sess-a", &Analysis::Sketch).unwrap();
            assert!(sketch.contains("\"heavy_regions\""), "got {sketch}");

            let grid_spec = "size=1k,2k:assoc=2:line=16";
            let swept = client.sweep("sess-a", grid_spec).unwrap();
            let grid = agave_analysis::GridSpec::parse(grid_spec).unwrap();
            let local = agave_analysis::sweep_path(&trace, &grid, 2).unwrap();
            assert_eq!(
                swept,
                local.to_json(),
                "served sweep must equal local sweep for any jobs"
            );

            let err = client.analyze("missing", &Analysis::Summary).unwrap_err();
            assert!(matches!(err, ClientError::Server(_)), "got {err}");
            let err = client.sweep("sess-a", "size=bogus").unwrap_err();
            assert!(matches!(err, ClientError::Server(_)), "got {err}");

            client.shutdown().unwrap();
            let stats = daemon.join().unwrap();
            assert_eq!(stats.uploads, 1);
            assert!(stats.analyses >= 2);
            assert_eq!(stats.rejects, 0);
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_uploads_are_rejected_and_not_stored() {
        let dir = temp_dir("corrupt");
        let trace = record_fixture(&dir, "good");
        let mut bytes = std::fs::read(&trace).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let bad = dir.join("bad.agtrace");
        std::fs::write(&bad, &bytes).unwrap();

        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            jobs: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| server.run());
            let client = Client::new(addr.clone());
            let err = client.upload("bad", &bad).unwrap_err();
            assert!(
                matches!(&err, ClientError::Server(m) if m.contains("upload rejected")),
                "got {err}"
            );
            assert!(
                client.list().unwrap().is_empty(),
                "rejected upload must not be stored"
            );
            client.shutdown().unwrap();
            let stats = daemon.join().unwrap();
            assert_eq!(stats.uploads, 0);
            assert!(stats.errors >= 1);
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_queue_answers_retry_and_clients_recover() {
        let dir = temp_dir("retry");
        let trace = record_fixture(&dir, "pressure");
        // One slow worker + a one-slot queue: concurrent clients are
        // guaranteed to find the queue full and be told to back off.
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            jobs: 1,
            queue_cap: 1,
            retry_after_ms: 5,
            handle_delay_ms: 30,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| server.run());
            std::thread::scope(|clients| {
                for i in 0..6 {
                    let addr = addr.clone();
                    let trace = trace.clone();
                    clients.spawn(move || {
                        let client = Client::new(addr);
                        client.upload(&format!("c{i}"), &trace).unwrap();
                    });
                }
            });
            let client = Client::new(addr.clone());
            assert_eq!(client.list().unwrap().len(), 6, "every client must recover");
            client.shutdown().unwrap();
            let stats = daemon.join().unwrap();
            assert_eq!(stats.uploads, 6);
            assert!(
                stats.rejects > 0,
                "six concurrent clients against a one-slot queue must see RETRY"
            );
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
