//! The daemon: a bounded-queue TCP accept loop feeding a
//! `parallel_map` worker pool.
//!
//! # Threading and backpressure
//!
//! One acceptor thread owns the listener. Accepted connections go into a
//! bounded queue; `jobs` workers (spawned through the same work-stealing
//! [`parallel_map`](agave_trace::par::parallel_map) that runs the
//! parallel suite) pop and handle one request each. When the queue is
//! full the acceptor *immediately* answers `RETRY` with a suggested
//! back-off and closes — explicit rejection, never unbounded buffering,
//! so a flood of clients costs the server one small write per excess
//! connection instead of memory.
//!
//! # Bounded ingest memory
//!
//! Uploads are streamed from the socket to the spool file through
//! `io::copy`'s fixed buffer, then validated with
//! [`TraceBuffer::validate`] (a checksum walk that decodes nothing,
//! fanned out across `decode_jobs` workers). Analyses replay from disk
//! through the same chunked `SINK_BATCH` delivery path as local
//! replay. Steady-state server memory is
//! `O(jobs × copy-buffer + queue length + sketch capacity)` regardless
//! of trace size (validation briefly holds one trace in memory) — the
//! `serve_load` bench uploads and sketches a trace far larger than the
//! steady-state bounds to prove it.

use crate::flight::{FlightRecorder, RequestRecord};
use crate::protocol::{
    decode_analyze, decode_stats, decode_sweep, encode_response, encode_session, encode_sessions,
    read_frame_len, read_meta_stream, read_varint_stream, verb_name, write_frame, Analysis,
    RequestMeta, Response, SessionInfo, StatsFormat, WireError, MAX_CONTROL_FRAME, MAX_NAME,
    V_ANALYZE, V_LIST, V_PING, V_SHUTDOWN, V_STATS, V_SWEEP, V_UPLOAD,
};
use crate::store::{SessionMeta, TraceStore};
use agave_analysis::GridSpec;
use agave_replay::TraceBuffer;
use agave_telemetry::metrics::{counter, gauge, histogram, Histogram};
use agave_telemetry::TelemetrySnapshot;
use agave_trace::par::{effective_jobs, parallel_map};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the daemon binds, scales, and pushes back.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:4950"` (`:0` for an ephemeral
    /// port — read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests (0 = one per CPU).
    pub jobs: usize,
    /// Accepted-connection queue capacity; beyond it clients get RETRY.
    pub queue_cap: usize,
    /// Back-off suggested to rejected clients, in milliseconds.
    pub retry_after_ms: u32,
    /// Spool directory for uploaded traces (`None` = a fresh temp dir,
    /// removed on shutdown).
    pub spool: Option<PathBuf>,
    /// Artificial per-request handling delay. Zero in production; tests
    /// and the load bench raise it to force the queue to fill
    /// deterministically.
    pub handle_delay_ms: u64,
    /// Decode threads *within* one ANALYZE/SWEEP/upload-validate request
    /// (0 = one per CPU). Defaults to 1: server concurrency normally
    /// comes from serving many requests, not one request hogging every
    /// core. Raise it for single-tenant servers fronting huge traces.
    pub decode_jobs: usize,
    /// Flight-recorder capacity: how many recent request records the
    /// main ring keeps (`--flight-capacity`).
    pub flight_capacity: usize,
    /// Requests handled slower than this are marked slow and retained
    /// preferentially in the flight recorder (`--slow-ms`).
    pub slow_ms: u64,
    /// Per-request tracing: registry metrics, spans, and the flight
    /// recorder. On by default; the serve_load bench turns it off to
    /// measure the overhead.
    pub trace_requests: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4950".to_owned(),
            jobs: 0,
            queue_cap: 64,
            retry_after_ms: 50,
            spool: None,
            handle_delay_ms: 0,
            decode_jobs: 1,
            flight_capacity: 1024,
            slow_ms: 100,
            trace_requests: true,
        }
    }
}

/// Counters the daemon keeps unconditionally — even with
/// `trace_requests` off — and reports when [`Server::run`] returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted (including rejected ones).
    pub connections: u64,
    /// Successful uploads.
    pub uploads: u64,
    /// Successful analyses.
    pub analyses: u64,
    /// Connections answered with RETRY because the queue was full.
    pub rejects: u64,
    /// Requests that failed (bad frames, unknown sessions, corrupt
    /// uploads, I/O errors mid-request).
    pub errors: u64,
    /// Raw trace bytes spooled to disk.
    pub bytes_ingested: u64,
}

#[derive(Default)]
struct AtomicStats {
    connections: AtomicU64,
    uploads: AtomicU64,
    analyses: AtomicU64,
    rejects: AtomicU64,
    errors: AtomicU64,
    bytes_ingested: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            uploads: self.uploads.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_ingested: self.bytes_ingested.load(Ordering::Relaxed),
        }
    }
}

/// One accepted connection waiting for a worker, stamped with its
/// enqueue time and the depth it saw (for queue-wait telemetry).
struct QueueEntry {
    conn: TcpStream,
    depth: usize,
    enqueued: Instant,
}

/// The bounded accepted-connection queue.
struct ConnQueue {
    state: Mutex<(VecDeque<QueueEntry>, bool)>,
    cv: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `s`, or returns it when the queue is full (the caller
    /// rejects). Returns the depth after the push.
    fn push(&self, s: TcpStream) -> Result<usize, TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        if state.0.len() >= self.cap {
            return Err(s);
        }
        let depth = state.0.len() + 1;
        state.0.push_back(QueueEntry {
            conn: s,
            depth,
            enqueued: Instant::now(),
        });
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<QueueEntry> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        loop {
            if let Some(s) = state.0.pop_front() {
                return Some(s);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).expect("conn queue poisoned");
        }
    }

    /// Current depth (heartbeat/gauge reads; racy by nature, fine).
    fn len(&self) -> usize {
        self.state.lock().expect("conn queue poisoned").0.len()
    }

    fn close(&self) {
        self.state.lock().expect("conn queue poisoned").1 = true;
        self.cv.notify_all();
    }
}

/// The multi-tenant replay/analysis daemon.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    store: TraceStore,
    queue: Arc<ConnQueue>,
    shutdown: AtomicBool,
    accept_done: AtomicBool,
    stats: Arc<AtomicStats>,
    flight: FlightRecorder,
}

impl Server {
    /// Binds the listener and opens the spool; does not serve yet.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let store = TraceStore::new(config.spool.clone())?;
        let queue = Arc::new(ConnQueue::new(config.queue_cap));
        let flight = FlightRecorder::new(
            config.flight_capacity,
            config.slow_ms.saturating_mul(1_000_000),
        );
        Ok(Server {
            listener,
            config,
            store,
            queue,
            shutdown: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
            stats: Arc::new(AtomicStats::default()),
            flight,
        })
    }

    /// The bound address (resolves `:0` ephemeral-port binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Serves until a client sends SHUTDOWN, then drains the queue and
    /// returns the run's [`ServeStats`]. Workers fan out through
    /// [`parallel_map`]; the acceptor runs beside them. With telemetry
    /// enabled a once-a-second heartbeat line on stderr shows the
    /// daemon is alive (connections, rejects, errors, queue depth).
    pub fn run(&self) -> ServeStats {
        let jobs = effective_jobs(self.config.jobs);
        let ticker = agave_telemetry::Ticker::start({
            let stats = Arc::clone(&self.stats);
            let queue = Arc::clone(&self.queue);
            let started = Instant::now();
            move || {
                let s = stats.snapshot();
                format!(
                    "[agave-serve] up {} · {} conns · {} uploads · {} analyses · {} rejected · {} errors · queue {}",
                    agave_telemetry::format::fmt_ns(started.elapsed().as_nanos() as u64),
                    s.connections,
                    s.uploads,
                    s.analyses,
                    s.rejects,
                    s.errors,
                    queue.len(),
                )
            }
        });
        std::thread::scope(|scope| {
            let acceptor = scope.spawn(|| self.accept_loop());
            parallel_map(jobs, jobs, |_| self.worker_loop());
            acceptor.join().expect("acceptor panicked");
        });
        ticker.finish();
        self.stats.snapshot()
    }

    fn accept_loop(&self) {
        loop {
            let conn = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.stats.connections.fetch_add(1, Ordering::Relaxed);
            // Registry metrics for accepted requests are recorded by the
            // worker once the verb is known, so STATS scrapes can stay
            // invisible to the registry (byte-stable idle snapshots).
            if let Err(conn) = self.queue.push(conn) {
                self.reject(conn);
            }
        }
        self.accept_done.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Pops the acceptor out of its blocking `accept` after the
    /// shutdown flag is up. A single fire-and-forget connect is not
    /// enough: under heavy loopback churn (the test suite, a saturated
    /// host) the connect can transiently fail with `EADDRNOTAVAIL` and
    /// the wake is lost, leaving the acceptor parked in `accept`
    /// forever. So keep knocking until the acceptor confirms it exited.
    fn wake_acceptor(&self) {
        let addr = self.local_addr();
        while !self.accept_done.load(Ordering::SeqCst) {
            TcpStream::connect_timeout(&addr, Duration::from_millis(250)).ok();
            if self.accept_done.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Answers a connection the queue has no room for: one RETRY frame,
    /// then close. The write gets a short timeout so a stalled client
    /// cannot wedge the acceptor.
    fn reject(&self, conn: TcpStream) {
        self.stats.rejects.fetch_add(1, Ordering::Relaxed);
        if self.config.trace_requests {
            counter("serve.rejects").incr();
        }
        conn.set_write_timeout(Some(Duration::from_secs(1))).ok();
        let mut conn = conn;
        let response = Response::Retry {
            after_ms: self.config.retry_after_ms,
            message: format!("ingest queue full ({} waiting)", self.config.queue_cap),
        };
        write_frame(&mut conn, &encode_response(&response)).ok();
    }

    fn worker_loop(&self) {
        while let Some(entry) = self.queue.pop() {
            if self.config.handle_delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.config.handle_delay_ms));
            }
            if let Err(err) = self.handle(entry) {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                if self.config.trace_requests {
                    counter("serve.request_errors").incr();
                }
                // A failed request is the client's problem (they got an
                // ERR frame when the socket allowed one); keep serving.
                let _ = err;
            }
        }
    }

    /// Handles one connection: one request frame, one response frame.
    /// Non-STATS requests get full request-scoped tracing: a
    /// `serve request` span with a `queue wait` child, per-verb latency
    /// and queue histograms, and a flight-recorder entry. STATS requests
    /// bypass all of it so an idle daemon's snapshot is byte-stable
    /// across scrapes.
    fn handle(&self, entry: QueueEntry) -> Result<(), WireError> {
        let queue_ns = entry.enqueued.elapsed().as_nanos() as u64;
        let depth = entry.depth;
        let conn = entry.conn;
        conn.set_read_timeout(Some(Duration::from_secs(60)))?;
        conn.set_write_timeout(Some(Duration::from_secs(60)))?;
        let mut reader = BufReader::new(conn.try_clone()?);
        let mut writer = conn;
        let frame_len = u64::from(read_frame_len(&mut reader)?);
        if frame_len == 0 {
            return self.respond(&mut writer, Response::Err("empty request".into()));
        }
        let mut consumed = 0u64;
        let meta = match read_meta_stream(&mut reader, &mut consumed) {
            Ok(meta) => meta,
            Err(err @ WireError::Io(_)) => return Err(err),
            Err(err) => {
                return self.respond(
                    &mut writer,
                    Response::Err(format!("bad request meta: {err}")),
                )
            }
        };
        if consumed >= frame_len {
            return self.respond(&mut writer, Response::Err("truncated request".into()));
        }
        let mut verb = [0u8; 1];
        reader.read_exact(&mut verb)?;
        let verb = verb[0];
        consumed += 1;
        let body_len = frame_len - consumed;

        if verb == V_STATS {
            // Deliberately invisible to registry metrics, spans, and
            // the flight recorder: a scrape must observe the daemon, not
            // perturb it, so two idle scrapes return identical bytes.
            if body_len > 64 {
                return self.respond(&mut writer, Response::Err("stats request too large".into()));
            }
            let mut body = vec![0u8; body_len as usize];
            reader.read_exact(&mut body)?;
            let response = self.handle_stats(&body);
            return self.respond(&mut writer, response);
        }

        let tracing = self.config.trace_requests;
        let handle_started = Instant::now();
        let req_span = if tracing {
            let span = agave_telemetry::Span::enter_labeled("serve request", verb_name(verb));
            if span.id() != 0 {
                let popped_ns = agave_telemetry::now_ns();
                agave_telemetry::record_closed(
                    "queue wait",
                    verb_name(verb),
                    popped_ns.saturating_sub(queue_ns),
                    popped_ns,
                    span.id(),
                    0,
                );
            }
            Some(span)
        } else {
            None
        };

        let mut tenant = String::new();
        let mut bytes = 0u64;
        let mut is_shutdown = false;
        let response = match verb {
            V_UPLOAD => self.handle_upload(&mut reader, body_len, &mut tenant, &mut bytes),
            V_PING => {
                drain(&mut reader, body_len)?;
                Response::Ok(b"pong".to_vec())
            }
            V_LIST => {
                drain(&mut reader, body_len)?;
                Response::Ok(encode_sessions(&self.store.list()))
            }
            V_ANALYZE => {
                if body_len > MAX_CONTROL_FRAME {
                    Response::Err("request too large".into())
                } else {
                    let mut body = vec![0u8; body_len as usize];
                    reader.read_exact(&mut body)?;
                    match decode_analyze(&body) {
                        Ok((name, analysis)) => {
                            tenant = name.clone();
                            self.handle_analyze(&name, &analysis)
                        }
                        Err(err) => Response::Err(format!("bad analyze request: {err}")),
                    }
                }
            }
            V_SWEEP => {
                if body_len > MAX_CONTROL_FRAME {
                    Response::Err("request too large".into())
                } else {
                    let mut body = vec![0u8; body_len as usize];
                    reader.read_exact(&mut body)?;
                    match decode_sweep(&body) {
                        Ok((name, grid)) => {
                            tenant = name.clone();
                            self.handle_sweep(&name, &grid)
                        }
                        Err(err) => Response::Err(format!("bad sweep request: {err}")),
                    }
                }
            }
            V_SHUTDOWN => {
                drain(&mut reader, body_len)?;
                is_shutdown = true;
                Response::Ok(Vec::new())
            }
            other => Response::Err(format!("unknown verb 0x{other:02x}")),
        };
        if verb != V_UPLOAD {
            if let Response::Ok(body) = &response {
                bytes = body.len() as u64;
            }
        }
        let outcome = match &response {
            Response::Ok(_) => "ok",
            Response::Err(_) => "error",
            Response::Retry { .. } => "retry",
        };
        // Record *before* the response bytes go out: once a client sees
        // the reply it may immediately scrape STATS (possibly through a
        // different worker), and the contract is that every acknowledged
        // request is already visible in the counters, histograms, and
        // flight window. The handle phase therefore excludes the final
        // response write; a failed write still bumps the error counters
        // via the worker loop, but the client never saw that reply, so
        // no observer can catch the record out of order.
        if tracing {
            let handle_ns = handle_started.elapsed().as_nanos() as u64;
            self.record_request(
                &meta, verb, tenant, outcome, bytes, queue_ns, handle_ns, depth,
            );
        }
        let result = self.respond(&mut writer, response);
        drop(req_span);
        result?;
        if is_shutdown {
            self.shutdown.store(true, Ordering::SeqCst);
            self.wake_acceptor();
        }
        Ok(())
    }

    /// Feeds one handled (non-STATS) request into the registry and the
    /// flight recorder. Registry updates are *not* gated on the global
    /// telemetry switch: they are a handful of relaxed atomics per
    /// request (nowhere near the simulation hot path), and they are
    /// what makes a plain `agave serve` scrapeable via STATS.
    #[allow(clippy::too_many_arguments)]
    fn record_request(
        &self,
        meta: &RequestMeta,
        verb: u8,
        tenant: String,
        outcome: &'static str,
        bytes: u64,
        queue_ns: u64,
        handle_ns: u64,
        depth: usize,
    ) {
        counter("serve.requests").incr();
        latency_histogram(verb).record(handle_ns / 1_000);
        histogram("serve.queue_wait").record(queue_ns / 1_000);
        histogram("serve.queue_depth").record(depth as u64);
        gauge("serve.queue").set(self.queue.len() as u64);
        self.flight.push(RequestRecord {
            seq: 0,
            id: meta.id,
            origin: meta.origin.clone(),
            verb: verb_name(verb),
            tenant,
            outcome,
            bytes,
            queue_ns,
            handle_ns,
            slow: false,
        });
    }

    /// Answers a STATS request: a live snapshot of the registry
    /// (non-destructive — counters keep accumulating) plus, for JSON,
    /// the requested flight-recorder window under a `recent` key.
    /// Span logs are deliberately excluded: a soaking daemon's span log
    /// grows without bound and belongs to the exit capture, while the
    /// flight recorder carries the bounded per-request detail.
    fn handle_stats(&self, body: &[u8]) -> Response {
        let (format, recent, filter) = match decode_stats(body) {
            Ok(parsed) => parsed,
            Err(err) => return Response::Err(format!("bad stats request: {err}")),
        };
        let snapshot = TelemetrySnapshot {
            metrics: agave_telemetry::scrape(),
            spans: Vec::new(),
        };
        let text = match format {
            StatsFormat::Json => {
                let recent_json = self.flight.recent_json(recent as usize, filter);
                snapshot.to_json_with(&[("recent", recent_json)])
            }
            StatsFormat::Prom => snapshot.to_prometheus(),
        };
        Response::Ok(text.into_bytes())
    }

    fn respond(&self, writer: &mut TcpStream, response: Response) -> Result<(), WireError> {
        if matches!(response, Response::Err(_)) {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        write_frame(writer, &encode_response(&response))?;
        Ok(())
    }

    /// Streams an upload to the spool, validates it, registers the
    /// session. The trace bytes never exist in memory as a whole.
    /// Fills `tenant` with the session name and `bytes` with the
    /// ingested trace bytes (flight-recorder attribution).
    fn handle_upload<R: Read>(
        &self,
        reader: &mut R,
        body_len: u64,
        tenant: &mut String,
        bytes: &mut u64,
    ) -> Response {
        let mut consumed = 0u64;
        let name_len = match read_varint_stream(reader, &mut consumed) {
            Ok(v) => v,
            Err(err) => return Response::Err(format!("bad upload header: {err}")),
        };
        if name_len == 0 || name_len > MAX_NAME as u64 || name_len + consumed > body_len {
            return Response::Err("bad upload header: implausible name length".into());
        }
        let mut name = vec![0u8; name_len as usize];
        if reader.read_exact(&mut name).is_err() {
            return Response::Err("bad upload header: truncated name".into());
        }
        consumed += name_len;
        let name = match String::from_utf8(name) {
            Ok(n) => n,
            Err(_) => return Response::Err("bad upload header: name is not UTF-8".into()),
        };
        *tenant = name.clone();
        let trace_len = body_len - consumed;
        if trace_len == 0 {
            return Response::Err("empty upload".into());
        }
        let mut span = agave_telemetry::Span::enter_labeled("serve upload", &name);
        let path = self.store.spool_file(&name);
        match self.spool_and_validate(reader, trace_len, &path) {
            Ok(outcome) => {
                let info = SessionInfo {
                    name: name.clone(),
                    label: outcome.label,
                    file_bytes: trace_len,
                    records: outcome.records,
                    words: outcome.words,
                    chunks: outcome.record_chunks,
                };
                span.set_refs(outcome.words);
                self.store.insert(SessionMeta {
                    info: info.clone(),
                    path,
                });
                self.stats.uploads.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_ingested
                    .fetch_add(trace_len, Ordering::Relaxed);
                *bytes = trace_len;
                if self.config.trace_requests {
                    counter("serve.uploads").incr();
                    counter("serve.bytes_ingested").add(trace_len);
                    gauge("serve.active_sessions").set(self.store.len() as u64);
                }
                Response::Ok(encode_session(&info))
            }
            Err(err) => {
                std::fs::remove_file(&path).ok();
                Response::Err(format!("upload rejected: {err}"))
            }
        }
    }

    /// Copies exactly `trace_len` bytes to `path` (fixed-size buffer),
    /// then runs the checksum-walk validation.
    fn spool_and_validate<R: Read>(
        &self,
        reader: &mut R,
        trace_len: u64,
        path: &Path,
    ) -> Result<agave_replay::ValidateOutcome, String> {
        let file = std::fs::File::create(path).map_err(|e| format!("spool: {e}"))?;
        let mut out = BufWriter::new(file);
        let mut limited = reader.take(trace_len);
        let copied = io::copy(&mut limited, &mut out).map_err(|e| format!("spool: {e}"))?;
        out.flush().map_err(|e| format!("spool: {e}"))?;
        if copied != trace_len {
            return Err(format!(
                "connection closed after {copied} of {trace_len} bytes"
            ));
        }
        TraceBuffer::open(path)
            .and_then(|buf| buf.validate(self.config.decode_jobs))
            .map_err(|e| e.to_string())
    }

    fn handle_analyze(&self, name: &str, analysis: &Analysis) -> Response {
        let Some(session) = self.store.get(name) else {
            return Response::Err(format!("unknown session {name:?}; upload it first"));
        };
        let mut span = agave_telemetry::Span::enter_labeled("serve analyze", name);
        match analyze_trace_jobs(&session.path, analysis, self.config.decode_jobs) {
            Ok(json) => {
                span.set_refs(session.info.words);
                self.stats.analyses.fetch_add(1, Ordering::Relaxed);
                if self.config.trace_requests {
                    counter("serve.analyses").incr();
                }
                Response::Ok(json.into_bytes())
            }
            Err(err) => Response::Err(format!("analyze {name:?} ({analysis}): {err}")),
        }
    }

    /// Runs a design-space sweep against a stored session. The sweep
    /// fans out within one worker with `jobs = decode_jobs` (default 1
    /// — server concurrency comes from serving many requests, not from
    /// one request hogging every core) and the output is identical for
    /// any job count, so the served JSON equals a local
    /// `agave sweep --json`.
    fn handle_sweep(&self, name: &str, grid: &str) -> Response {
        let Some(session) = self.store.get(name) else {
            return Response::Err(format!("unknown session {name:?}; upload it first"));
        };
        let mut span = agave_telemetry::Span::enter_labeled("serve sweep", name);
        let result = GridSpec::parse(grid)
            .and_then(|g| agave_analysis::sweep_path(&session.path, &g, self.config.decode_jobs));
        match result {
            Ok(report) => {
                span.set_refs(session.info.words);
                self.stats.analyses.fetch_add(1, Ordering::Relaxed);
                if self.config.trace_requests {
                    counter("serve.sweeps").incr();
                }
                Response::Ok(report.to_json().into_bytes())
            }
            Err(err) => Response::Err(format!("sweep {name:?} ({grid}): {err}")),
        }
    }
}

/// The per-verb handle-time histogram (values in microseconds). The
/// registry keys metrics by `&'static str`, so each verb maps to its
/// own literal name.
fn latency_histogram(verb: u8) -> &'static Histogram {
    match verb {
        V_UPLOAD => histogram("serve.latency.upload"),
        V_LIST => histogram("serve.latency.list"),
        V_ANALYZE => histogram("serve.latency.analyze"),
        V_PING => histogram("serve.latency.ping"),
        V_SHUTDOWN => histogram("serve.latency.shutdown"),
        V_SWEEP => histogram("serve.latency.sweep"),
        _ => histogram("serve.latency.unknown"),
    }
}

/// Reads and discards `len` request-body bytes (verbs with no body
/// still must consume their frame before the response goes out).
fn drain<R: Read>(reader: &mut R, len: u64) -> Result<(), WireError> {
    io::copy(&mut reader.take(len), &mut io::sink())?;
    Ok(())
}

/// Runs one analysis against an on-disk trace and renders the JSON the
/// server ships back. Shared by the server and by tests/benches that
/// check byte-identity against local replay.
///
/// The wire [`Analysis`]'s `Display` form *is* its registry spec
/// (`summary`, `cache:<geometry>`, `sketch`), so this is a one-line
/// delegate into [`agave_analysis::analyze_path`] — the same entry
/// point `agave replay` resolves through, which is what makes served
/// responses byte-identical to local replay by construction.
pub fn analyze_trace(path: &Path, analysis: &Analysis) -> Result<String, String> {
    analyze_trace_jobs(path, analysis, 1)
}

/// [`analyze_trace`] with an explicit decode-thread count (the server
/// passes its configured `decode_jobs`). Output is identical for any
/// `jobs` — the parallel reader merges chunks in order.
pub fn analyze_trace_jobs(path: &Path, analysis: &Analysis, jobs: usize) -> Result<String, String> {
    agave_analysis::analyze_path(path, &analysis.to_string(), jobs)
}
