//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! One connection carries exactly one request frame and one response
//! frame (connect → request → response → close). Keeping the exchange
//! single-shot means a worker never parks on a half-idle connection, so
//! `--jobs N` worker threads bound the server's concurrency exactly.
//!
//! ```text
//! frame     u32 LE payload length · payload
//! request   meta · verb byte · verb-specific body
//!   meta    varint request id · varint origin len · origin
//!   UPLOAD  0x01 · varint name len · name · raw .agtrace bytes
//!   LIST    0x02
//!   ANALYZE 0x03 · varint name len · name · kind byte
//!                  kind 0 = summary, 1 = cache (+ varint preset), 2 = sketch
//!   PING    0x04
//!   SHUT    0x05
//!   SWEEP   0x06 · varint name len · name · varint grid len · grid
//!   STATS   0x07 · format byte (0 json, 1 prom) · varint recent N ·
//!                  filter byte (0 all, 1 errors, 2 slow, 3 notable)
//! response  status byte · body
//!   OK      0x00 · verb-specific body (JSON text, session table, …)
//!   ERR     0x01 · UTF-8 message
//!   RETRY   0x02 · u32 LE retry-after ms · UTF-8 message
//! ```
//!
//! Every request opens with a client-stamped [`RequestMeta`] — a
//! monotonic request id plus an origin tag — *before* the verb byte, so
//! the server can attribute each request in spans and the flight
//! recorder. The `encode_*` helpers below produce the verb-onward
//! bytes; [`encode_request`] prepends the meta.
//!
//! Varints are the same LEB128 encoding the `.agtrace` body uses
//! (`agave_replay::codec`). An UPLOAD frame's trailing trace bytes are
//! *streamed* on both ends — the client copies the file through a fixed
//! buffer and the server spools to disk the same way — so neither side
//! ever materializes a whole trace in memory.

use agave_replay::codec::{get_varint, put_varint};
use std::fmt;
use std::io::{self, Read, Write};

/// Request verb: upload a trace (name + raw bytes follow).
pub const V_UPLOAD: u8 = 0x01;
/// Request verb: list stored sessions.
pub const V_LIST: u8 = 0x02;
/// Request verb: run an analysis against a stored session.
pub const V_ANALYZE: u8 = 0x03;
/// Request verb: liveness probe.
pub const V_PING: u8 = 0x04;
/// Request verb: clean shutdown.
pub const V_SHUTDOWN: u8 = 0x05;
/// Request verb: run a design-space sweep against a stored session.
pub const V_SWEEP: u8 = 0x06;
/// Request verb: scrape live telemetry and the flight recorder.
pub const V_STATS: u8 = 0x07;

/// The display name of a request verb (for spans, histograms, and the
/// flight recorder).
pub fn verb_name(verb: u8) -> &'static str {
    match verb {
        V_UPLOAD => "upload",
        V_LIST => "list",
        V_ANALYZE => "analyze",
        V_PING => "ping",
        V_SHUTDOWN => "shutdown",
        V_SWEEP => "sweep",
        V_STATS => "stats",
        _ => "unknown",
    }
}

/// Response status: success; body is verb-specific.
pub const S_OK: u8 = 0x00;
/// Response status: request failed; body is a UTF-8 message.
pub const S_ERR: u8 = 0x01;
/// Response status: server is saturated; retry after the given delay.
pub const S_RETRY: u8 = 0x02;

/// Largest frame either side will buffer in memory. Upload frames may
/// exceed this on the wire — both ends stream their trace bytes — but
/// any frame *parsed in memory* (requests sans trace body, responses)
/// must fit.
pub const MAX_CONTROL_FRAME: u64 = 64 << 20;

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer sent bytes that do not parse as a frame or message.
    Malformed(String),
    /// The peer promised a control frame beyond [`MAX_CONTROL_FRAME`].
    TooLarge(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_CONTROL_FRAME}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(what: impl Into<String>) -> WireError {
    WireError::Malformed(what.into())
}

/// An analysis a client can request against a stored session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Analysis {
    /// Rebuild the recorded run's `RunSummary` (JSON).
    Summary,
    /// Replay through a named `HierarchyGeometry` preset (JSON report).
    Cache(String),
    /// Bounded-memory streaming sketch: heavy-hitter regions +
    /// inter-reference delta quantiles (JSON report).
    Sketch,
}

impl Analysis {
    /// The kind byte on the wire.
    fn kind(&self) -> u8 {
        match self {
            Analysis::Summary => 0,
            Analysis::Cache(_) => 1,
            Analysis::Sketch => 2,
        }
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Analysis::Summary => write!(f, "summary"),
            Analysis::Cache(preset) => write!(f, "cache:{preset}"),
            Analysis::Sketch => write!(f, "sketch"),
        }
    }
}

/// One stored trace session, as listed by the server and acknowledged
/// after an upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The client-chosen session name (upload key).
    pub name: String,
    /// The recorded workload's label, from the trace header.
    pub label: String,
    /// Trace size on disk in bytes.
    pub file_bytes: u64,
    /// Record count promised by the trace footer.
    pub records: u64,
    /// Word count promised by the trace footer.
    pub words: u64,
    /// Number of checksum-verified record chunks.
    pub chunks: u64,
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; body is verb-specific.
    Ok(Vec<u8>),
    /// Failure with a human-readable reason.
    Err(String),
    /// Backpressure: the ingest queue is full; retry after `after_ms`.
    Retry {
        /// Suggested client back-off in milliseconds.
        after_ms: u32,
        /// Human-readable reason.
        message: String,
    },
}

/// Writes one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one whole frame into memory; rejects frames over `cap` bytes.
pub fn read_frame<R: Read>(r: &mut R, cap: u64) -> Result<Vec<u8>, WireError> {
    let len = read_frame_len(r)?;
    if u64::from(len) > cap {
        return Err(WireError::TooLarge(u64::from(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Reads just the 4-byte length prefix (the server does this before
/// deciding whether to stream or buffer the payload).
pub fn read_frame_len<R: Read>(r: &mut R) -> Result<u32, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    Ok(u32::from_le_bytes(len))
}

/// Reads one varint byte-by-byte from a stream, counting consumed bytes.
pub fn read_varint_stream<R: Read>(r: &mut R, consumed: &mut u64) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        *consumed += 1;
        let byte = byte[0];
        if shift == 9 && byte > 0x01 {
            return Err(malformed("overlong varint"));
        }
        v |= u64::from(byte & 0x7f) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(malformed("overlong varint"))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize, what: &str) -> Result<String, WireError> {
    let len = get_varint(buf, pos).ok_or_else(|| malformed(format!("{what} length")))? as usize;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| malformed(format!("{what} bytes")))?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
}

/// Longest session name the server accepts.
pub const MAX_NAME: usize = 256;

/// Client-stamped per-request metadata: a monotonic request id plus an
/// origin tag (e.g. `agave/12345`), prefixed to every request frame
/// before the verb byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMeta {
    /// Monotonic per-client-process request id (nonzero).
    pub id: u64,
    /// Free-form origin tag identifying the client (≤ [`MAX_NAME`]).
    pub origin: String,
}

/// Encodes request meta (the bytes before the verb byte).
pub fn encode_meta(meta: &RequestMeta) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, meta.id);
    put_str(&mut out, &meta.origin);
    out
}

/// Builds a full request payload: meta, then the verb-onward bytes one
/// of the `encode_*` helpers produced.
pub fn encode_request(meta: &RequestMeta, verb_payload: &[u8]) -> Vec<u8> {
    let mut out = encode_meta(meta);
    out.extend_from_slice(verb_payload);
    out
}

/// Reads request meta byte-by-byte from a stream, counting consumed
/// bytes (the server does this before deciding how to read the body).
pub fn read_meta_stream<R: Read>(r: &mut R, consumed: &mut u64) -> Result<RequestMeta, WireError> {
    let id = read_varint_stream(r, consumed)?;
    let origin_len = read_varint_stream(r, consumed)?;
    if origin_len > MAX_NAME as u64 {
        return Err(malformed("implausible origin length"));
    }
    let mut origin = vec![0u8; origin_len as usize];
    r.read_exact(&mut origin)?;
    *consumed += origin_len;
    let origin = String::from_utf8(origin).map_err(|_| malformed("origin is not UTF-8"))?;
    Ok(RequestMeta { id, origin })
}

/// The serialization a STATS request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// The native telemetry JSON schema, with a `recent` array appended.
    Json,
    /// Prometheus text exposition (no flight-recorder window).
    Prom,
}

impl StatsFormat {
    /// The format byte on the wire.
    pub fn code(self) -> u8 {
        match self {
            StatsFormat::Json => 0,
            StatsFormat::Prom => 1,
        }
    }

    /// Parses a wire format byte.
    pub fn from_code(code: u8) -> Option<StatsFormat> {
        match code {
            0 => Some(StatsFormat::Json),
            1 => Some(StatsFormat::Prom),
            _ => None,
        }
    }
}

/// Encodes a STATS request payload (verb onward).
pub fn encode_stats(
    format: StatsFormat,
    recent: u64,
    filter: crate::flight::RecentFilter,
) -> Vec<u8> {
    let mut out = vec![V_STATS, format.code()];
    put_varint(&mut out, recent);
    out.push(filter.code());
    out
}

/// Parses a STATS request body (everything after the verb byte).
pub fn decode_stats(
    body: &[u8],
) -> Result<(StatsFormat, u64, crate::flight::RecentFilter), WireError> {
    let mut pos = 0;
    let format = body
        .first()
        .copied()
        .and_then(StatsFormat::from_code)
        .ok_or_else(|| malformed("stats format byte"))?;
    pos += 1;
    let recent = get_varint(body, &mut pos).ok_or_else(|| malformed("stats recent count"))?;
    let filter = body
        .get(pos)
        .copied()
        .and_then(crate::flight::RecentFilter::from_code)
        .ok_or_else(|| malformed("stats filter byte"))?;
    pos += 1;
    if pos != body.len() {
        return Err(malformed("trailing bytes in stats request"));
    }
    Ok((format, recent, filter))
}

/// The UPLOAD frame's in-memory prefix: verb byte + session name. The
/// caller appends (client) or streams (server) the trace bytes after it.
pub fn encode_upload_header(name: &str) -> Vec<u8> {
    let mut out = vec![V_UPLOAD];
    put_str(&mut out, name);
    out
}

/// Encodes a LIST request payload.
pub fn encode_list() -> Vec<u8> {
    vec![V_LIST]
}

/// Encodes a PING request payload.
pub fn encode_ping() -> Vec<u8> {
    vec![V_PING]
}

/// Encodes a SHUTDOWN request payload.
pub fn encode_shutdown() -> Vec<u8> {
    vec![V_SHUTDOWN]
}

/// Encodes an ANALYZE request payload.
pub fn encode_analyze(name: &str, analysis: &Analysis) -> Vec<u8> {
    let mut out = vec![V_ANALYZE];
    put_str(&mut out, name);
    out.push(analysis.kind());
    if let Analysis::Cache(preset) = analysis {
        put_str(&mut out, preset);
    }
    out
}

/// Parses an ANALYZE request body (everything after the verb byte).
pub fn decode_analyze(body: &[u8]) -> Result<(String, Analysis), WireError> {
    let mut pos = 0;
    let name = get_str(body, &mut pos, "session name")?;
    let kind = *body.get(pos).ok_or_else(|| malformed("analysis kind"))?;
    pos += 1;
    let analysis = match kind {
        0 => Analysis::Summary,
        1 => Analysis::Cache(get_str(body, &mut pos, "preset name")?),
        2 => Analysis::Sketch,
        other => return Err(malformed(format!("unknown analysis kind {other}"))),
    };
    if pos != body.len() {
        return Err(malformed("trailing bytes in analyze request"));
    }
    Ok((name, analysis))
}

/// Encodes a SWEEP request payload (session name + grid spec, e.g.
/// `size=16k,32k:assoc=2,4:line=32,64`).
pub fn encode_sweep(name: &str, grid: &str) -> Vec<u8> {
    let mut out = vec![V_SWEEP];
    put_str(&mut out, name);
    put_str(&mut out, grid);
    out
}

/// Parses a SWEEP request body (everything after the verb byte).
pub fn decode_sweep(body: &[u8]) -> Result<(String, String), WireError> {
    let mut pos = 0;
    let name = get_str(body, &mut pos, "session name")?;
    let grid = get_str(body, &mut pos, "grid spec")?;
    if pos != body.len() {
        return Err(malformed("trailing bytes in sweep request"));
    }
    Ok((name, grid))
}

fn put_session(out: &mut Vec<u8>, s: &SessionInfo) {
    put_str(out, &s.name);
    put_str(out, &s.label);
    put_varint(out, s.file_bytes);
    put_varint(out, s.records);
    put_varint(out, s.words);
    put_varint(out, s.chunks);
}

fn get_session(buf: &[u8], pos: &mut usize) -> Result<SessionInfo, WireError> {
    let name = get_str(buf, pos, "session name")?;
    let label = get_str(buf, pos, "session label")?;
    let mut uint = |what: &str| -> Result<u64, WireError> {
        get_varint(buf, pos).ok_or_else(|| malformed(format!("session {what}")))
    };
    Ok(SessionInfo {
        file_bytes: uint("file bytes")?,
        records: uint("records")?,
        words: uint("words")?,
        chunks: uint("chunks")?,
        name,
        label,
    })
}

/// Encodes one session (an UPLOAD acknowledgment body).
pub fn encode_session(s: &SessionInfo) -> Vec<u8> {
    let mut out = Vec::new();
    put_session(&mut out, s);
    out
}

/// Decodes an UPLOAD acknowledgment body.
pub fn decode_session(body: &[u8]) -> Result<SessionInfo, WireError> {
    let mut pos = 0;
    let s = get_session(body, &mut pos)?;
    if pos != body.len() {
        return Err(malformed("trailing bytes in session"));
    }
    Ok(s)
}

/// Encodes a LIST response body.
pub fn encode_sessions(sessions: &[SessionInfo]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, sessions.len() as u64);
    for s in sessions {
        put_session(&mut out, s);
    }
    out
}

/// Decodes a LIST response body.
pub fn decode_sessions(body: &[u8]) -> Result<Vec<SessionInfo>, WireError> {
    let mut pos = 0;
    let count = get_varint(body, &mut pos).ok_or_else(|| malformed("session count"))?;
    if count > body.len() as u64 {
        return Err(malformed("implausible session count"));
    }
    let mut sessions = Vec::with_capacity(count as usize);
    for _ in 0..count {
        sessions.push(get_session(body, &mut pos)?);
    }
    if pos != body.len() {
        return Err(malformed("trailing bytes in session list"));
    }
    Ok(sessions)
}

/// Encodes a response frame payload.
pub fn encode_response(r: &Response) -> Vec<u8> {
    match r {
        Response::Ok(body) => {
            let mut out = vec![S_OK];
            out.extend_from_slice(body);
            out
        }
        Response::Err(message) => {
            let mut out = vec![S_ERR];
            out.extend_from_slice(message.as_bytes());
            out
        }
        Response::Retry { after_ms, message } => {
            let mut out = vec![S_RETRY];
            out.extend_from_slice(&after_ms.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
            out
        }
    }
}

/// Decodes a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| malformed("empty response"))?;
    match status {
        S_OK => Ok(Response::Ok(body.to_vec())),
        S_ERR => Ok(Response::Err(
            String::from_utf8(body.to_vec()).map_err(|_| malformed("error text not UTF-8"))?,
        )),
        S_RETRY => {
            if body.len() < 4 {
                return Err(malformed("retry body too short"));
            }
            let after_ms = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
            let message = String::from_utf8(body[4..].to_vec())
                .map_err(|_| malformed("retry text not UTF-8"))?;
            Ok(Response::Retry { after_ms, message })
        }
        other => Err(malformed(format!("unknown response status 0x{other:02x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session(i: u64) -> SessionInfo {
        SessionInfo {
            name: format!("client-{i}"),
            label: "gallery.mp4.view".to_owned(),
            file_bytes: 1000 + i,
            records: 500 * i,
            words: 9000 + i,
            chunks: i,
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello frames").unwrap();
        let mut r = &wire[..];
        assert_eq!(
            read_frame(&mut r, MAX_CONTROL_FRAME).unwrap(),
            b"hello frames"
        );
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_control_frames_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let err = read_frame(&mut &wire[..], 50).unwrap_err();
        assert!(matches!(err, WireError::TooLarge(100)));
    }

    #[test]
    fn analyze_requests_round_trip() {
        for analysis in [
            Analysis::Summary,
            Analysis::Cache("cortex-a9".to_owned()),
            Analysis::Sketch,
        ] {
            let payload = encode_analyze("my-session", &analysis);
            assert_eq!(payload[0], V_ANALYZE);
            let (name, parsed) = decode_analyze(&payload[1..]).unwrap();
            assert_eq!(name, "my-session");
            assert_eq!(parsed, analysis);
        }
    }

    #[test]
    fn sweep_requests_round_trip() {
        let payload = encode_sweep("my-session", "size=16k,32k:assoc=2:line=32");
        assert_eq!(payload[0], V_SWEEP);
        let (name, grid) = decode_sweep(&payload[1..]).unwrap();
        assert_eq!(name, "my-session");
        assert_eq!(grid, "size=16k,32k:assoc=2:line=32");
        assert!(decode_sweep(&payload).is_err(), "verb byte left in body");
    }

    #[test]
    fn session_lists_round_trip() {
        let sessions: Vec<SessionInfo> = (0..5).map(sample_session).collect();
        let body = encode_sessions(&sessions);
        assert_eq!(decode_sessions(&body).unwrap(), sessions);
        assert_eq!(decode_sessions(&encode_sessions(&[])).unwrap(), vec![]);
    }

    #[test]
    fn responses_round_trip() {
        for response in [
            Response::Ok(b"{\"x\":1}".to_vec()),
            Response::Err("no such session".to_owned()),
            Response::Retry {
                after_ms: 75,
                message: "queue full".to_owned(),
            },
        ] {
            let payload = encode_response(&response);
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn upload_header_parses_back() {
        let header = encode_upload_header("trace-a");
        assert_eq!(header[0], V_UPLOAD);
        let mut r = &header[1..];
        let mut consumed = 0;
        let len = read_varint_stream(&mut r, &mut consumed).unwrap();
        assert_eq!(len, 7);
        assert_eq!(r, b"trace-a");
    }

    #[test]
    fn corrupt_bodies_are_malformed_not_panics() {
        assert!(decode_analyze(&[0xff, 0xff, 0xff]).is_err());
        assert!(decode_sessions(&[9, 1]).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[S_RETRY, 1, 2]).is_err());
        assert!(decode_session(&[0x05, b'a']).is_err());
        assert!(decode_stats(&[]).is_err());
        assert!(decode_stats(&[7, 0, 0]).is_err(), "unknown format byte");
        assert!(decode_stats(&[0, 0, 9]).is_err(), "unknown filter byte");
        assert!(decode_stats(&[0, 0, 0, 0]).is_err(), "trailing bytes");
    }

    #[test]
    fn request_meta_round_trips_through_a_stream() {
        let meta = RequestMeta {
            id: 300, // needs two varint bytes
            origin: "agave/4242".to_string(),
        };
        let payload = encode_request(&meta, &encode_ping());
        let mut r = &payload[..];
        let mut consumed = 0;
        let parsed = read_meta_stream(&mut r, &mut consumed).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(consumed, (payload.len() - 1) as u64);
        assert_eq!(r, [V_PING], "verb byte follows the meta");
    }

    #[test]
    fn oversized_origins_are_rejected() {
        let meta = RequestMeta {
            id: 1,
            origin: "x".repeat(MAX_NAME + 1),
        };
        let bytes = encode_meta(&meta);
        let mut consumed = 0;
        assert!(read_meta_stream(&mut &bytes[..], &mut consumed).is_err());
    }

    #[test]
    fn stats_requests_round_trip() {
        use crate::flight::RecentFilter;
        for (format, recent, filter) in [
            (StatsFormat::Json, 0, RecentFilter::All),
            (StatsFormat::Json, 1024, RecentFilter::Slow),
            (StatsFormat::Prom, 7, RecentFilter::Errors),
            (StatsFormat::Json, 3, RecentFilter::Notable),
        ] {
            let payload = encode_stats(format, recent, filter);
            assert_eq!(payload[0], V_STATS);
            let parsed = decode_stats(&payload[1..]).unwrap();
            assert_eq!(parsed, (format, recent, filter));
        }
    }

    #[test]
    fn verb_names_are_stable() {
        assert_eq!(verb_name(V_UPLOAD), "upload");
        assert_eq!(verb_name(V_STATS), "stats");
        assert_eq!(verb_name(0xEE), "unknown");
    }
}
