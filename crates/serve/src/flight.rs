//! The flight recorder: a bounded ring of recent request records.
//!
//! A soaking daemon needs "what just happened" answerable without logs:
//! the last N requests, who sent them, how long they queued and ran,
//! and which ones went wrong. The recorder keeps two fixed-capacity
//! rings:
//!
//! - the **main ring** (`--flight-capacity`, default 1024) sees every
//!   handled request and overwrites oldest-first;
//! - the **notable ring** (a quarter of the capacity) sees only error
//!   and slow requests, so under a flood of healthy traffic the
//!   interesting entries survive far longer than their share of the
//!   main ring — the "retained preferentially" policy `STATS --recent`
//!   filters rely on.
//!
//! Writers never take a global lock: a slot is claimed with one atomic
//! ticket `fetch_add`, then filled under that slot's own mutex. A slot
//! only accepts a record newer than what it holds, so late writers
//! can't roll a slot backwards; after writers quiesce each slot holds
//! the newest record hashed to it, i.e. the ring holds exactly the
//! last `capacity` requests. Readers (the `STATS` verb) lock slots one
//! at a time and sort by the global sequence number.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One handled request, as recorded by the server worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Recorder-assigned global sequence number (newest = highest).
    pub seq: u64,
    /// The client-stamped monotonic request id.
    pub id: u64,
    /// The client-stamped origin tag (e.g. `agave/12345`).
    pub origin: String,
    /// The request verb name (`upload`, `analyze`, …).
    pub verb: &'static str,
    /// Session name the request targeted (empty for LIST/PING/…).
    pub tenant: String,
    /// `ok`, `error`, or `retry`.
    pub outcome: &'static str,
    /// Payload bytes: trace bytes ingested for uploads, response body
    /// bytes for everything else.
    pub bytes: u64,
    /// Nanoseconds spent waiting in the accept queue.
    pub queue_ns: u64,
    /// Nanoseconds spent handling (read + work + respond).
    pub handle_ns: u64,
    /// Whether `handle_ns` crossed the server's `--slow-ms` threshold.
    pub slow: bool,
}

impl RequestRecord {
    /// Renders one record as a JSON object (the `recent` array element).
    pub fn to_json(&self) -> String {
        agave_trace::json::Object::new()
            .field_u64("seq", self.seq)
            .field_u64("id", self.id)
            .field_str("origin", &self.origin)
            .field_str("verb", self.verb)
            .field_str("tenant", &self.tenant)
            .field_str("outcome", self.outcome)
            .field_u64("bytes", self.bytes)
            .field_u64("queue_ns", self.queue_ns)
            .field_u64("handle_ns", self.handle_ns)
            .field_bool("slow", self.slow)
            .finish()
    }
}

/// Which records a `STATS --recent` query wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecentFilter {
    /// Everything the main ring still holds.
    All,
    /// Error outcomes only (from the notable ring).
    Errors,
    /// Slow requests only (from the notable ring).
    Slow,
    /// Errors and slow requests (the whole notable ring).
    Notable,
}

impl RecentFilter {
    /// The filter byte on the wire.
    pub fn code(self) -> u8 {
        match self {
            RecentFilter::All => 0,
            RecentFilter::Errors => 1,
            RecentFilter::Slow => 2,
            RecentFilter::Notable => 3,
        }
    }

    /// Parses a wire filter byte.
    pub fn from_code(code: u8) -> Option<RecentFilter> {
        match code {
            0 => Some(RecentFilter::All),
            1 => Some(RecentFilter::Errors),
            2 => Some(RecentFilter::Slow),
            3 => Some(RecentFilter::Notable),
            _ => None,
        }
    }
}

/// One fixed-capacity ring: ticket-claimed slots, each behind its own
/// mutex (never a global lock; writers to different slots don't touch).
struct Ring {
    slots: Vec<Mutex<Option<RequestRecord>>>,
    next_ticket: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next_ticket: AtomicU64::new(0),
        }
    }

    fn store(&self, record: RequestRecord) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let mut held = slot.lock().expect("flight slot poisoned");
        // Never roll a slot backwards: a delayed writer with an older
        // sequence number must not clobber a newer record.
        if held.as_ref().is_none_or(|h| h.seq < record.seq) {
            *held = Some(record);
        }
    }

    fn collect(&self, keep: impl Fn(&RequestRecord) -> bool) -> Vec<RequestRecord> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().expect("flight slot poisoned").clone())
            .filter(keep)
            .collect()
    }
}

/// The bounded request flight recorder. See the module docs.
pub struct FlightRecorder {
    all: Ring,
    notable: Ring,
    next_seq: AtomicU64,
    slow_ns: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests, plus a
    /// `capacity / 4` (min 8) notable ring for errors and requests
    /// slower than `slow_ns`.
    pub fn new(capacity: usize, slow_ns: u64) -> FlightRecorder {
        FlightRecorder {
            all: Ring::new(capacity),
            notable: Ring::new((capacity / 4).max(8)),
            next_seq: AtomicU64::new(1),
            slow_ns,
        }
    }

    /// The slow-request threshold in nanoseconds.
    pub fn slow_ns(&self) -> u64 {
        self.slow_ns
    }

    /// Records one handled request. `record.seq` and `record.slow` are
    /// assigned here; callers fill everything else.
    pub fn push(&self, mut record: RequestRecord) {
        record.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        record.slow = record.handle_ns >= self.slow_ns;
        let notable = record.slow || record.outcome != "ok";
        if notable {
            self.notable.store(record.clone());
        }
        self.all.store(record);
    }

    /// The newest `n` records matching `filter`, newest first.
    pub fn recent(&self, n: usize, filter: RecentFilter) -> Vec<RequestRecord> {
        let mut records = match filter {
            RecentFilter::All => self.all.collect(|_| true),
            RecentFilter::Errors => self.notable.collect(|r| r.outcome != "ok"),
            RecentFilter::Slow => self.notable.collect(|r| r.slow),
            RecentFilter::Notable => self.notable.collect(|_| true),
        };
        records.sort_by_key(|r| std::cmp::Reverse(r.seq));
        records.truncate(n);
        records
    }

    /// Renders the newest `n` matching records as a JSON array.
    pub fn recent_json(&self, n: usize, filter: RecentFilter) -> String {
        agave_trace::json::array(self.recent(n, filter).iter().map(RequestRecord::to_json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, outcome: &'static str, handle_ns: u64) -> RequestRecord {
        RequestRecord {
            seq: 0,
            id,
            origin: "test/1".to_string(),
            verb: "analyze",
            tenant: "sess".to_string(),
            outcome,
            bytes: 10,
            queue_ns: 5,
            handle_ns,
            slow: false,
        }
    }

    #[test]
    fn ring_stays_bounded_and_ordered_under_concurrent_writers() {
        let recorder = FlightRecorder::new(64, u64::MAX);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let recorder = &recorder;
                scope.spawn(move || {
                    for i in 0..500 {
                        recorder.push(record(t * 1000 + i, "ok", 1));
                    }
                });
            }
        });
        let recent = recorder.recent(usize::MAX, RecentFilter::All);
        assert_eq!(recent.len(), 64, "ring must stay at capacity");
        for pair in recent.windows(2) {
            assert!(pair[0].seq > pair[1].seq, "newest-first, strictly ordered");
        }
        // With the never-roll-backwards guard, quiesced content is
        // exactly the newest `capacity` sequence numbers.
        let total = 8 * 500;
        for r in &recent {
            assert!(r.seq > total - 64, "seq {} evicted too early", r.seq);
        }
        assert_eq!(recorder.recent(5, RecentFilter::All).len(), 5);
    }

    #[test]
    fn errors_and_slow_requests_are_retained_preferentially() {
        let slow_ns = 1_000_000;
        let recorder = FlightRecorder::new(32, slow_ns);
        recorder.push(record(1, "error", 10));
        recorder.push(record(2, "ok", slow_ns + 5));
        // A flood of fast, healthy traffic rolls the main ring over.
        for i in 0..200 {
            recorder.push(record(100 + i, "ok", 1));
        }
        let all = recorder.recent(usize::MAX, RecentFilter::All);
        assert!(
            all.iter().all(|r| r.outcome == "ok" && !r.slow),
            "main ring rolled past the notable entries"
        );
        let errors = recorder.recent(10, RecentFilter::Errors);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].id, 1);
        let slow = recorder.recent(10, RecentFilter::Slow);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].id, 2);
        assert!(slow[0].slow, "push must stamp the slow bit");
        let notable = recorder.recent(10, RecentFilter::Notable);
        assert_eq!(notable.len(), 2);
        assert_eq!(notable[0].id, 2, "newest notable first");
    }

    #[test]
    fn records_render_as_json() {
        let recorder = FlightRecorder::new(8, 1000);
        recorder.push(record(42, "ok", 2000));
        let json = recorder.recent_json(8, RecentFilter::All);
        assert!(json.starts_with("[{\"seq\":1,\"id\":42,"), "json: {json}");
        assert!(json.contains("\"verb\":\"analyze\""));
        assert!(json.contains("\"slow\":true"));
        assert_eq!(recorder.recent_json(0, RecentFilter::All), "[]");
    }

    #[test]
    fn filter_codes_round_trip() {
        for f in [
            RecentFilter::All,
            RecentFilter::Errors,
            RecentFilter::Slow,
            RecentFilter::Notable,
        ] {
            assert_eq!(RecentFilter::from_code(f.code()), Some(f));
        }
        assert_eq!(RecentFilter::from_code(9), None);
    }
}
