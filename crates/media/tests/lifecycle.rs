//! Media lifecycle integration: stop transactions, multiple sessions,
//! session EOF interplay with the audio transport.

use agave_binder::{BinderHost, BinderProxy};
use agave_gfx::SurfaceStore;
use agave_kernel::{Actor, Ctx, Kernel, Message};
use agave_media::{
    AudioBus, AudioFlingerThread, MediaPlayer, MediaPlayerService, AUDIO_PERIOD, MP3_FRAME_BYTES,
};

fn media_world() -> (Kernel, BinderProxy) {
    let mut kernel = Kernel::new();
    kernel
        .vfs_mut()
        .add_file("/sdcard/music/track.mp3", (MP3_FRAME_BYTES * 500) as u64, 5);
    let bus = AudioBus::new();
    let surfaces = SurfaceStore::new();
    let media_pid = kernel.spawn_process("mediaserver");
    let svc = kernel.spawn_thread(
        media_pid,
        "Binder Thread #1",
        Box::new(BinderHost::new(MediaPlayerService::new(
            bus.clone(),
            surfaces,
        ))),
    );
    AudioFlingerThread::spawn(&mut kernel, media_pid, bus);
    (kernel, BinderProxy::new(svc))
}

#[test]
fn stop_halts_the_decode_loop() {
    struct App {
        player: MediaPlayer,
        session: Option<u32>,
    }
    impl Actor for App {
        fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
            match msg.what {
                1 => {
                    self.session = Some(self.player.play_mp3(cx, "/sdcard/music/track.mp3", true));
                }
                2 => {
                    self.player.stop(cx, self.session.expect("started"));
                }
                _ => {}
            }
        }
    }

    let (mut kernel, proxy) = media_world();
    let app_pid = kernel.spawn_process("benchmark");
    let app = kernel.spawn_thread(
        app_pid,
        "main",
        Box::new(App {
            player: MediaPlayer::new(proxy),
            session: None,
        }),
    );
    kernel.send(app, Message::new(1));
    kernel.run_until(AUDIO_PERIOD * 20);
    kernel.send(app, Message::new(2));
    kernel.run_until(kernel.now() + AUDIO_PERIOD * 2);

    // After stop: only periodic transport/mixer upkeep remains.
    let stagefright_before = kernel.tracer().summarize("t").instr_by_region["libstagefright.so"];
    kernel.run_until(kernel.now() + AUDIO_PERIOD * 20);
    let stagefright_after = kernel.tracer().summarize("t").instr_by_region["libstagefright.so"];
    assert_eq!(
        stagefright_before, stagefright_after,
        "decoding continued after STOP"
    );
}

#[test]
fn two_sessions_mix_into_one_bus() {
    struct App {
        player: MediaPlayer,
    }
    impl Actor for App {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let a = self.player.play_mp3(cx, "/sdcard/music/track.mp3", true);
            let b = self.player.play_mp3(cx, "/sdcard/music/track.mp3", true);
            assert_ne!(a, b, "session ids must be distinct");
        }
    }
    let (mut kernel, proxy) = media_world();
    let app_pid = kernel.spawn_process("benchmark");
    let app = kernel.spawn_thread(
        app_pid,
        "main",
        Box::new(App {
            player: MediaPlayer::new(proxy),
        }),
    );
    kernel.send(app, Message::new(0));
    kernel.run_until(AUDIO_PERIOD * 20);
    let s = kernel.tracer().summarize("t");
    // Two decode threads and two transport threads ran in mediaserver.
    assert!(s.refs_by_thread["TimedEventQueue"] > 0);
    assert!(s.refs_by_thread["AudioTrackThread"] > 0);
    // Mixer saw both.
    assert!(s.refs_by_thread["AudioOut_1"] > 0);
    assert!(s.spawned_threads >= 8);
}
