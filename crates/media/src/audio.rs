//! The audio transport: track buffers, `AudioTrackThread`, AudioFlinger.

use agave_kernel::{Actor, Ctx, Kernel, Message, Pid, ShmId, TICKS_PER_MS};
use std::cell::RefCell;
use std::rc::Rc;

/// Audio pull period: 20 ms, the classic AudioFlinger buffer interval.
pub const AUDIO_PERIOD: u64 = 20 * TICKS_PER_MS;

/// Bytes of 44.1 kHz stereo 16-bit PCM per period.
pub(crate) const PERIOD_BYTES: usize = 44_100 / 50 * 2 * 2;

/// Message: periodic tick for the audio threads.
const MSG_TICK: u32 = 0x6174;
/// Message: stop re-arming (end of run).
pub(crate) const MSG_AUDIO_STOP: u32 = 0x6173;

#[derive(Debug)]
struct BusTrack {
    /// App/decoder-side track buffer (ashmem).
    track: ShmId,
    /// AudioFlinger-side input buffer the AudioTrackThread fills.
    mix_in: ShmId,
    /// Bytes written by the producer, not yet shuttled.
    pending: usize,
    /// Bytes shuttled, not yet mixed.
    mixable: usize,
}

/// The shared registry connecting producers, `AudioTrackThread`s and the
/// AudioFlinger mixer.
#[derive(Debug, Clone, Default)]
pub struct AudioBus {
    inner: Rc<RefCell<Vec<BusTrack>>>,
}

impl AudioBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a track, allocating its shared buffers.
    pub fn create_track(&self, cx: &mut Ctx<'_>) -> AudioTrack {
        let wk = cx.well_known();
        let track = cx.shm_create(wk.ashmem, PERIOD_BYTES * 4);
        let mix_in = cx.shm_create(wk.ashmem, PERIOD_BYTES * 4);
        let mut tracks = self.inner.borrow_mut();
        tracks.push(BusTrack {
            track,
            mix_in,
            pending: 0,
            mixable: 0,
        });
        AudioTrack {
            bus: self.clone(),
            index: tracks.len() - 1,
        }
    }

    /// Number of registered tracks.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether no tracks are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

/// A producer-side handle: decoders write PCM here.
#[derive(Debug, Clone)]
pub struct AudioTrack {
    bus: AudioBus,
    index: usize,
}

impl AudioTrack {
    /// Writes interleaved PCM into the track buffer (charged to `ashmem`).
    pub fn write_pcm(&self, cx: &mut Ctx<'_>, pcm: &[i16]) {
        let (shm, cap) = {
            let tracks = self.bus.inner.borrow();
            let t = &tracks[self.index];
            (t.track, cx.shm_len(t.track))
        };
        let bytes: Vec<u8> = pcm.iter().flat_map(|s| s.to_le_bytes()).collect();
        let n = bytes.len().min(cap);
        cx.shm_write(shm, 0, &bytes[..n]);
        let mut tracks = self.bus.inner.borrow_mut();
        let t = &mut tracks[self.index];
        t.pending = (t.pending + n).min(cap);
    }

    /// Index of this track on its bus.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Spawns this track's `AudioTrackThread` in `pid` (the process that
    /// owns the `AudioTrack` — the app for in-process decoders,
    /// `mediaserver` for framework playback).
    pub fn spawn_thread(&self, kernel: &mut Kernel, pid: Pid) -> agave_kernel::Tid {
        let libmedia = kernel.intern_region("libmedia.so");
        kernel.spawn_thread_in(
            pid,
            "AudioTrackThread",
            libmedia,
            Box::new(AudioTrackThread {
                bus: self.bus.clone(),
                index: self.index,
                running: true,
            }),
        )
    }
}

/// The per-track transport thread: shuttles produced PCM toward the mixer
/// every period. Table I ranks this thread family at 5.9 % of suite
/// references.
pub struct AudioTrackThread {
    bus: AudioBus,
    index: usize,
    running: bool,
}

impl Actor for AudioTrackThread {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(AUDIO_PERIOD, Message::new(MSG_TICK));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        match msg.what {
            MSG_TICK => {
                let (src, dst, n) = {
                    let tracks = self.bus.inner.borrow();
                    let t = &tracks[self.index];
                    (t.track, t.mix_in, t.pending)
                };
                if n > 0 {
                    // Resample/volume loop plus the ring-buffer double copy.
                    let libmedia = cx.intern_region("libmedia.so");
                    cx.call_lib(libmedia, 400 + n as u64 / 2);
                    cx.shm_rw(src, n as u64 / 2, 0);
                    cx.shm_rw(dst, 0, n as u64 / 2);
                    cx.shm_copy(dst, 0, src, 0, n);
                    let mut tracks = self.bus.inner.borrow_mut();
                    let t = &mut tracks[self.index];
                    t.pending = 0;
                    t.mixable = n;
                }
                if self.running {
                    cx.post_self_after(AUDIO_PERIOD, Message::new(MSG_TICK));
                }
            }
            MSG_AUDIO_STOP => self.running = false,
            _ => {}
        }
    }
}

/// The AudioFlinger mixer thread (lives in `mediaserver`): mixes every
/// track with shuttled data into the HAL buffer each period.
pub struct AudioFlingerThread {
    bus: AudioBus,
    hal: ShmId,
    running: bool,
}

impl AudioFlingerThread {
    /// Creates the mixer over an existing HAL buffer segment.
    pub fn new(bus: AudioBus, hal: ShmId) -> Self {
        AudioFlingerThread {
            bus,
            hal,
            running: true,
        }
    }

    /// Spawns the standard mixer thread in `pid` (normally `mediaserver`),
    /// allocating the HAL buffer.
    pub fn spawn(kernel: &mut Kernel, pid: Pid, bus: AudioBus) -> agave_kernel::Tid {
        let wk = kernel.well_known();
        let hal = kernel.shm_create(wk.ashmem, PERIOD_BYTES * 2);
        let libaf = kernel.intern_region("libaudioflinger.so");
        kernel.spawn_thread_in(
            pid,
            "AudioOut_1",
            libaf,
            Box::new(AudioFlingerThread::new(bus, hal)),
        )
    }
}

impl Actor for AudioFlingerThread {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(AUDIO_PERIOD, Message::new(MSG_TICK));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        match msg.what {
            MSG_TICK => {
                let pieces: Vec<(ShmId, usize)> = {
                    let mut tracks = self.bus.inner.borrow_mut();
                    tracks
                        .iter_mut()
                        .filter(|t| t.mixable > 0)
                        .map(|t| {
                            let n = t.mixable;
                            t.mixable = 0;
                            (t.mix_in, n)
                        })
                        .collect()
                };
                if !pieces.is_empty() {
                    let libaf = cx.intern_region("libaudioflinger.so");
                    for (shm, n) in pieces {
                        // Mix loop: ~1 op/sample, read input, write HAL.
                        cx.call_lib(libaf, n as u64 / 2);
                        cx.charge_shm_mix(shm, self.hal, n);
                    }
                } else {
                    let libaf = cx.intern_region("libaudioflinger.so");
                    cx.call_lib(libaf, 80);
                }
                if self.running {
                    cx.post_self_after(AUDIO_PERIOD, Message::new(MSG_TICK));
                }
            }
            MSG_AUDIO_STOP => self.running = false,
            _ => {}
        }
    }
}

/// Extension charging helper: mixing reads one segment and
/// read-modify-writes another.
trait MixCharge {
    fn charge_shm_mix(&mut self, src: ShmId, dst: ShmId, n: usize);
}

impl MixCharge for Ctx<'_> {
    fn charge_shm_mix(&mut self, src: ShmId, dst: ShmId, n: usize) {
        let n = n.min(self.shm_len(src)).min(self.shm_len(dst));
        // Read source samples, read+write destination (accumulate).
        let mut buf = vec![0u8; n];
        self.shm_read(src, 0, &mut buf);
        let mut hal = vec![0u8; n];
        self.shm_read(dst, 0, &mut hal);
        for (h, s) in hal.iter_mut().zip(&buf) {
            *h = h.wrapping_add(*s);
        }
        self.shm_write(dst, 0, &hal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Producer {
        track: Option<AudioTrack>,
        bus: AudioBus,
        bursts: u32,
    }

    impl Actor for Producer {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            self.track = Some(self.bus.create_track(cx));
            cx.post_self(Message::new(1));
        }
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let pcm: Vec<i16> = (0..1764).map(|i| (i * 3) as i16).collect();
            self.track.as_ref().unwrap().write_pcm(cx, &pcm);
            self.bursts += 1;
            if self.bursts < 8 {
                cx.post_self_after(AUDIO_PERIOD, Message::new(1));
            } else {
                // Spawn-side AudioTrackThread is started by the test after
                // the first burst; nothing more to do here.
            }
        }
    }

    #[test]
    fn pcm_flows_through_track_thread_to_mixer() {
        let mut kernel = Kernel::new();
        let bus = AudioBus::new();

        let media_pid = kernel.spawn_process("mediaserver");
        AudioFlingerThread::spawn(&mut kernel, media_pid, bus.clone());

        let app_pid = kernel.spawn_process("benchmark");
        let app_tid = kernel.spawn_thread(
            app_pid,
            "main",
            Box::new(Producer {
                track: None,
                bus: bus.clone(),
                bursts: 0,
            }),
        );
        let _ = app_tid;
        // Run a little so the track exists, then attach its thread.
        kernel.run_until(AUDIO_PERIOD / 2);
        assert_eq!(bus.len(), 1);
        let track = AudioTrack {
            bus: bus.clone(),
            index: 0,
        };
        track.spawn_thread(&mut kernel, app_pid);

        kernel.run_until(AUDIO_PERIOD * 12);
        let s = kernel.tracer().summarize("audio");
        assert!(s.refs_by_thread["AudioTrackThread"] > 0);
        assert!(s.refs_by_thread["AudioOut_1"] > 0);
        assert!(s.instr_by_region["libaudioflinger.so"] > 0);
        assert!(s.instr_by_region["libmedia.so"] > 0);
        assert!(s.data_by_region["ashmem"] > 1000);
        // Mixer work is attributed to mediaserver, shuttle to the app.
        assert!(s.instr_by_process["mediaserver"] > 0);
        assert!(s.instr_by_process["benchmark"] > 0);
    }

    #[test]
    fn bus_registry_counts() {
        let bus = AudioBus::new();
        assert!(bus.is_empty());
    }
}
