//! Decoder models that do real work on real bytes.

use agave_kernel::{Ctx, NameId, RefKind};

/// Bytes per MP3 frame at 128 kbps / 44.1 kHz.
pub const MP3_FRAME_BYTES: usize = 417;
/// PCM samples produced per MP3 frame (per channel).
pub const MP3_SAMPLES_PER_FRAME: usize = 1152;

/// An MP3 decoder model.
///
/// Per frame it performs a synthetic but real computation over the input
/// bytes (bit unpacking, a butterfly pass standing in for the IMDCT, and
/// synthesis) and emits deterministic 16-bit stereo PCM. Charges are
/// attributed to the codec library it was constructed with —
/// `libstagefright.so` when running inside `mediaserver`, `libvlccore.so`
/// when VLC decodes in-process.
#[derive(Debug)]
pub struct Mp3Decoder {
    codec_lib: NameId,
    /// Synthesis filter state carried across frames (makes output depend
    /// on history, like a real decoder).
    state: [i32; 32],
    frames_decoded: u64,
}

impl Mp3Decoder {
    /// Creates a decoder charging against `codec_lib`.
    pub fn new(codec_lib: NameId) -> Self {
        Mp3Decoder {
            codec_lib,
            state: [0; 32],
            frames_decoded: 0,
        }
    }

    /// Frames decoded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Decodes one frame of input into interleaved stereo PCM.
    ///
    /// Input shorter than [`MP3_FRAME_BYTES`] is treated as a trailing
    /// partial frame and still produces a full PCM frame (decoders conceal
    /// truncated tails).
    pub fn decode_frame(&mut self, cx: &mut Ctx<'_>, input: &[u8]) -> Vec<i16> {
        let wk = cx.well_known();
        // Bitstream unpack + huffman: ~8 ops per input byte.
        cx.call_lib(self.codec_lib, 8 * input.len() as u64);
        // IMDCT + synthesis: ~3 ops per output sample.
        cx.call_lib(self.codec_lib, 3 * (MP3_SAMPLES_PER_FRAME as u64) * 2);
        // Working buffers live on the decoder heap.
        cx.charge(wk.heap, RefKind::DataRead, input.len() as u64 / 4 + 512);
        cx.charge(
            wk.heap,
            RefKind::DataWrite,
            (MP3_SAMPLES_PER_FRAME as u64 * 2 * 2) / 4 + 256,
        );

        // The actual computation: a keyed butterfly over input bytes mixed
        // with carried filter state.
        let mut acc: i32 = 0;
        for (i, &b) in input.iter().enumerate() {
            let s = &mut self.state[i % 32];
            *s = s.wrapping_mul(31).wrapping_add(i32::from(b)).rotate_left(3);
            acc = acc.wrapping_add(*s ^ (i as i32).wrapping_mul(2654435761u32 as i32));
        }
        let mut pcm = Vec::with_capacity(MP3_SAMPLES_PER_FRAME * 2);
        let mut x = acc;
        for i in 0..MP3_SAMPLES_PER_FRAME {
            x = x
                .wrapping_mul(1103515245)
                .wrapping_add(12345)
                .wrapping_add(self.state[i % 32]);
            let sample = (x >> 16) as i16;
            pcm.push(sample); // L
            pcm.push(sample.wrapping_add((x & 0xff) as i16)); // R
        }
        self.frames_decoded += 1;
        pcm
    }
}

/// An MP4 (H.263/MPEG-4-part-2 era) video decoder model.
///
/// Per frame it consumes the frame's bitstream bytes and produces a
/// deterministic RGB565 image of the configured size; motion compensation
/// and IDCT are modeled as per-macroblock charges.
#[derive(Debug)]
pub struct Mp4VideoDecoder {
    codec_lib: NameId,
    width: u32,
    height: u32,
    /// Reference frame carried across decodes (P-frame dependency).
    reference: Vec<u16>,
    frames_decoded: u64,
}

impl Mp4VideoDecoder {
    /// Creates a decoder for `width`×`height` output charging `codec_lib`.
    pub fn new(codec_lib: NameId, width: u32, height: u32) -> Self {
        Mp4VideoDecoder {
            codec_lib,
            width,
            height,
            reference: vec![0; (width * height) as usize],
            frames_decoded: 0,
        }
    }

    /// Output width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Output height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Frames decoded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Decodes one frame's bitstream into RGB565 pixels (row-major).
    pub fn decode_frame(&mut self, cx: &mut Ctx<'_>, input: &[u8]) -> Vec<u16> {
        let wk = cx.well_known();
        let pixels = u64::from(self.width) * u64::from(self.height);
        let macroblocks = pixels.div_ceil(256);
        // Entropy decode ~10 ops/byte; IDCT+MC ~1,400 ops per 16×16
        // block; color convert ~4 ops/pixel.
        cx.call_lib(
            self.codec_lib,
            10 * input.len() as u64 + 1_400 * macroblocks + 4 * pixels,
        );
        cx.charge(
            wk.heap,
            RefKind::DataRead,
            pixels * 2 + input.len() as u64 / 4,
        );
        cx.charge(wk.heap, RefKind::DataWrite, pixels * 3 / 2);

        // Real computation: mix bitstream bytes into the reference frame.
        let mut key: u32 = 0x9e3779b9 ^ (self.frames_decoded as u32);
        for &b in input {
            key = key.rotate_left(5) ^ u32::from(b).wrapping_mul(0x85eb_ca6b);
        }
        for (i, px) in self.reference.iter_mut().enumerate() {
            let noise = key.wrapping_mul(i as u32 | 1).rotate_right((i % 13) as u32);
            *px = px.wrapping_add((noise & 0x0841) as u16); // move through RGB565 LSBs
        }
        self.frames_decoded += 1;
        self.reference.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_kernel::{Actor, Kernel, Message};

    fn with_ctx(f: impl FnOnce(&mut Ctx<'_>) + 'static) -> agave_trace::RunSummary {
        struct Runner<F>(Option<F>);
        impl<F: FnOnce(&mut Ctx<'_>) + 'static> Actor for Runner<F> {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                (self.0.take().unwrap())(cx);
            }
        }
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("mediaserver");
        let tid = kernel.spawn_thread(pid, "TimedEventQueue", Box::new(Runner(Some(f))));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
        kernel.tracer().summarize("media")
    }

    #[test]
    fn mp3_output_is_deterministic_and_stateful() {
        let s = with_ctx(|cx| {
            let lib = cx.well_known().libstagefright;
            let input: Vec<u8> = (0..MP3_FRAME_BYTES).map(|i| (i * 7) as u8).collect();
            let mut d1 = Mp3Decoder::new(lib);
            let mut d2 = Mp3Decoder::new(lib);
            let a1 = d1.decode_frame(cx, &input);
            let a2 = d2.decode_frame(cx, &input);
            assert_eq!(a1, a2, "same input+state ⇒ same PCM");
            assert_eq!(a1.len(), MP3_SAMPLES_PER_FRAME * 2);
            // Second frame differs because filter state carried over.
            let b1 = d1.decode_frame(cx, &input);
            assert_ne!(a1, b1);
            assert_eq!(d1.frames_decoded(), 2);
        });
        assert!(s.instr_by_region["libstagefright.so"] > 8 * MP3_FRAME_BYTES as u64);
        assert!(s.data_by_region["heap"] > 0);
    }

    #[test]
    fn mp4_frames_evolve_from_reference() {
        with_ctx(|cx| {
            let lib = cx.well_known().libstagefright;
            let mut d = Mp4VideoDecoder::new(lib, 32, 24);
            let f1 = d.decode_frame(cx, &[1, 2, 3, 4]);
            let f2 = d.decode_frame(cx, &[1, 2, 3, 4]);
            assert_eq!(f1.len(), 32 * 24);
            assert_ne!(f1, f2, "P-frames accumulate");
            assert_eq!(d.frames_decoded(), 2);
        });
    }

    #[test]
    fn vlc_charges_its_own_codec_library() {
        let s = with_ctx(|cx| {
            let lib = cx.intern_region("libvlccore.so");
            let mut d = Mp3Decoder::new(lib);
            let _ = d.decode_frame(cx, &[0u8; MP3_FRAME_BYTES]);
        });
        assert!(s.instr_by_region.contains_key("libvlccore.so"));
        assert!(!s.instr_by_region.contains_key("libstagefright.so"));
    }
}
