//! The `media.player` binder service and its client wrapper.

use crate::audio::AudioBus;
use crate::session::{MediaSession, SessionOutput, MSG_SESSION_STOP};
use agave_binder::{BinderProxy, BinderService, Parcel};
use agave_gfx::SurfaceStore;
use agave_kernel::{Ctx, Message, Tid};

/// Transaction: open and start MP3 playback. Parcel: path, looping(0/1).
/// Reply: status, session id.
pub const MEDIA_OPEN_MP3: u32 = 1;
/// Transaction: open and start MP4 video playback. Parcel: path, surface
/// index, fps, bytes-per-frame, looping. Reply: status, session id.
pub const MEDIA_OPEN_MP4: u32 = 2;
/// Transaction: start (no-op — sessions autostart; kept for API shape).
pub const MEDIA_START: u32 = 3;
/// Transaction: stop a session. Parcel: session id.
pub const MEDIA_STOP: u32 = 4;

/// The Stagefright-backed `media.player` service hosted in `mediaserver`.
///
/// Opening a stream spawns a `TimedEventQueue` decode thread (and an
/// `AudioTrackThread`) inside the **hosting** process — which is exactly
/// how `mediaserver` comes to dominate `gallery.mp4.view` in the paper.
pub struct MediaPlayerService {
    bus: AudioBus,
    surfaces: SurfaceStore,
    sessions: Vec<Tid>,
}

impl MediaPlayerService {
    /// Creates the service over the shared audio bus and surface store.
    pub fn new(bus: AudioBus, surfaces: SurfaceStore) -> Self {
        MediaPlayerService {
            bus,
            surfaces,
            sessions: Vec::new(),
        }
    }

    /// Number of sessions ever opened.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn open_mp3(&mut self, cx: &mut Ctx<'_>, path: &str, looping: bool) -> u32 {
        let track = self.bus.create_track(cx);
        let pid = cx.pid();
        let session = MediaSession::new(
            path,
            "libstagefright.so",
            SessionOutput::Audio(track.clone()),
            looping,
        );
        let tid = cx.spawn_thread(pid, "TimedEventQueue", Box::new(session));
        track.spawn_thread(cx.kernel(), pid);
        self.sessions.push(tid);
        self.sessions.len() as u32 - 1
    }

    fn open_mp4(
        &mut self,
        cx: &mut Ctx<'_>,
        path: &str,
        surface_index: usize,
        fps: u32,
        bytes_per_frame: usize,
        looping: bool,
    ) -> u32 {
        let surface = self.surfaces.handle(surface_index);
        surface.set_overlay(true);
        let track = self.bus.create_track(cx);
        let pid = cx.pid();
        let session = MediaSession::new(
            path,
            "libstagefright.so",
            SessionOutput::Video {
                surface,
                audio: Some(track.clone()),
                fps,
                bytes_per_frame,
            },
            looping,
        );
        let tid = cx.spawn_thread(pid, "TimedEventQueue", Box::new(session));
        track.spawn_thread(cx.kernel(), pid);
        self.sessions.push(tid);
        self.sessions.len() as u32 - 1
    }
}

impl BinderService for MediaPlayerService {
    fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel {
        let lib = cx.well_known().libstagefright;
        cx.call_lib(lib, 250); // MediaPlayerService dispatch
        let mut reply = Parcel::new();
        match code {
            MEDIA_OPEN_MP3 => {
                let path = data.read_str();
                let looping = data.read_u32() != 0;
                let id = self.open_mp3(cx, &path, looping);
                reply.write_u32(0);
                reply.write_u32(id);
            }
            MEDIA_OPEN_MP4 => {
                let path = data.read_str();
                let surface = data.read_u32() as usize;
                let fps = data.read_u32();
                let bpf = data.read_u32() as usize;
                let looping = data.read_u32() != 0;
                let id = self.open_mp4(cx, &path, surface, fps, bpf, looping);
                reply.write_u32(0);
                reply.write_u32(id);
            }
            MEDIA_START => {
                let _ = data.read_u32();
                reply.write_u32(0);
            }
            MEDIA_STOP => {
                let id = data.read_u32() as usize;
                if let Some(&tid) = self.sessions.get(id) {
                    cx.send(tid, Message::new(MSG_SESSION_STOP));
                    reply.write_u32(0);
                } else {
                    reply.write_u32(1);
                }
            }
            other => panic!("media.player: unknown transaction {other}"),
        }
        reply
    }
}

/// Client-side convenience wrapper over the `media.player` proxy.
#[derive(Debug, Clone, Copy)]
pub struct MediaPlayer {
    proxy: BinderProxy,
}

impl MediaPlayer {
    /// Wraps a resolved `media.player` proxy.
    pub fn new(proxy: BinderProxy) -> Self {
        MediaPlayer { proxy }
    }

    /// Opens and starts MP3 playback; returns the session id.
    pub fn play_mp3(&self, cx: &mut Ctx<'_>, path: &str, looping: bool) -> u32 {
        let jni = cx.intern_region("libmedia_jni.so");
        cx.call_lib(jni, 600);
        let mut p = Parcel::new();
        p.write_str(path);
        p.write_u32(u32::from(looping));
        let mut reply = self.proxy.transact(cx, MEDIA_OPEN_MP3, &p);
        assert_eq!(reply.read_u32(), 0, "media.player OPEN_MP3 failed");
        reply.read_u32()
    }

    /// Opens and starts MP4 playback into surface `surface_index`.
    pub fn play_mp4(
        &self,
        cx: &mut Ctx<'_>,
        path: &str,
        surface_index: usize,
        fps: u32,
        bytes_per_frame: usize,
        looping: bool,
    ) -> u32 {
        let jni = cx.intern_region("libmedia_jni.so");
        cx.call_lib(jni, 600);
        let mut p = Parcel::new();
        p.write_str(path);
        p.write_u32(surface_index as u32);
        p.write_u32(fps);
        p.write_u32(bytes_per_frame as u32);
        p.write_u32(u32::from(looping));
        let mut reply = self.proxy.transact(cx, MEDIA_OPEN_MP4, &p);
        assert_eq!(reply.read_u32(), 0, "media.player OPEN_MP4 failed");
        reply.read_u32()
    }

    /// Stops a session.
    pub fn stop(&self, cx: &mut Ctx<'_>, session: u32) {
        let mut p = Parcel::new();
        p.write_u32(session);
        let mut reply = self.proxy.transact(cx, MEDIA_STOP, &p);
        assert_eq!(reply.read_u32(), 0, "media.player STOP failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_binder::BinderHost;
    use agave_kernel::{Actor, Kernel};

    #[test]
    fn framework_playback_runs_inside_mediaserver() {
        struct App {
            player: MediaPlayer,
        }
        impl Actor for App {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                let id = self.player.play_mp3(cx, "/sdcard/music/track.mp3", false);
                assert_eq!(id, 0);
            }
        }

        let mut kernel = Kernel::new();
        kernel
            .vfs_mut()
            .add_file("/sdcard/music/track.mp3", 417 * 20, 11);
        let bus = AudioBus::new();
        let surfaces = SurfaceStore::new();

        let media_pid = kernel.spawn_process("mediaserver");
        let svc_tid = kernel.spawn_thread(
            media_pid,
            "Binder Thread #1",
            Box::new(BinderHost::new(MediaPlayerService::new(
                bus.clone(),
                surfaces,
            ))),
        );
        crate::audio::AudioFlingerThread::spawn(&mut kernel, media_pid, bus);

        let app_pid = kernel.spawn_process("benchmark");
        let app_tid = kernel.spawn_thread(
            app_pid,
            "main",
            Box::new(App {
                player: MediaPlayer::new(BinderProxy::new(svc_tid)),
            }),
        );
        kernel.send(app_tid, Message::new(0));
        kernel.run_until(crate::audio::AUDIO_PERIOD * 30);

        let s = kernel.tracer().summarize("t");
        // Decode work landed in mediaserver, not the app.
        let media_instr = s.instr_by_process["mediaserver"];
        let app_instr = s.instr_by_process["benchmark"];
        assert!(
            media_instr > app_instr * 5,
            "mediaserver {media_instr} should dwarf app {app_instr}"
        );
        assert!(s.refs_by_thread.contains_key("TimedEventQueue"));
        assert!(s.refs_by_thread.contains_key("AudioTrackThread"));
        assert!(s.instr_by_region["libstagefright.so"] > 0);
    }
}
