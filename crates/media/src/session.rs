//! Decode-loop sessions: the thread that actually plays a file.

use crate::audio::{AudioTrack, AUDIO_PERIOD};
use crate::codec::{Mp3Decoder, Mp4VideoDecoder, MP3_FRAME_BYTES};
use agave_gfx::{Bitmap, SurfaceHandle};
use agave_kernel::{Actor, Ctx, Message, TICKS_PER_MS};

/// Message: decode the next chunk.
pub(crate) const MSG_SESSION_TICK: u32 = 0x6d74;
/// Message: stop playback.
pub(crate) const MSG_SESSION_STOP: u32 = 0x6d73;

/// Where a session's decoded output goes.
pub enum SessionOutput {
    /// Audio-only playback into a track.
    Audio(AudioTrack),
    /// Video playback into a surface, with optional audio.
    Video {
        /// Target window surface.
        surface: SurfaceHandle,
        /// Accompanying audio track, if any.
        audio: Option<AudioTrack>,
        /// Frames per second.
        fps: u32,
        /// Video bytes consumed per frame (bitrate / fps).
        bytes_per_frame: usize,
    },
}

/// A playback session: an actor that reads the source file, decodes, and
/// pushes output every period until EOF (or forever, when looping).
///
/// Spawn it in `mediaserver` for framework playback or in the app process
/// for VLC-style in-process decoding; the charging follows the hosting
/// process automatically.
pub struct MediaSession {
    path: String,
    codec_lib: String,
    output: SessionOutput,
    looping: bool,
    offset: u64,
    mp3: Option<Mp3Decoder>,
    mp4: Option<Mp4VideoDecoder>,
    running: bool,
    frames_out: u64,
}

impl MediaSession {
    /// Creates a session playing `path`, charging decode work to
    /// `codec_lib` (e.g. `"libstagefright.so"` or `"libvlccore.so"`).
    pub fn new(path: &str, codec_lib: &str, output: SessionOutput, looping: bool) -> Self {
        MediaSession {
            path: path.to_owned(),
            codec_lib: codec_lib.to_owned(),
            output,
            looping,
            offset: 0,
            mp3: None,
            mp4: None,
            running: true,
            frames_out: 0,
        }
    }

    fn period(&self) -> u64 {
        match &self.output {
            SessionOutput::Audio(_) => AUDIO_PERIOD,
            SessionOutput::Video { fps, .. } => (1000 / u64::from((*fps).max(1))) * TICKS_PER_MS,
        }
    }

    fn tick(&mut self, cx: &mut Ctx<'_>) {
        let lib = cx.intern_region(&self.codec_lib);
        // Snapshot output handles so decoder state can be borrowed mutably.
        enum Plan {
            Audio(AudioTrack),
            Video {
                surface: SurfaceHandle,
                audio: Option<AudioTrack>,
                bytes_per_frame: usize,
            },
        }
        let plan = match &self.output {
            SessionOutput::Audio(track) => Plan::Audio(track.clone()),
            SessionOutput::Video {
                surface,
                audio,
                bytes_per_frame,
                ..
            } => Plan::Video {
                surface: surface.clone(),
                audio: audio.clone(),
                bytes_per_frame: *bytes_per_frame,
            },
        };
        match plan {
            Plan::Audio(track) => {
                let mut buf = [0u8; MP3_FRAME_BYTES];
                let n = cx.fs_read(&self.path, self.offset, &mut buf);
                if n == 0 {
                    if self.looping {
                        self.offset = 0;
                    } else {
                        self.running = false;
                    }
                    return;
                }
                self.offset += n as u64;
                let decoder = self.mp3.get_or_insert_with(|| Mp3Decoder::new(lib));
                let pcm = decoder.decode_frame(cx, &buf[..n]);
                track.write_pcm(cx, &pcm);
                self.frames_out += 1;
            }
            Plan::Video {
                surface,
                audio,
                bytes_per_frame,
            } => {
                let bpf = bytes_per_frame;
                let mut buf = vec![0u8; bpf];
                let n = cx.fs_read(&self.path, self.offset, &mut buf);
                if n == 0 {
                    if self.looping {
                        self.offset = 0;
                    } else {
                        self.running = false;
                    }
                    return;
                }
                self.offset += n as u64;
                let (w, h) = (surface.width(), surface.height());
                let decoder = self
                    .mp4
                    .get_or_insert_with(|| Mp4VideoDecoder::new(lib, w, h));
                let pixels = decoder.decode_frame(cx, &buf[..n]);
                let frame = Bitmap::from_rgb565(w, h, &pixels);
                surface.post_buffer(cx, &frame);
                // Interleaved audio frame from the same container.
                if let Some(track) = audio {
                    let mut abuf = [0u8; MP3_FRAME_BYTES];
                    let an = cx.fs_read(&self.path, self.offset, &mut abuf);
                    if an > 0 {
                        self.offset += an as u64;
                        let adec = self.mp3.get_or_insert_with(|| Mp3Decoder::new(lib));
                        let pcm = adec.decode_frame(cx, &abuf[..an]);
                        track.write_pcm(cx, &pcm);
                    }
                }
                self.frames_out += 1;
            }
        }
    }
}

impl Actor for MediaSession {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self(Message::new(MSG_SESSION_TICK));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        match msg.what {
            MSG_SESSION_TICK if self.running => {
                self.tick(cx);
                if self.running {
                    cx.post_self_after(self.period(), Message::new(MSG_SESSION_TICK));
                }
            }
            MSG_SESSION_STOP => self.running = false,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audio::AudioBus;
    use agave_kernel::Kernel;

    #[test]
    fn audio_session_decodes_until_eof() {
        struct Boot {
            bus: AudioBus,
        }
        impl Actor for Boot {
            fn on_start(&mut self, cx: &mut Ctx<'_>) {
                let track = self.bus.create_track(cx);
                let pid = cx.pid();
                let session = MediaSession::new(
                    "/sdcard/short.mp3",
                    "libstagefright.so",
                    SessionOutput::Audio(track),
                    false,
                );
                cx.spawn_thread(pid, "TimedEventQueue", Box::new(session));
            }
            fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
        }

        let mut kernel = Kernel::new();
        // 5 full frames + a partial tail.
        kernel
            .vfs_mut()
            .add_file("/sdcard/short.mp3", (MP3_FRAME_BYTES * 5 + 100) as u64, 3);
        let bus = AudioBus::new();
        let pid = kernel.spawn_process("mediaserver");
        kernel.spawn_thread(pid, "main", Box::new(Boot { bus: bus.clone() }));
        kernel.run_until(AUDIO_PERIOD * 20);

        let s = kernel.tracer().summarize("t");
        assert!(s.instr_by_region["libstagefright.so"] > 0);
        assert!(s.data_by_region["ashmem"] > 0);
        assert!(s.refs_by_thread.contains_key("TimedEventQueue"));
        // EOF reached: no decode work scheduled at the end.
        let before = kernel.tracer().grand_total();
        kernel.run_until(kernel.now() + AUDIO_PERIOD * 10);
        let after = kernel.tracer().grand_total();
        // Only idle/swapper churn remains.
        assert!(after - before < 10_000, "session kept running after EOF");
    }

    #[test]
    fn looping_session_restarts_at_eof() {
        struct Boot {
            bus: AudioBus,
        }
        impl Actor for Boot {
            fn on_start(&mut self, cx: &mut Ctx<'_>) {
                let track = self.bus.create_track(cx);
                let pid = cx.pid();
                let session = MediaSession::new(
                    "/sdcard/loop.mp3",
                    "libvlccore.so",
                    SessionOutput::Audio(track),
                    true,
                );
                cx.spawn_thread(pid, "vlc-input", Box::new(session));
            }
            fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
        }
        let mut kernel = Kernel::new();
        kernel
            .vfs_mut()
            .add_file("/sdcard/loop.mp3", MP3_FRAME_BYTES as u64 * 2, 4);
        let bus = AudioBus::new();
        let pid = kernel.spawn_process("vlc");
        kernel.spawn_thread(pid, "main", Box::new(Boot { bus }));
        kernel.run_until(AUDIO_PERIOD * 30);
        let s = kernel.tracer().summarize("t");
        // Still producing long after the 2-frame file would have ended.
        assert!(s.instr_by_region["libvlccore.so"] > 20 * 40 * MP3_FRAME_BYTES as u64 / 10);
    }
}
