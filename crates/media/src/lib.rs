//! The media stack model: Stagefright-like decoding, AudioTrack transport,
//! and the AudioFlinger mixer.
//!
//! Two media architectures coexist on Gingerbread, and the paper's process
//! figures distinguish them clearly:
//!
//! * **Framework playback** (`music.mp3.*`, `gallery.mp4.view`): the app
//!   drives a `MediaPlayer` Binder interface; decoding happens inside the
//!   **`mediaserver`** process (Stagefright), which is why
//!   `gallery.mp4.view` charges 81 % of its instruction references there.
//! * **In-process playback** (`vlc.*`): the app bundles its own codecs
//!   (`libvlccore.so`) and only hands PCM to the platform for output.
//!
//! Both paths share the audio transport modeled here: decoded PCM lands in
//! an ashmem track buffer, an **`AudioTrackThread`** shuttles it toward the
//! mixer, and the **AudioFlinger** thread in `mediaserver` mixes active
//! tracks into the HAL buffer — the combination that puts
//! `AudioTrackThread` at 5.9 % in the paper's Table I.
//!
//! Decoders do real work on real bytes: they consume the registered input
//! file's content and produce deterministic PCM/frames that tests checksum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audio;
mod codec;
mod service;
mod session;

pub use audio::{AudioBus, AudioFlingerThread, AudioTrack, AudioTrackThread, AUDIO_PERIOD};
pub use codec::{Mp3Decoder, Mp4VideoDecoder, MP3_FRAME_BYTES, MP3_SAMPLES_PER_FRAME};
pub use service::{MediaPlayer, MediaPlayerService, MEDIA_OPEN_MP3, MEDIA_START, MEDIA_STOP};
pub use session::{MediaSession, SessionOutput};
