//! Batched sink delivery contract: buffering references and flushing
//! them in chunks must hand every sink the exact same stream — same
//! blocks, same order, same contents — as unbatched per-charge delivery,
//! with the end-of-run flush draining whatever the last partial batch
//! holds.

use agave_trace::{RefKind, Reference, ReferenceSink, Tracer, XorShift64};
use std::cell::RefCell;
use std::rc::Rc;

/// Records every delivered block verbatim, plus how the deliveries were
/// chunked (one length per `on_batch` call).
#[derive(Default)]
struct RecordingSink {
    stream: Vec<Reference>,
    batch_lens: Vec<usize>,
}

impl ReferenceSink for RecordingSink {
    fn on_reference(&mut self, r: &Reference) {
        self.stream.push(*r);
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        self.batch_lens.push(batch.len());
        for r in batch {
            self.on_reference(r);
        }
    }
}

/// Drives a deterministic pseudo-random charge mix against a tracer.
/// `flush_each` forces a flush after every charge, making delivery
/// effectively unbatched while using the same code path.
fn drive(tracer: &mut Tracer, flush_each: bool) {
    let pid = tracer.register_process("app_process");
    let t0 = tracer.register_thread(pid, "main");
    let t1 = tracer.register_thread(pid, "Binder_1");
    let code = tracer.intern_region("libdvm.so");
    let heap = tracer.intern_region("dalvik-heap");
    let mut rng = XorShift64::new(0x0BA7_C4ED);
    for i in 0..4_000u64 {
        let tid = if rng.below(3) == 0 { t1 } else { t0 };
        match rng.below(4) {
            0 => tracer.charge(pid, tid, code, RefKind::InstrFetch, 1 + rng.below(400)),
            1 => tracer.charge(pid, tid, heap, RefKind::DataRead, 1 + rng.below(64)),
            2 => tracer.charge(pid, tid, heap, RefKind::DataWrite, 1 + rng.below(16)),
            _ => tracer.charge_at(
                pid,
                tid,
                heap,
                RefKind::DataRead,
                0x1_0000 + i * 8,
                1 + rng.below(32),
            ),
        }
        if flush_each {
            tracer.flush_sinks();
        }
    }
    tracer.flush_sinks();
}

fn recorded(flush_each: bool) -> (Vec<Reference>, Vec<usize>) {
    let mut tracer = Tracer::new();
    let sink = Rc::new(RefCell::new(RecordingSink::default()));
    tracer.add_sink(sink.clone());
    drive(&mut tracer, flush_each);
    let sink = sink.borrow();
    (sink.stream.clone(), sink.batch_lens.clone())
}

#[test]
fn batched_stream_is_identical_to_unbatched() {
    let (batched, batched_lens) = recorded(false);
    let (unbatched, unbatched_lens) = recorded(true);
    assert_eq!(
        batched, unbatched,
        "batched delivery must preserve order and content"
    );
    // The same stream really took the two different delivery shapes:
    // full batches on one side, per-charge chunks on the other.
    assert!(
        batched_lens.contains(&Tracer::SINK_BATCH),
        "expected at least one full batch, got lens {batched_lens:?}"
    );
    assert!(unbatched_lens.iter().all(|&l| l < Tracer::SINK_BATCH));
    assert_eq!(batched_lens.iter().sum::<usize>(), batched.len());
}

#[test]
fn charges_stay_buffered_until_flush() {
    let mut tracer = Tracer::new();
    let sink = Rc::new(RefCell::new(RecordingSink::default()));
    tracer.add_sink(sink.clone());
    let pid = tracer.register_process("p");
    let tid = tracer.register_thread(pid, "t");
    let region = tracer.intern_region("r");

    tracer.charge(pid, tid, region, RefKind::InstrFetch, 10);
    assert_eq!(tracer.pending_sink_refs(), 1);
    assert!(
        sink.borrow().stream.is_empty(),
        "blocks must not reach sinks before a flush"
    );

    tracer.flush_sinks();
    assert_eq!(tracer.pending_sink_refs(), 0);
    assert_eq!(sink.borrow().stream.len(), 1);
    assert_eq!(sink.borrow().stream[0].words, 10);

    // Idempotent: nothing buffered, nothing delivered twice.
    tracer.flush_sinks();
    assert_eq!(sink.borrow().stream.len(), 1);
}

#[test]
fn batch_auto_flushes_at_capacity() {
    let mut tracer = Tracer::new();
    let sink = Rc::new(RefCell::new(RecordingSink::default()));
    tracer.add_sink(sink.clone());
    let pid = tracer.register_process("p");
    let tid = tracer.register_thread(pid, "t");
    let region = tracer.intern_region("r");

    // Single-word charges stay single-block, so exactly SINK_BATCH
    // charges trip the automatic flush without an explicit call.
    for _ in 0..Tracer::SINK_BATCH {
        tracer.charge_at(pid, tid, region, RefKind::DataRead, 0x2000, 1);
    }
    assert_eq!(tracer.pending_sink_refs(), 0);
    assert_eq!(sink.borrow().stream.len(), Tracer::SINK_BATCH);
    assert_eq!(sink.borrow().batch_lens, vec![Tracer::SINK_BATCH]);
}

#[test]
fn late_sink_never_sees_pre_registration_charges() {
    let mut tracer = Tracer::new();
    let early = Rc::new(RefCell::new(RecordingSink::default()));
    tracer.add_sink(early.clone());
    let pid = tracer.register_process("p");
    let tid = tracer.register_thread(pid, "t");
    let region = tracer.intern_region("r");

    tracer.charge(pid, tid, region, RefKind::InstrFetch, 7);
    let late = Rc::new(RefCell::new(RecordingSink::default()));
    tracer.add_sink(late.clone()); // must flush the pending block first
    tracer.charge(pid, tid, region, RefKind::InstrFetch, 9);
    tracer.flush_sinks();

    assert_eq!(early.borrow().stream.len(), 2);
    assert_eq!(late.borrow().stream.len(), 1);
    assert_eq!(late.borrow().stream[0].words, 9);
}
