//! Property tests for the tracer algebra: whatever the charging sequence,
//! the summaries stay consistent.

use agave_trace::{Breakdown, FigureTable, RefKind, RunSummary, Tracer};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn kind_of(i: u8) -> RefKind {
    RefKind::ALL[i as usize % 3]
}

proptest! {
    /// Totals are conserved: suming the summary maps gives the tracer
    /// totals, whatever the interleaving of charges.
    #[test]
    fn summary_totals_are_conserved(
        charges in proptest::collection::vec((0u8..4, 0u8..4, 0u8..3, 1u64..1000), 1..80),
    ) {
        let mut tracer = Tracer::new();
        let pids: Vec<_> = (0..4).map(|i| tracer.register_process(&format!("p{i}"))).collect();
        let tids: Vec<_> = pids
            .iter()
            .map(|&p| tracer.register_thread(p, "worker"))
            .collect();
        let regions: Vec<_> = (0..4).map(|i| tracer.intern_region(&format!("r{i}"))).collect();

        let mut expect = [0u64; 3];
        for &(pt, r, k, n) in &charges {
            let kind = kind_of(k);
            tracer.charge(pids[pt as usize], tids[pt as usize], regions[r as usize], kind, n);
            expect[kind.index()] += n;
        }
        let s = tracer.summarize("prop");
        prop_assert_eq!(s.total_instr, expect[0]);
        prop_assert_eq!(s.total_data, expect[1] + expect[2]);
        let instr_sum: u64 = s.instr_by_region.values().sum();
        let data_sum: u64 = s.data_by_region.values().sum();
        prop_assert_eq!(instr_sum, expect[0]);
        prop_assert_eq!(data_sum, expect[1] + expect[2]);
        let proc_sum: u64 = s.instr_by_process.values().sum();
        prop_assert_eq!(proc_sum, expect[0]);
        let thread_sum: u64 = s.refs_by_thread.values().sum();
        prop_assert_eq!(thread_sum, expect.iter().sum::<u64>());
    }

    /// Merging summaries is associative on every counter.
    #[test]
    fn merge_is_order_independent(
        a in proptest::collection::btree_map("[a-z]{1,6}", 1u64..1000, 0..8),
        b in proptest::collection::btree_map("[a-z]{1,6}", 1u64..1000, 0..8),
        c in proptest::collection::btree_map("[a-z]{1,6}", 1u64..1000, 0..8),
    ) {
        fn summary(map: &BTreeMap<String, u64>) -> RunSummary {
            let mut s = RunSummary::empty("x");
            s.refs_by_thread = map.clone();
            s
        }
        let mut left = RunSummary::empty("acc");
        left.merge(&summary(&a));
        left.merge(&summary(&b));
        left.merge(&summary(&c));
        let mut right = RunSummary::empty("acc");
        right.merge(&summary(&c));
        right.merge(&summary(&a));
        right.merge(&summary(&b));
        prop_assert_eq!(left.refs_by_thread, right.refs_by_thread);
    }

    /// `top_k_with_other` preserves the total for any k.
    #[test]
    fn top_k_preserves_total(
        map in proptest::collection::btree_map("[a-z]{1,8}", 1u64..10_000, 0..30),
        k in 0usize..12,
    ) {
        let breakdown = Breakdown::from_map(&map);
        let rows = breakdown.top_k_with_other(k);
        let total: u64 = rows.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(total, breakdown.total());
    }

    /// Figure shares per benchmark sum to ~1 whenever the run is nonempty.
    #[test]
    fn figure_rows_sum_to_one(
        maps in proptest::collection::vec(
            proptest::collection::btree_map("[a-z]{1,6}", 1u64..1000, 1..10),
            1..6,
        ),
        k in 1usize..6,
    ) {
        let runs: Vec<RunSummary> = maps
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut s = RunSummary::empty(&format!("bench{i}"));
                s.instr_by_region = m.clone();
                s
            })
            .collect();
        let fig = FigureTable::figure1(&runs, k);
        for run in &runs {
            let mut sum = fig.share(&run.benchmark, "other");
            for name in fig.legend() {
                sum += fig.share(&run.benchmark, name);
            }
            prop_assert!((sum - 1.0).abs() < 1e-9, "{}: {}", run.benchmark, sum);
        }
    }
}
