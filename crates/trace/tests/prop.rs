//! Randomized tests for the tracer algebra: whatever the charging
//! sequence, the summaries stay consistent. Inputs are drawn from the
//! in-tree [`XorShift64`] generator with fixed seeds, so every case is
//! reproducible.

use agave_trace::{Breakdown, FigureTable, RefKind, RunSummary, Tracer, XorShift64};
use std::collections::BTreeMap;

const CASES: u64 = 64;

fn random_map(rng: &mut XorShift64, max_len: usize) -> BTreeMap<String, u64> {
    let len = rng.index(max_len + 1);
    (0..len)
        .map(|_| {
            let name: String = (0..rng.range(1, 7))
                .map(|_| (b'a' + (rng.below(26) as u8)) as char)
                .collect();
            (name, rng.range(1, 1000))
        })
        .collect()
}

/// Totals are conserved: summing the summary maps gives the tracer
/// totals, whatever the interleaving of charges.
#[test]
fn summary_totals_are_conserved() {
    let mut rng = XorShift64::new(0x7ace);
    for _ in 0..CASES {
        let mut tracer = Tracer::new();
        let pids: Vec<_> = (0..4)
            .map(|i| tracer.register_process(&format!("p{i}")))
            .collect();
        let tids: Vec<_> = pids
            .iter()
            .map(|&p| tracer.register_thread(p, "worker"))
            .collect();
        let regions: Vec<_> = (0..4)
            .map(|i| tracer.intern_region(&format!("r{i}")))
            .collect();

        let mut expect = [0u64; 3];
        for _ in 0..rng.range(1, 80) {
            let pt = rng.index(4);
            let r = rng.index(4);
            let kind = RefKind::ALL[rng.index(3)];
            let n = rng.range(1, 1000);
            tracer.charge(pids[pt], tids[pt], regions[r], kind, n);
            expect[kind.index()] += n;
        }
        let s = tracer.summarize("prop");
        assert_eq!(s.total_instr, expect[0]);
        assert_eq!(s.total_data, expect[1] + expect[2]);
        let instr_sum: u64 = s.instr_by_region.values().sum();
        let data_sum: u64 = s.data_by_region.values().sum();
        assert_eq!(instr_sum, expect[0]);
        assert_eq!(data_sum, expect[1] + expect[2]);
        let proc_sum: u64 = s.instr_by_process.values().sum();
        assert_eq!(proc_sum, expect[0]);
        let thread_sum: u64 = s.refs_by_thread.values().sum();
        assert_eq!(thread_sum, expect.iter().sum::<u64>());
    }
}

/// Merging summaries is order-independent on every counter.
#[test]
fn merge_is_order_independent() {
    fn summary(map: &BTreeMap<String, u64>) -> RunSummary {
        let mut s = RunSummary::empty("x");
        s.refs_by_thread = map.clone();
        s
    }
    let mut rng = XorShift64::new(0x3e59);
    for _ in 0..CASES {
        let a = random_map(&mut rng, 8);
        let b = random_map(&mut rng, 8);
        let c = random_map(&mut rng, 8);
        let mut left = RunSummary::empty("acc");
        left.merge(&summary(&a));
        left.merge(&summary(&b));
        left.merge(&summary(&c));
        let mut right = RunSummary::empty("acc");
        right.merge(&summary(&c));
        right.merge(&summary(&a));
        right.merge(&summary(&b));
        assert_eq!(left.refs_by_thread, right.refs_by_thread);
    }
}

/// `top_k_with_other` preserves the total for any k.
#[test]
fn top_k_preserves_total() {
    let mut rng = XorShift64::new(0x70b1);
    for _ in 0..CASES {
        let map = random_map(&mut rng, 30);
        let k = rng.index(12);
        let breakdown = Breakdown::from_map(&map);
        let rows = breakdown.top_k_with_other(k);
        let total: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(total, breakdown.total());
    }
}

/// Figure shares per benchmark sum to ~1 whenever the run is nonempty.
#[test]
fn figure_rows_sum_to_one() {
    let mut rng = XorShift64::new(0xf165);
    for _ in 0..CASES {
        let runs: Vec<RunSummary> = (0..rng.range(1, 6))
            .map(|i| {
                let mut s = RunSummary::empty(&format!("bench{i}"));
                loop {
                    s.instr_by_region = random_map(&mut rng, 9);
                    if !s.instr_by_region.is_empty() {
                        break;
                    }
                }
                s
            })
            .collect();
        let k = rng.range(1, 6) as usize;
        let fig = FigureTable::figure1(&runs, k);
        for run in &runs {
            let mut sum = fig.share(&run.benchmark, "other");
            for name in fig.legend() {
                sum += fig.share(&run.benchmark, name);
            }
            assert!((sum - 1.0).abs() < 1e-9, "{}: {}", run.benchmark, sum);
        }
    }
}
