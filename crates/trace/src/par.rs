//! The workspace's fan-out primitive: a hand-rolled work-stealing
//! `parallel_map` over scoped threads.
//!
//! Born in `agave_core::engine` to parallelize the 25-workload suite,
//! the primitive is pure `std` and knows nothing about workloads, so it
//! lives here in the base crate where every layer — the suite runner,
//! the trace recorder, and the `agave-serve` worker pool — can share it.
//! `agave_core::engine::parallel_map` re-exports it, so existing callers
//! are untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs`-style request: 0 means one per available CPU.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// Computes `f(0..count)` on up to `jobs` scoped threads and returns the
/// results in index order.
///
/// Work distribution is a shared atomic cursor (work stealing by index):
/// idle workers claim the next index, so a slow item never stalls the
/// rest of the queue behind a static partition. A panic in any worker
/// propagates to the caller once all threads have been joined.
///
/// `jobs == 0` means "one per available CPU"; `jobs == 1` runs inline on
/// the calling thread (the serial path, with zero threading overhead).
pub fn parallel_map<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs).min(count.max(1));
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a claimed index")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_job_count() {
        for jobs in [0, 1, 2, 3, 8, 64] {
            let out = parallel_map(17, jobs, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn jobs_zero_resolves_to_available_cpus() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(7), 7);
    }

    #[test]
    fn long_lived_workers_run_concurrently() {
        // The serve worker pool relies on `parallel_map(n, n, loop)`
        // giving each index its own live thread: all n closures must be
        // in flight at once, not serialized behind one worker.
        use std::sync::atomic::AtomicUsize;
        use std::sync::{Condvar, Mutex};
        let arrived = AtomicUsize::new(0);
        let gate = (Mutex::new(false), Condvar::new());
        let n = 4;
        let out = parallel_map(n, n, |i| {
            arrived.fetch_add(1, Ordering::SeqCst);
            let (lock, cv) = &gate;
            let mut open = lock.lock().unwrap();
            if arrived.load(Ordering::SeqCst) == n {
                *open = true;
                cv.notify_all();
            }
            while !*open {
                open = cv.wait(open).unwrap();
            }
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
