//! A minimal JSON writer.
//!
//! The workspace builds with zero external dependencies, so report types
//! serialize themselves through this module instead of serde. Only
//! *writing* is supported — the archival artifacts (`results.json`,
//! figure exports) are consumed by external tooling, never read back by
//! the simulator.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal (no surrounding
/// quotes).
///
/// # Example
///
/// ```
/// assert_eq!(agave_trace::json::escape("a\"b\\c"), "a\\\"b\\\\c");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a finite `f64` (JSON has no NaN/Inf; those become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders a `name -> count` map as a JSON object with stable key order.
pub fn u64_map(map: &BTreeMap<String, u64>) -> String {
    let mut obj = Object::new();
    for (k, v) in map {
        obj.field_u64(k, *v);
    }
    obj.finish()
}

/// Renders an iterator of pre-rendered JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// An incremental JSON object writer.
///
/// # Example
///
/// ```
/// use agave_trace::json::Object;
///
/// let mut obj = Object::new();
/// obj.field_str("name", "x").field_u64("count", 3);
/// assert_eq!(obj.finish(), r#"{"name":"x","count":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct Object {
    buf: String,
}

impl Object {
    /// Starts an empty object.
    pub fn new() -> Self {
        Object { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Adds a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        let s = string(v);
        self.key(k).push_str(&s);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Adds a `usize` field.
    pub fn field_usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.field_u64(k, v as u64)
    }

    /// Adds a floating-point field (`null` if non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        let s = number(v);
        self.key(k).push_str(&s);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Adds a field whose value is already-rendered JSON (nested object,
    /// array, …).
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k).push_str(raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builds_in_order() {
        let mut obj = Object::new();
        obj.field_str("s", "v")
            .field_u64("n", 7)
            .field_f64("f", 0.5)
            .field_bool("b", true)
            .field_raw("nested", "[1,2]");
        assert_eq!(
            obj.finish(),
            r#"{"s":"v","n":7,"f":0.5,"b":true,"nested":[1,2]}"#
        );
    }

    #[test]
    fn maps_and_arrays_render() {
        let mut m = BTreeMap::new();
        m.insert("b".to_owned(), 2u64);
        m.insert("a".to_owned(), 1u64);
        assert_eq!(u64_map(&m), r#"{"a":1,"b":2}"#);
        assert_eq!(array(vec!["1".into(), "\"x\"".into()]), r#"[1,"x"]"#);
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.25), "2.25");
    }
}
