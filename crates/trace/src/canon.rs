//! Thread-name canonicalization.
//!
//! The paper's Table I aggregates references by thread *family*: all
//! `AsyncTask #1`, `AsyncTask #2`, … instances count as `AsyncTask`, every
//! `Thread-12`-style generic worker counts as `Thread`, and binder pool
//! threads collapse to `Binder Thread`. This module implements that rule.

/// Canonicalizes a concrete thread name into its Table-I family name.
///
/// The rules mirror Android's thread-naming conventions on Gingerbread:
///
/// * a trailing ` #N` ordinal is stripped (`AsyncTask #3` → `AsyncTask`);
/// * a trailing `-N` ordinal is stripped (`Thread-12` → `Thread`,
///   `pool-1-thread-2` → `pool-1-thread`);
/// * kernel per-CPU workers keep their base name (`ata_sff/0` → `ata_sff`);
/// * anything else is returned unchanged.
///
/// # Example
///
/// ```
/// use agave_trace::canonical_thread_name;
///
/// assert_eq!(canonical_thread_name("AsyncTask #7"), "AsyncTask");
/// assert_eq!(canonical_thread_name("Thread-42"), "Thread");
/// assert_eq!(canonical_thread_name("Binder Thread #2"), "Binder Thread");
/// assert_eq!(canonical_thread_name("SurfaceFlinger"), "SurfaceFlinger");
/// ```
pub fn canonical_thread_name(name: &str) -> &str {
    // Strip " #N" ordinals.
    if let Some(pos) = name.rfind(" #") {
        let suffix = &name[pos + 2..];
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            return &name[..pos];
        }
    }
    // Strip "-N" ordinals.
    if let Some(pos) = name.rfind('-') {
        let suffix = &name[pos + 1..];
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            return &name[..pos];
        }
    }
    // Strip "/N" per-CPU suffixes on kernel workers.
    if let Some(pos) = name.rfind('/') {
        let suffix = &name[pos + 1..];
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            return &name[..pos];
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_hash_ordinals() {
        assert_eq!(canonical_thread_name("AsyncTask #1"), "AsyncTask");
        assert_eq!(canonical_thread_name("AsyncTask #128"), "AsyncTask");
        assert_eq!(canonical_thread_name("Binder Thread #3"), "Binder Thread");
    }

    #[test]
    fn strips_dash_ordinals() {
        assert_eq!(canonical_thread_name("Thread-1"), "Thread");
        assert_eq!(canonical_thread_name("Thread-999"), "Thread");
    }

    #[test]
    fn strips_percpu_suffix() {
        assert_eq!(canonical_thread_name("ata_sff/0"), "ata_sff");
        assert_eq!(canonical_thread_name("ksoftirqd/0"), "ksoftirqd");
    }

    #[test]
    fn leaves_plain_names_alone() {
        for name in [
            "SurfaceFlinger",
            "GC",
            "Compiler",
            "AudioTrackThread",
            "main",
        ] {
            assert_eq!(canonical_thread_name(name), name);
        }
    }

    #[test]
    fn non_numeric_suffixes_are_kept() {
        assert_eq!(canonical_thread_name("Thread-abc"), "Thread-abc");
        assert_eq!(canonical_thread_name("x #y"), "x #y");
        assert_eq!(canonical_thread_name("a/b"), "a/b");
    }

    #[test]
    fn empty_and_edge_inputs() {
        assert_eq!(canonical_thread_name(""), "");
        assert_eq!(canonical_thread_name("-1"), "");
        assert_eq!(canonical_thread_name("#1"), "#1");
    }
}
