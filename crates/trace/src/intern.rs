//! String interning for region, process and thread names.
//!
//! The simulator charges references millions of times; carrying `String`s on
//! that path would dominate runtime. Names are interned once into a
//! [`NameTable`] and referenced by the copyable [`NameId`] thereafter.

use std::collections::HashMap;
use std::fmt;

/// A compact handle to an interned name.
///
/// `NameId`s are only meaningful relative to the [`NameTable`] that issued
/// them. They are cheap to copy, hash and compare, which makes them suitable
/// as counter keys on the charging hot path.
///
/// # Example
///
/// ```
/// use agave_trace::NameTable;
///
/// let mut table = NameTable::new();
/// let a = table.intern("libdvm.so");
/// let b = table.intern("libdvm.so");
/// assert_eq!(a, b);
/// assert_eq!(table.resolve(a), "libdvm.so");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(u32);

impl NameId {
    /// Returns the raw index of this id inside its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from its raw index (e.g. after trace-file
    /// transport).
    ///
    /// Only meaningful for values previously obtained from
    /// [`NameId::index`] on an id issued by the same table (or a table
    /// rebuilt in the same order, as `NameDirectory::from_parts` does).
    pub fn from_raw(value: u32) -> Self {
        NameId(value)
    }
}

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name#{}", self.0)
    }
}

/// An append-only intern table mapping strings to [`NameId`]s.
///
/// Interning the same string twice yields the same id. Lookups by id are
/// `O(1)`.
#[derive(Debug, Default, Clone)]
pub struct NameTable {
    by_name: HashMap<String, NameId>,
    names: Vec<String>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if it was seen before.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NameId(u32::try_from(self.names.len()).expect("name table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the id for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NameId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("heap");
        let b = t.intern("heap");
        let c = t.intern("stack");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = NameTable::new();
        for name in ["libdvm.so", "mspace", "fb0", "dalvik-heap"] {
            let id = t.intern(name);
            assert_eq!(t.resolve(id), name);
        }
    }

    #[test]
    fn lookup_misses_return_none() {
        let t = NameTable::new();
        assert!(t.lookup("nope").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn iter_yields_in_order() {
        let mut t = NameTable::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected.len(), 3);
        for (i, (id, name)) in collected.iter().enumerate() {
            assert_eq!(*id, ids[i]);
            assert_eq!(*name, ["a", "b", "c"][i]);
        }
    }
}
