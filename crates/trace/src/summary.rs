//! Serializable per-run summaries and percentage breakdowns.

use crate::json;
use std::collections::BTreeMap;

/// The distilled result of one benchmark run: every distribution the paper's
/// figures need, keyed by human-readable names.
///
/// Produced by [`crate::Tracer::summarize`]; figures are assembled from a
/// `Vec<RunSummary>` (one per benchmark) by [`crate::FigureTable`] and
/// [`crate::TableOne`]. Serializes to JSON via [`RunSummary::to_json`]
/// for archival in `EXPERIMENTS.md`-style artifacts.
///
/// # Timing metadata
///
/// [`RunSummary::wall_time_ns`] records how long the *host* took to
/// simulate the run; the engine layer stamps it after the fact. It is
/// metadata about the harness, not a measurement of the workload, so it
/// is excluded from both equality ([`PartialEq`]) and [`RunSummary::to_json`]:
/// two runs of the same deterministic simulation compare equal and
/// serialize byte-identically regardless of host speed or suite
/// parallelism.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Benchmark label, e.g. `"gallery.mp4.view"` or `"429.mcf"`.
    pub benchmark: String,
    /// Instruction fetches per VMA region name (Fig. 1 input).
    pub instr_by_region: BTreeMap<String, u64>,
    /// Data references per VMA region name (Fig. 2 input).
    pub data_by_region: BTreeMap<String, u64>,
    /// Instruction fetches per process name (Fig. 3 input).
    pub instr_by_process: BTreeMap<String, u64>,
    /// Data references per process name (Fig. 4 input).
    pub data_by_process: BTreeMap<String, u64>,
    /// All references per canonical thread name (Table I input).
    pub refs_by_thread: BTreeMap<String, u64>,
    /// Total instruction fetches.
    pub total_instr: u64,
    /// Total data references (loads + stores).
    pub total_data: u64,
    /// Processes that issued at least one reference.
    pub active_processes: usize,
    /// Threads that issued at least one reference.
    pub active_threads: usize,
    /// Processes that existed during the run (active or not).
    pub spawned_processes: usize,
    /// Threads that existed during the run.
    pub spawned_threads: usize,
    /// Host wall-clock time spent simulating this run, in nanoseconds
    /// (0 when unmeasured). Excluded from equality and JSON — see the
    /// type-level docs.
    pub wall_time_ns: u64,
}

/// Equality over the *measured* distributions only; `wall_time_ns` is
/// host-dependent metadata and deliberately ignored, so deterministic
/// runs compare equal across hosts and scheduling.
impl PartialEq for RunSummary {
    fn eq(&self, other: &Self) -> bool {
        self.benchmark == other.benchmark
            && self.instr_by_region == other.instr_by_region
            && self.data_by_region == other.data_by_region
            && self.instr_by_process == other.instr_by_process
            && self.data_by_process == other.data_by_process
            && self.refs_by_thread == other.refs_by_thread
            && self.total_instr == other.total_instr
            && self.total_data == other.total_data
            && self.active_processes == other.active_processes
            && self.active_threads == other.active_threads
            && self.spawned_processes == other.spawned_processes
            && self.spawned_threads == other.spawned_threads
    }
}

impl Eq for RunSummary {}

impl RunSummary {
    /// Number of distinct regions instructions were fetched from.
    ///
    /// The paper reports 42–55 per Agave application.
    pub fn code_region_count(&self) -> usize {
        self.instr_by_region.len()
    }

    /// Number of distinct regions data references touched.
    ///
    /// The paper reports 32–104 per Agave application.
    pub fn data_region_count(&self) -> usize {
        self.data_by_region.len()
    }

    /// Share (0.0–1.0) of instruction fetches attributed to `process`.
    pub fn instr_process_share(&self, process: &str) -> f64 {
        share(&self.instr_by_process, process, self.total_instr)
    }

    /// Share (0.0–1.0) of data references attributed to `process`.
    pub fn data_process_share(&self, process: &str) -> f64 {
        share(&self.data_by_process, process, self.total_data)
    }

    /// Share (0.0–1.0) of instruction fetches from `region`.
    pub fn instr_region_share(&self, region: &str) -> f64 {
        share(&self.instr_by_region, region, self.total_instr)
    }

    /// Share (0.0–1.0) of data references to `region`.
    pub fn data_region_share(&self, region: &str) -> f64 {
        share(&self.data_by_region, region, self.total_data)
    }

    /// Total memory references charged (instruction fetches + data).
    pub fn total_refs(&self) -> u64 {
        self.total_instr + self.total_data
    }

    /// Host wall-clock time spent simulating this run.
    pub fn wall_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.wall_time_ns)
    }

    /// Simulation throughput: charged references per host second, or 0.0
    /// when no wall time was recorded.
    pub fn refs_per_sec(&self) -> f64 {
        // Sub-microsecond wall times are clock noise, not a measurement
        // window: dividing by them printed absurd throughputs for
        // trivial workloads. Same guard as
        // `agave_telemetry::format::refs_per_sec`.
        if self.wall_time_ns < 1_000 {
            return 0.0;
        }
        self.total_refs() as f64 * 1e9 / self.wall_time_ns as f64
    }

    /// Merges `other` into `self`, summing all counters.
    ///
    /// Used to build suite-wide aggregates such as Table I.
    pub fn merge(&mut self, other: &RunSummary) {
        merge_map(&mut self.instr_by_region, &other.instr_by_region);
        merge_map(&mut self.data_by_region, &other.data_by_region);
        merge_map(&mut self.instr_by_process, &other.instr_by_process);
        merge_map(&mut self.data_by_process, &other.data_by_process);
        merge_map(&mut self.refs_by_thread, &other.refs_by_thread);
        self.total_instr += other.total_instr;
        self.total_data += other.total_data;
        self.active_processes += other.active_processes;
        self.active_threads += other.active_threads;
        self.spawned_processes += other.spawned_processes;
        self.spawned_threads += other.spawned_threads;
        // Aggregate host cost: the sum of per-run wall times (CPU-seconds
        // of simulation, regardless of how the runs were scheduled).
        self.wall_time_ns += other.wall_time_ns;
    }

    /// The element-wise difference `self − earlier` (saturating): the
    /// references charged *after* the `earlier` snapshot was taken. Used
    /// for phase analysis (e.g. startup vs steady state). Process/thread
    /// population counts are taken from `self`.
    pub fn delta(&self, earlier: &RunSummary) -> RunSummary {
        fn diff(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
            a.iter()
                .filter_map(|(k, &v)| {
                    let rest = v.saturating_sub(b.get(k).copied().unwrap_or(0));
                    (rest > 0).then(|| (k.clone(), rest))
                })
                .collect()
        }
        RunSummary {
            benchmark: self.benchmark.clone(),
            instr_by_region: diff(&self.instr_by_region, &earlier.instr_by_region),
            data_by_region: diff(&self.data_by_region, &earlier.data_by_region),
            instr_by_process: diff(&self.instr_by_process, &earlier.instr_by_process),
            data_by_process: diff(&self.data_by_process, &earlier.data_by_process),
            refs_by_thread: diff(&self.refs_by_thread, &earlier.refs_by_thread),
            total_instr: self.total_instr.saturating_sub(earlier.total_instr),
            total_data: self.total_data.saturating_sub(earlier.total_data),
            active_processes: self.active_processes,
            active_threads: self.active_threads,
            spawned_processes: self.spawned_processes,
            spawned_threads: self.spawned_threads,
            wall_time_ns: self.wall_time_ns.saturating_sub(earlier.wall_time_ns),
        }
    }

    /// Serializes the summary as a JSON object (keys in declaration
    /// order, maps in name order). `wall_time_ns` is excluded so archived
    /// results are byte-identical across hosts and `--jobs` settings.
    pub fn to_json(&self) -> String {
        json::Object::new()
            .field_str("benchmark", &self.benchmark)
            .field_raw("instr_by_region", &json::u64_map(&self.instr_by_region))
            .field_raw("data_by_region", &json::u64_map(&self.data_by_region))
            .field_raw("instr_by_process", &json::u64_map(&self.instr_by_process))
            .field_raw("data_by_process", &json::u64_map(&self.data_by_process))
            .field_raw("refs_by_thread", &json::u64_map(&self.refs_by_thread))
            .field_u64("total_instr", self.total_instr)
            .field_u64("total_data", self.total_data)
            .field_usize("active_processes", self.active_processes)
            .field_usize("active_threads", self.active_threads)
            .field_usize("spawned_processes", self.spawned_processes)
            .field_usize("spawned_threads", self.spawned_threads)
            .finish()
    }

    /// An empty summary with the given label, useful as a merge seed.
    pub fn empty(benchmark: &str) -> Self {
        RunSummary {
            benchmark: benchmark.to_owned(),
            instr_by_region: BTreeMap::new(),
            data_by_region: BTreeMap::new(),
            instr_by_process: BTreeMap::new(),
            data_by_process: BTreeMap::new(),
            refs_by_thread: BTreeMap::new(),
            total_instr: 0,
            total_data: 0,
            active_processes: 0,
            active_threads: 0,
            spawned_processes: 0,
            spawned_threads: 0,
            wall_time_ns: 0,
        }
    }
}

fn share(map: &BTreeMap<String, u64>, key: &str, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    map.get(key).copied().unwrap_or(0) as f64 / total as f64
}

fn merge_map(into: &mut BTreeMap<String, u64>, from: &BTreeMap<String, u64>) {
    for (k, v) in from {
        *into.entry(k.clone()).or_default() += v;
    }
}

/// A named percentage breakdown: rows sorted descending by count, with
/// convenience accessors used by the figure renderers.
///
/// # Example
///
/// ```
/// use agave_trace::Breakdown;
/// use std::collections::BTreeMap;
///
/// let mut m = BTreeMap::new();
/// m.insert("heap".to_owned(), 60u64);
/// m.insert("stack".to_owned(), 40u64);
/// let b = Breakdown::from_map(&m);
/// assert_eq!(b.rows()[0].0, "heap");
/// assert!((b.share("stack") - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    rows: Vec<(String, u64)>,
    total: u64,
}

impl Breakdown {
    /// Builds a breakdown from a name→count map.
    pub fn from_map(map: &BTreeMap<String, u64>) -> Self {
        let mut rows: Vec<(String, u64)> = map
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total = rows.iter().map(|(_, v)| v).sum();
        Breakdown { rows, total }
    }

    /// Rows in descending count order.
    pub fn rows(&self) -> &[(String, u64)] {
        &self.rows
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct names with a nonzero count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Share (0.0–1.0) of `name` in the total.
    pub fn share(&self, name: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.rows
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// The top `k` rows plus an `"other (N items)"` row aggregating the rest,
    /// matching the legend style of the paper's figures.
    pub fn top_k_with_other(&self, k: usize) -> Vec<(String, u64)> {
        if self.rows.len() <= k {
            return self.rows.clone();
        }
        let mut out: Vec<(String, u64)> = self.rows[..k].to_vec();
        let rest: u64 = self.rows[k..].iter().map(|(_, v)| v).sum();
        let n = self.rows.len() - k;
        out.push((format!("other ({n} items)"), rest));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn breakdown_sorts_descending() {
        let b = Breakdown::from_map(&map(&[("a", 1), ("b", 5), ("c", 3)]));
        let names: Vec<_> = b.rows().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["b", "c", "a"]);
        assert_eq!(b.total(), 9);
    }

    #[test]
    fn breakdown_drops_zero_rows() {
        let b = Breakdown::from_map(&map(&[("a", 0), ("b", 2)]));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn top_k_with_other_aggregates_tail() {
        let b = Breakdown::from_map(&map(&[("a", 10), ("b", 5), ("c", 2), ("d", 1)]));
        let top = b.top_k_with_other(2);
        assert_eq!(top.len(), 3);
        assert_eq!(top[2], ("other (2 items)".to_owned(), 3));
    }

    #[test]
    fn top_k_with_few_rows_is_identity() {
        let b = Breakdown::from_map(&map(&[("a", 10), ("b", 5)]));
        assert_eq!(b.top_k_with_other(9).len(), 2);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = RunSummary::empty("suite");
        let mut one = RunSummary::empty("one");
        one.refs_by_thread = map(&[("SurfaceFlinger", 100), ("GC", 10)]);
        one.total_instr = 60;
        one.total_data = 50;
        let mut two = RunSummary::empty("two");
        two.refs_by_thread = map(&[("SurfaceFlinger", 50), ("AsyncTask", 25)]);
        two.total_instr = 40;
        two.total_data = 35;
        a.merge(&one);
        a.merge(&two);
        assert_eq!(a.refs_by_thread["SurfaceFlinger"], 150);
        assert_eq!(a.refs_by_thread["AsyncTask"], 25);
        assert_eq!(a.total_instr, 100);
        assert_eq!(a.total_data, 85);
    }

    #[test]
    fn shares_handle_missing_and_zero_totals() {
        let s = RunSummary::empty("x");
        assert_eq!(s.instr_process_share("benchmark"), 0.0);
        let b = Breakdown::from_map(&BTreeMap::new());
        assert!(b.is_empty());
        assert_eq!(b.share("anything"), 0.0);
    }

    #[test]
    fn delta_subtracts_and_drops_empty_rows() {
        let mut early = RunSummary::empty("x");
        early.refs_by_thread = map(&[("SurfaceFlinger", 100), ("GC", 10)]);
        early.total_instr = 60;
        let mut late = early.clone();
        late.refs_by_thread.insert("SurfaceFlinger".into(), 250);
        late.refs_by_thread.insert("Compiler".into(), 40);
        late.total_instr = 200;
        let d = late.delta(&early);
        assert_eq!(d.refs_by_thread["SurfaceFlinger"], 150);
        assert_eq!(d.refs_by_thread["Compiler"], 40);
        assert!(!d.refs_by_thread.contains_key("GC")); // unchanged → dropped
        assert_eq!(d.total_instr, 140);
    }

    #[test]
    fn wall_time_is_metadata_not_measurement() {
        let mut a = RunSummary::empty("x");
        a.total_instr = 100;
        a.total_data = 20;
        let mut b = a.clone();
        b.wall_time_ns = 5_000_000;
        // Identical measurements compare equal and serialize identically
        // no matter how long the host took.
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.to_json().contains("wall_time"));
        assert_eq!(a.refs_per_sec(), 0.0);
        assert_eq!(b.total_refs(), 120);
        assert!((b.refs_per_sec() - 24_000.0).abs() < 1e-9);
        assert_eq!(b.wall_time(), std::time::Duration::from_millis(5));
        // Merging accumulates host cost; delta subtracts it.
        let mut merged = RunSummary::empty("m");
        merged.merge(&b);
        merged.merge(&b);
        assert_eq!(merged.wall_time_ns, 10_000_000);
        assert_eq!(merged.delta(&b).wall_time_ns, 5_000_000);
    }

    #[test]
    fn summaries_cross_thread_boundaries() {
        // The parallel suite moves summaries out of worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RunSummary>();
        assert_send_sync::<Breakdown>();
    }

    #[test]
    fn to_json_renders_all_fields() {
        let mut s = RunSummary::empty("roundtrip");
        s.instr_by_region = map(&[("libdvm.so", 123)]);
        s.total_instr = 123;
        let json = s.to_json();
        assert!(json.starts_with(r#"{"benchmark":"roundtrip""#));
        assert!(json.contains(r#""instr_by_region":{"libdvm.so":123}"#));
        assert!(json.contains(r#""total_instr":123"#));
        assert!(json.contains(r#""spawned_threads":0"#));
        assert!(json.ends_with('}'));
    }
}
