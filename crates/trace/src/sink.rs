//! The reference-stream observer API.
//!
//! The paper's instrumentation classifies every memory reference by
//! (process, thread, VMA region, kind) and aggregates counts. Counters
//! alone cannot answer locality questions — which is exactly what the
//! paper leaves open: Android spreads instruction fetches over >65
//! regions where SPEC uses two, but the atomic CPU model cannot say what
//! that does to a cache. [`ReferenceSink`] turns the tracer from a pure
//! aggregator into a broadcaster: every classified reference (with an
//! address) is offered to pluggable consumers — the `agave-cache` memory
//! hierarchy today; sampling profilers, trace dumps or DRAM models later.
//!
//! # Addresses
//!
//! Charging sites that touch simulated memory for real (loads, stores,
//! buffer copies) pass their actual virtual addresses through
//! [`crate::Tracer::charge_at`]. Analytic charge sites (instruction-fetch
//! costs, syscall overheads) have no concrete address; for those the
//! tracer synthesizes a deterministic per-region stream: each region owns
//! a disjoint synthetic address range and an independent cyclic cursor
//! that walks a small window of it, modeling the bounded working set of
//! straight-line code or metadata inside one region. Synthetic ranges
//! start at 2^40, far above every real (32-bit-style) address, so the two
//! kinds never alias in a cache tag.
//!
//! A [`Reference`] describes a *block* of consecutive 32-bit word
//! accesses rather than a single access, matching the tracer's bulk
//! charging; consumers expand blocks at whatever granularity they model
//! (per cache line, per page, …).
//!
//! # Threading model
//!
//! A [`SharedSink`] is an `Rc<RefCell<…>>`: deliberately thread-*local*.
//! Each simulated world (kernel + tracer + sinks) lives and dies on one
//! thread; the parallel suite runner gets its concurrency by running
//! whole worlds on different threads, never by sharing one world. Only
//! the *results* cross threads — [`crate::RunSummary`] and
//! [`NameDirectory`] are plain owned data and therefore `Send + Sync`,
//! which is what `agave_core::engine::run_suite_parallel` relies on.

use crate::intern::NameId;
use crate::kind::RefKind;
use crate::tracer::{Pid, Tid};
use std::cell::RefCell;
use std::rc::Rc;

/// A classified block of memory references, broadcast to sinks.
///
/// The block covers `words` consecutive 32-bit word accesses starting at
/// `addr` (the simulator charges one reference per word, see
/// `agave_kernel::Ctx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// The charged process.
    pub pid: Pid,
    /// The charged thread.
    pub tid: Tid,
    /// The VMA region the block falls in.
    pub region: NameId,
    /// Instruction fetch, data read, or data write.
    pub kind: RefKind,
    /// Virtual address of the first word (real or synthetic).
    pub addr: u64,
    /// Number of consecutive 32-bit word accesses.
    pub words: u64,
}

impl Reference {
    /// Total bytes spanned by the block.
    pub fn bytes(&self) -> u64 {
        self.words * 4
    }
}

/// A consumer of the classified reference stream.
///
/// Implementors are registered on a tracer with
/// [`crate::Tracer::add_sink`] and observe every charge in program order.
/// Callbacks must be fast: the suite charges hundreds of millions of
/// references per run (block-batched, so the callback count is far
/// lower).
///
/// # Batched delivery
///
/// The tracer does not call into sinks on every charge. Blocks are
/// buffered into a flat batch and delivered via [`ReferenceSink::on_batch`]
/// once the batch fills ([`crate::Tracer::SINK_BATCH`] blocks) or
/// [`crate::Tracer::flush_sinks`] is called — the run harnesses flush at
/// end of run, so over a whole run every sink observes exactly the stream
/// it would have seen unbatched, in the same order. The batching only
/// amortizes the `RefCell` borrow and dynamic dispatch from once per
/// block to once per batch; sinks that need no batch-level view just
/// implement [`ReferenceSink::on_reference`].
pub trait ReferenceSink {
    /// Observes one block of classified references.
    fn on_reference(&mut self, r: &Reference);

    /// Observes a batch of blocks, in program order.
    ///
    /// The default forwards each block to
    /// [`ReferenceSink::on_reference`]; override only to exploit the
    /// batch shape itself.
    fn on_batch(&mut self, batch: &[Reference]) {
        for r in batch {
            self.on_reference(r);
        }
    }
}

/// A shareable, interior-mutable sink handle.
///
/// The tracer holds one clone and the owner keeps another, so results
/// can be read back after the run without downcasting:
///
/// ```
/// use agave_trace::{RefKind, Reference, ReferenceSink, SharedSink, Tracer};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// #[derive(Default)]
/// struct CountSink {
///     blocks: u64,
/// }
/// impl ReferenceSink for CountSink {
///     fn on_reference(&mut self, _r: &Reference) {
///         self.blocks += 1;
///     }
/// }
///
/// let sink = Rc::new(RefCell::new(CountSink::default()));
/// let mut tracer = Tracer::new();
/// tracer.add_sink(sink.clone() as SharedSink);
/// let pid = tracer.register_process("p");
/// let tid = tracer.register_thread(pid, "t");
/// let r = tracer.intern_region("heap");
/// tracer.charge(pid, tid, r, RefKind::DataRead, 10);
/// tracer.flush_sinks(); // delivery is batched; flush before reading
/// assert!(sink.borrow().blocks > 0);
/// ```
pub type SharedSink = Rc<RefCell<dyn ReferenceSink>>;

/// One thread's row in a [`NameDirectory`]: its owning process, its
/// registered name, and its canonical (Table-I family) name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRecord {
    /// The process the thread belongs to.
    pub pid: Pid,
    /// The thread's registered name.
    pub name: NameId,
    /// The thread's canonical (Table-I family) name.
    pub canonical: NameId,
}

/// A snapshot of a tracer's name, process and thread tables, for
/// resolving [`Reference`] ids after the simulated world (and its
/// tracer) is gone — and for rebuilding [`crate::RunSummary`]s from a
/// captured reference stream (`agave-replay`).
///
/// Produced by [`crate::Tracer::name_directory`]; reconstructed from an
/// on-disk trace with [`NameDirectory::from_parts`].
#[derive(Debug, Clone)]
pub struct NameDirectory {
    pub(crate) names: crate::intern::NameTable,
    pub(crate) proc_names: Vec<NameId>,
    pub(crate) threads: Vec<ThreadRecord>,
}

impl NameDirectory {
    /// Rebuilds a directory from serialized parts (a trace file footer).
    ///
    /// `names` must be in interning order — ids are reassigned densely,
    /// so a round trip through [`NameDirectory::names`] preserves every
    /// [`NameId`].
    pub fn from_parts<'a>(
        names: impl IntoIterator<Item = &'a str>,
        proc_names: Vec<NameId>,
        threads: Vec<ThreadRecord>,
    ) -> Self {
        let mut table = crate::intern::NameTable::new();
        for name in names {
            table.intern(name);
        }
        NameDirectory {
            names: table,
            proc_names,
            threads,
        }
    }

    /// Resolves a region (or any interned) id.
    pub fn region(&self, id: NameId) -> &str {
        self.names.resolve(id)
    }

    /// Resolves a process id to its registered name.
    pub fn process(&self, pid: Pid) -> &str {
        self.names.resolve(self.proc_names[pid.as_u32() as usize])
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.proc_names.len()
    }

    /// The interned-name id of a process's registered name.
    pub fn process_name_id(&self, pid: Pid) -> NameId {
        self.proc_names[pid.as_u32() as usize]
    }

    /// Number of registered threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// A thread's directory row (owning pid, name, canonical name).
    pub fn thread(&self, tid: Tid) -> ThreadRecord {
        self.threads[tid.as_u32() as usize]
    }

    /// The process a thread belongs to.
    pub fn thread_pid(&self, tid: Tid) -> Pid {
        self.threads[tid.as_u32() as usize].pid
    }

    /// A thread's canonical (Table-I family) name.
    pub fn thread_canonical(&self, tid: Tid) -> &str {
        self.names
            .resolve(self.threads[tid.as_u32() as usize].canonical)
    }

    /// The full intern table, in interning order.
    pub fn names(&self) -> &crate::intern::NameTable {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[derive(Default)]
    struct Collect {
        refs: Vec<Reference>,
    }
    impl ReferenceSink for Collect {
        fn on_reference(&mut self, r: &Reference) {
            self.refs.push(*r);
        }
    }

    #[test]
    fn charges_reach_the_sink_with_word_counts_conserved() {
        let sink = Rc::new(RefCell::new(Collect::default()));
        let mut t = Tracer::new();
        t.add_sink(sink.clone() as SharedSink);
        let pid = t.register_process("p");
        let tid = t.register_thread(pid, "t");
        let r = t.intern_region("lib.so");
        t.charge(pid, tid, r, RefKind::InstrFetch, 1000);
        t.charge_at(pid, tid, r, RefKind::DataWrite, 0x4000_0000, 16);
        t.flush_sinks();
        let refs = &sink.borrow().refs;
        let instr_words: u64 = refs
            .iter()
            .filter(|r| r.kind == RefKind::InstrFetch)
            .map(|r| r.words)
            .sum();
        assert_eq!(instr_words, 1000);
        let data: Vec<&Reference> = refs
            .iter()
            .filter(|r| r.kind == RefKind::DataWrite)
            .collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].addr, 0x4000_0000);
        assert_eq!(data[0].words, 16);
        assert_eq!(data[0].bytes(), 64);
    }

    #[test]
    fn synthetic_streams_are_deterministic_and_disjoint_by_region() {
        fn run() -> Vec<Reference> {
            let sink = Rc::new(RefCell::new(Collect::default()));
            let mut t = Tracer::new();
            t.add_sink(sink.clone() as SharedSink);
            let pid = t.register_process("p");
            let tid = t.register_thread(pid, "t");
            let a = t.intern_region("a.so");
            let b = t.intern_region("b.so");
            for _ in 0..10 {
                t.charge(pid, tid, a, RefKind::InstrFetch, 700);
                t.charge(pid, tid, b, RefKind::InstrFetch, 300);
                t.charge(pid, tid, a, RefKind::DataRead, 120);
            }
            t.flush_sinks();
            let refs = sink.borrow().refs.clone();
            refs
        }
        let x = run();
        assert_eq!(x, run(), "synthetic addresses must be reproducible");
        // Streams from different regions (and kinds) never overlap.
        let span = |r: &Reference| (r.region, r.kind.is_instr(), r.addr, r.addr + r.bytes());
        for i in &x {
            for j in &x {
                let (ri, ki, si, ei) = span(i);
                let (rj, kj, sj, ej) = span(j);
                if ri != rj || ki != kj {
                    assert!(ei <= sj || ej <= si, "overlap: {i:?} vs {j:?}");
                }
            }
        }
    }

    #[test]
    fn name_directory_crosses_thread_boundaries() {
        // Parallel workers return directories to the merging thread.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NameDirectory>();
    }

    #[test]
    fn name_directory_outlives_the_tracer() {
        let mut t = Tracer::new();
        let pid = t.register_process("system_server");
        let _tid = t.register_thread(pid, "Binder-1");
        let region = t.intern_region("libbinder.so");
        let dir = t.name_directory();
        drop(t);
        assert_eq!(dir.region(region), "libbinder.so");
        assert_eq!(dir.process(pid), "system_server");
        assert_eq!(dir.process_count(), 1);
    }
}
