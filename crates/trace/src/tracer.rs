//! The reference-counting tracer: the simulator's analogue of the
//! statistics machinery the paper added to gem5.

use crate::canon::canonical_thread_name;
use crate::intern::{NameId, NameTable};
use crate::kind::RefKind;
use crate::sink::{NameDirectory, Reference, SharedSink, ThreadRecord};
use crate::summary::RunSummary;
use std::collections::BTreeMap;
use std::fmt;

/// Base of the synthetic address space used for addressless charges.
/// Far above any real (32-bit-style) simulated address, so synthetic and
/// real references never alias in a cache tag.
const SYNTH_BASE: u64 = 1 << 40;
/// Each region owns a disjoint 2 MiB synthetic span.
const SYNTH_SPAN: u64 = 2 << 20;
/// Instruction-side cyclic window inside a region's span: 8 KiB, the
/// bounded hot-loop footprint of one mapping's code.
const CODE_WINDOW_WORDS: u64 = (8 << 10) / 4;
/// Data-side cyclic window: 16 KiB, offset to the span's second half.
const DATA_WINDOW_WORDS: u64 = (16 << 10) / 4;

/// Identifier of a simulated process.
///
/// Issued by [`Tracer::register_process`]; ids are dense and start at 0
/// (conventionally the `swapper` idle process, as on Linux).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u32);

impl Pid {
    /// Raw numeric value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstructs a pid from its raw value (e.g. after parcel transport).
    ///
    /// Only meaningful for values previously obtained from
    /// [`Pid::as_u32`] on an id issued by the same tracer.
    pub fn from_raw(value: u32) -> Self {
        Pid(value)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Identifier of a simulated thread.
///
/// Issued by [`Tracer::register_thread`]; dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(u32);

impl Tid {
    /// Raw numeric value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstructs a tid from its raw value (e.g. after parcel transport).
    ///
    /// Only meaningful for values previously obtained from
    /// [`Tid::as_u32`] on an id issued by the same tracer.
    pub fn from_raw(value: u32) -> Self {
        Tid(value)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct ProcEntry {
    name: NameId,
}

#[derive(Debug, Clone)]
struct ThreadEntry {
    pid: Pid,
    #[allow(dead_code)] // kept for debug dumps and future per-thread reports
    name: NameId,
    canonical: NameId,
}

type Key = (Tid, NameId);

/// One nonzero `(thread, region)` counter row in a [`CounterSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The charged thread.
    pub tid: Tid,
    /// The charged VMA region.
    pub region: NameId,
    /// Reference counts indexed by [`RefKind::index`].
    pub counts: [u64; 3],
}

/// A point-in-time copy of a tracer's per-(thread, region) counters.
///
/// Produced by [`Tracer::counter_snapshot`]. The trace recorder stores
/// the snapshot taken at sink-attach time in the `.agtrace` footer as the
/// pre-attach (boot) baseline; replay adds the recorded stream on top to
/// reconstruct the exact end-of-run counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Nonzero counter rows, in slot-creation (first-charge) order.
    pub entries: Vec<SnapshotEntry>,
}

impl CounterSnapshot {
    /// `true` if nothing had been charged when the snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Sentinel for an empty cell in the dense `tid × region` slot table.
const NO_SLOT: u32 = u32::MAX;

/// Registered sinks; newtyped so [`Tracer`] can keep deriving `Debug`
/// (trait objects have no useful `Debug` of their own).
#[derive(Default)]
struct SinkList(Vec<SharedSink>);

impl fmt::Debug for SinkList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SinkList(len={})", self.0.len())
    }
}

/// Accumulates memory-reference counts by (process, thread, region, kind).
///
/// All names live in a single intern table so that charging works on two
/// small dense ids. Slot lookup is a direct index into a `tid × region`
/// table (both ids are dense `u32`s, so no hashing is ever needed on the
/// hot path), and a one-entry cache on top accelerates the common case of
/// many consecutive charges to the same (thread, region) pair.
///
/// # Example
///
/// ```
/// use agave_trace::{RefKind, Tracer};
///
/// let mut t = Tracer::new();
/// let pid = t.register_process("system_server");
/// let tid = t.register_thread(pid, "SurfaceFlinger");
/// let fb0 = t.intern_region("fb0");
/// t.charge(pid, tid, fb0, RefKind::DataWrite, 384_000);
/// assert_eq!(t.total(RefKind::DataWrite), 384_000);
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    names: NameTable,
    procs: Vec<ProcEntry>,
    threads: Vec<ThreadEntry>,
    /// Dense slot index: `slot_table[tid][region]` is the row in
    /// `counters`, or [`NO_SLOT`]. Rows grow lazily to the regions a
    /// thread actually touches.
    slot_table: Vec<Vec<u32>>,
    /// Per-slot counters indexed by `RefKind::index()`, parallel to `slot_keys`.
    counters: Vec<[u64; 3]>,
    slot_keys: Vec<Key>,
    last: Option<(Key, usize)>,
    totals: [u64; 3],
    sinks: SinkList,
    /// References buffered for batched sink delivery; drained by
    /// [`Tracer::flush_sinks`] (called automatically at [`Tracer::SINK_BATCH`]).
    batch: Vec<Reference>,
    /// Per-region cyclic word cursors for synthetic addresses,
    /// indexed by `NameId::index()`; lane 0 = instruction, lane 1 = data.
    synth_cursors: Vec<[u32; 2]>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a process and returns its [`Pid`].
    ///
    /// Multiple processes may share a name (e.g. several `app_process`
    /// instances); reports aggregate them by name, as the paper does.
    pub fn register_process(&mut self, name: &str) -> Pid {
        let name = self.names.intern(name);
        let pid = Pid(u32::try_from(self.procs.len()).expect("pid overflow"));
        self.procs.push(ProcEntry { name });
        pid
    }

    /// Registers a thread belonging to `pid` and returns its [`Tid`].
    ///
    /// The thread's canonical (Table-I family) name is derived with
    /// [`canonical_thread_name`].
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not issued by this tracer.
    pub fn register_thread(&mut self, pid: Pid, name: &str) -> Tid {
        assert!(
            (pid.0 as usize) < self.procs.len(),
            "unknown {pid} in register_thread"
        );
        let canonical = self.names.intern(canonical_thread_name(name));
        let name = self.names.intern(name);
        let tid = Tid(u32::try_from(self.threads.len()).expect("tid overflow"));
        self.threads.push(ThreadEntry {
            pid,
            name,
            canonical,
        });
        tid
    }

    /// Interns a region name for later use with [`Tracer::charge`].
    pub fn intern_region(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    /// Resolves any interned id back to its string.
    pub fn resolve(&self, id: NameId) -> &str {
        self.names.resolve(id)
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of registered threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Name of a registered process.
    pub fn process_name(&self, pid: Pid) -> &str {
        self.names.resolve(self.procs[pid.0 as usize].name)
    }

    /// The process a thread belongs to.
    pub fn thread_pid(&self, tid: Tid) -> Pid {
        self.threads[tid.0 as usize].pid
    }

    /// Registers a sink that will observe every subsequent charge as a
    /// [`Reference`] block. The caller keeps its own clone of the handle
    /// to read results back after the run.
    ///
    /// Delivery is batched: blocks are buffered and handed to sinks in
    /// chunks of up to [`Tracer::SINK_BATCH`] (in program order), so call
    /// [`Tracer::flush_sinks`] before harvesting sink state. Any blocks
    /// already buffered for previously registered sinks are flushed first,
    /// so a new sink never observes charges from before its registration.
    pub fn add_sink(&mut self, sink: SharedSink) {
        self.flush_sinks();
        self.sinks.0.push(sink);
    }

    /// Returns `true` if any sink is registered (charging is broadcast).
    pub fn has_sinks(&self) -> bool {
        !self.sinks.0.is_empty()
    }

    /// Number of [`Reference`] blocks buffered but not yet delivered.
    pub fn pending_sink_refs(&self) -> usize {
        self.batch.len()
    }

    /// Delivers all buffered [`Reference`] blocks to every sink, in
    /// program order.
    ///
    /// Charging fills a flat batch and flushes it automatically every
    /// [`Tracer::SINK_BATCH`] blocks, amortizing the per-sink
    /// `RefCell` borrow and dynamic dispatch; the run harnesses call this
    /// once more at end of run so reports are identical to unbatched
    /// delivery.
    pub fn flush_sinks(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        // The telemetry gate is checked once per *batch* (1024 blocks),
        // never per charge, so the disabled path pays one relaxed load
        // per thousands of references.
        if agave_telemetry::enabled() {
            self.flush_sinks_instrumented();
            return;
        }
        for sink in &self.sinks.0 {
            sink.borrow_mut().on_batch(&self.batch);
        }
        self.batch.clear();
    }

    /// The telemetry-enabled flush path: times the delivery and feeds
    /// the `trace.*` sink-batch metrics. Metric handles are resolved
    /// once and cached in `OnceLock`s, so the steady-state cost is a
    /// clock read and a few relaxed atomics per batch.
    #[cold]
    fn flush_sinks_instrumented(&mut self) {
        use agave_telemetry::metrics::{Counter, Histogram};
        use std::sync::OnceLock;
        static BATCHES: OnceLock<&'static Counter> = OnceLock::new();
        static BLOCKS: OnceLock<&'static Counter> = OnceLock::new();
        static DELIVERY_NS: OnceLock<&'static Counter> = OnceLock::new();
        static BATCH_BLOCKS: OnceLock<&'static Histogram> = OnceLock::new();
        static BATCH_NS: OnceLock<&'static Histogram> = OnceLock::new();
        let start = std::time::Instant::now();
        for sink in &self.sinks.0 {
            sink.borrow_mut().on_batch(&self.batch);
        }
        let ns = start.elapsed().as_nanos() as u64;
        let blocks = self.batch.len() as u64;
        BATCHES
            .get_or_init(|| agave_telemetry::metrics::counter("trace.sink_batches"))
            .incr();
        BLOCKS
            .get_or_init(|| agave_telemetry::metrics::counter("trace.sink_blocks"))
            .add(blocks);
        DELIVERY_NS
            .get_or_init(|| agave_telemetry::metrics::counter("trace.sink_delivery_ns"))
            .add(ns);
        BATCH_BLOCKS
            .get_or_init(|| agave_telemetry::metrics::histogram("trace.batch_blocks"))
            .record(blocks);
        BATCH_NS
            .get_or_init(|| agave_telemetry::metrics::histogram("trace.batch_delivery_ns"))
            .record(ns);
        self.batch.clear();
    }

    /// Snapshots the name, process and thread tables for resolving ids
    /// after this tracer (and the simulated world owning it) is dropped.
    pub fn name_directory(&self) -> NameDirectory {
        NameDirectory {
            names: self.names.clone(),
            proc_names: self.procs.iter().map(|p| p.name).collect(),
            threads: self
                .threads
                .iter()
                .map(|t| ThreadRecord {
                    pid: t.pid,
                    name: t.name,
                    canonical: t.canonical,
                })
                .collect(),
        }
    }

    /// Snapshots every per-(thread, region) counter accumulated so far.
    ///
    /// The trace recorder calls this at sink-attach time: charges from
    /// before the attach (world boot) never reach the sink stream, so the
    /// snapshot is exactly the correction term that makes
    /// `snapshot + recorded stream = final counters`, which is what lets
    /// `agave-replay` rebuild a byte-identical [`RunSummary`] from a file.
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            entries: self
                .slot_keys
                .iter()
                .zip(&self.counters)
                .filter(|(_, counts)| counts.iter().any(|&c| c > 0))
                .map(|(&(tid, region), &counts)| SnapshotEntry {
                    tid,
                    region,
                    counts,
                })
                .collect(),
        }
    }

    /// Charges `n` references of `kind` to `(pid, tid, region)`.
    ///
    /// `pid` must be the owning process of `tid`; this is debug-asserted.
    /// Charging 0 references is a no-op. If sinks are registered the
    /// charge is also broadcast with deterministic synthetic addresses
    /// drawn from the region's cyclic window (see [`crate::sink`]).
    #[inline]
    pub fn charge(&mut self, pid: Pid, tid: Tid, region: NameId, kind: RefKind, n: u64) {
        if n == 0 {
            return;
        }
        self.account(pid, tid, region, kind, n);
        if !self.sinks.0.is_empty() {
            self.emit_synthetic(pid, tid, region, kind, n);
        }
    }

    /// Charges `words` references of `kind` at a concrete virtual address.
    ///
    /// Identical to [`Tracer::charge`] for accounting; the broadcast to
    /// sinks carries the real `addr` instead of a synthetic one. Used by
    /// charging sites that genuinely touch simulated memory.
    #[inline]
    pub fn charge_at(
        &mut self,
        pid: Pid,
        tid: Tid,
        region: NameId,
        kind: RefKind,
        addr: u64,
        words: u64,
    ) {
        if words == 0 {
            return;
        }
        self.account(pid, tid, region, kind, words);
        if !self.sinks.0.is_empty() {
            self.push_ref(Reference {
                pid,
                tid,
                region,
                kind,
                addr,
                words,
            });
        }
    }

    /// References buffered per sink-delivery batch.
    pub const SINK_BATCH: usize = 1024;

    #[inline]
    fn account(&mut self, pid: Pid, tid: Tid, region: NameId, kind: RefKind, n: u64) {
        debug_assert_eq!(
            self.threads[tid.0 as usize].pid, pid,
            "thread charged against foreign process"
        );
        let _ = pid;
        self.totals[kind.index()] += n;
        let key = (tid, region);
        if let Some((last_key, slot)) = self.last {
            if last_key == key {
                self.counters[slot][kind.index()] += n;
                return;
            }
        }
        let ti = tid.0 as usize;
        if ti >= self.slot_table.len() {
            self.slot_table.resize_with(ti + 1, Vec::new);
        }
        let row = &mut self.slot_table[ti];
        let ri = region.index();
        if ri >= row.len() {
            row.resize(ri + 1, NO_SLOT);
        }
        let slot = if row[ri] == NO_SLOT {
            let s = self.counters.len();
            self.counters.push([0; 3]);
            self.slot_keys.push(key);
            row[ri] = u32::try_from(s).expect("slot overflow");
            s
        } else {
            row[ri] as usize
        };
        self.counters[slot][kind.index()] += n;
        self.last = Some((key, slot));
    }

    /// Broadcasts an addressless charge as blocks walking the region's
    /// cyclic synthetic window, splitting at wraparound so each block is
    /// contiguous.
    fn emit_synthetic(&mut self, pid: Pid, tid: Tid, region: NameId, kind: RefKind, mut n: u64) {
        let idx = region.index();
        if idx >= self.synth_cursors.len() {
            self.synth_cursors.resize(idx + 1, [0; 2]);
        }
        let (lane, window_words, lane_off) = if kind.is_instr() {
            (0, CODE_WINDOW_WORDS, 0)
        } else {
            (1, DATA_WINDOW_WORDS, SYNTH_SPAN / 2)
        };
        let base = SYNTH_BASE + idx as u64 * SYNTH_SPAN + lane_off;
        let mut cursor = u64::from(self.synth_cursors[idx][lane]);
        while n > 0 {
            let run = n.min(window_words - cursor);
            self.push_ref(Reference {
                pid,
                tid,
                region,
                kind,
                addr: base + cursor * 4,
                words: run,
            });
            cursor = (cursor + run) % window_words;
            n -= run;
        }
        self.synth_cursors[idx][lane] = cursor as u32;
    }

    /// Buffers one block for sink delivery, flushing when the batch fills.
    #[inline]
    fn push_ref(&mut self, r: Reference) {
        self.batch.push(r);
        if self.batch.len() >= Self::SINK_BATCH {
            self.flush_sinks();
        }
    }

    /// Total references of one kind across the whole run.
    pub fn total(&self, kind: RefKind) -> u64 {
        self.totals[kind.index()]
    }

    /// Total references of all kinds.
    pub fn grand_total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Builds the serializable per-run summary consumed by the figure
    /// builders in [`crate::FigureTable`] and by `agave-core`.
    pub fn summarize(&self, benchmark: &str) -> RunSummary {
        let mut instr_by_region: BTreeMap<String, u64> = BTreeMap::new();
        let mut data_by_region: BTreeMap<String, u64> = BTreeMap::new();
        let mut instr_by_process: BTreeMap<String, u64> = BTreeMap::new();
        let mut data_by_process: BTreeMap<String, u64> = BTreeMap::new();
        let mut refs_by_thread: BTreeMap<String, u64> = BTreeMap::new();
        let mut active_pids: Vec<bool> = vec![false; self.procs.len()];
        let mut active_tids: Vec<bool> = vec![false; self.threads.len()];

        for (slot, &(tid, region)) in self.slot_keys.iter().enumerate() {
            let c = &self.counters[slot];
            let instr = c[RefKind::InstrFetch.index()];
            let data = c[RefKind::DataRead.index()] + c[RefKind::DataWrite.index()];
            if instr == 0 && data == 0 {
                continue;
            }
            let thread = &self.threads[tid.0 as usize];
            let pid = thread.pid;
            active_pids[pid.0 as usize] = true;
            active_tids[tid.0 as usize] = true;
            let region_name = self.names.resolve(region).to_owned();
            let proc_name = self.names.resolve(self.procs[pid.0 as usize].name);
            let thread_name = self.names.resolve(thread.canonical);
            if instr > 0 {
                *instr_by_region.entry(region_name.clone()).or_default() += instr;
                *instr_by_process.entry(proc_name.to_owned()).or_default() += instr;
            }
            if data > 0 {
                *data_by_region.entry(region_name).or_default() += data;
                *data_by_process.entry(proc_name.to_owned()).or_default() += data;
            }
            *refs_by_thread.entry(thread_name.to_owned()).or_default() += instr + data;
        }

        RunSummary {
            benchmark: benchmark.to_owned(),
            instr_by_region,
            data_by_region,
            instr_by_process,
            data_by_process,
            refs_by_thread,
            total_instr: self.totals[RefKind::InstrFetch.index()],
            total_data: self.totals[RefKind::DataRead.index()]
                + self.totals[RefKind::DataWrite.index()],
            active_processes: active_pids.iter().filter(|&&a| a).count(),
            active_threads: active_tids.iter().filter(|&&a| a).count(),
            spawned_processes: self.procs.len(),
            spawned_threads: self.threads.len(),
            wall_time_ns: 0, // stamped by the engine layer, not the tracer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Tracer, Pid, Tid, NameId) {
        let mut t = Tracer::new();
        let pid = t.register_process("bench");
        let tid = t.register_thread(pid, "main");
        let r = t.intern_region("heap");
        (t, pid, tid, r)
    }

    #[test]
    fn charge_accumulates_totals() {
        let (mut t, pid, tid, r) = setup();
        t.charge(pid, tid, r, RefKind::InstrFetch, 10);
        t.charge(pid, tid, r, RefKind::InstrFetch, 5);
        t.charge(pid, tid, r, RefKind::DataRead, 3);
        assert_eq!(t.total(RefKind::InstrFetch), 15);
        assert_eq!(t.total(RefKind::DataRead), 3);
        assert_eq!(t.grand_total(), 18);
    }

    #[test]
    fn zero_charge_is_noop() {
        let (mut t, pid, tid, r) = setup();
        t.charge(pid, tid, r, RefKind::DataWrite, 0);
        assert_eq!(t.grand_total(), 0);
        let s = t.summarize("bench");
        assert_eq!(s.active_threads, 0);
        assert_eq!(s.spawned_threads, 1);
    }

    #[test]
    fn summary_groups_by_names() {
        let mut t = Tracer::new();
        let p1 = t.register_process("app_process");
        let p2 = t.register_process("app_process");
        let t1 = t.register_thread(p1, "Thread-1");
        let t2 = t.register_thread(p2, "Thread-2");
        let heap = t.intern_region("heap");
        t.charge(p1, t1, heap, RefKind::DataRead, 7);
        t.charge(p2, t2, heap, RefKind::DataWrite, 3);
        let s = t.summarize("x");
        // Two processes with the same name aggregate into one row.
        assert_eq!(s.data_by_process["app_process"], 10);
        // Thread-1 and Thread-2 canonicalize to "Thread".
        assert_eq!(s.refs_by_thread["Thread"], 10);
        assert_eq!(s.active_processes, 2);
        assert_eq!(s.active_threads, 2);
    }

    #[test]
    fn instr_and_data_split_correctly() {
        let (mut t, pid, tid, _) = setup();
        let code = t.intern_region("libdvm.so");
        let data = t.intern_region("dalvik-heap");
        t.charge(pid, tid, code, RefKind::InstrFetch, 100);
        t.charge(pid, tid, data, RefKind::DataRead, 40);
        t.charge(pid, tid, data, RefKind::DataWrite, 20);
        let s = t.summarize("bench");
        assert_eq!(s.instr_by_region["libdvm.so"], 100);
        assert!(!s.instr_by_region.contains_key("dalvik-heap"));
        assert_eq!(s.data_by_region["dalvik-heap"], 60);
        assert_eq!(s.total_instr, 100);
        assert_eq!(s.total_data, 60);
    }

    #[test]
    fn cache_handles_interleaved_keys() {
        let (mut t, pid, tid, r1) = setup();
        let r2 = t.intern_region("stack");
        for _ in 0..10 {
            t.charge(pid, tid, r1, RefKind::DataRead, 1);
            t.charge(pid, tid, r2, RefKind::DataRead, 2);
        }
        let s = t.summarize("bench");
        assert_eq!(s.data_by_region["heap"], 10);
        assert_eq!(s.data_by_region["stack"], 20);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn registering_thread_on_unknown_pid_panics() {
        let mut t1 = Tracer::new();
        let mut t2 = Tracer::new();
        let p = t1.register_process("a");
        let _ = t1.register_thread(p, "main");
        // Fresh tracer has no processes; the foreign pid is out of range.
        let _ = t2.register_thread(p, "main");
    }
}
