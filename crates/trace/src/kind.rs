//! Classification of memory references.

use std::fmt;

/// The kind of a memory reference, as classified by the paper's gem5
/// instrumentation.
///
/// Figures 1 and 3 of the paper count [`RefKind::InstrFetch`]; Figures 2 and
/// 4 count the two data kinds together; Table I counts all three.
///
/// # Example
///
/// ```
/// use agave_trace::RefKind;
///
/// assert!(RefKind::DataWrite.is_data());
/// assert!(!RefKind::InstrFetch.is_data());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RefKind {
    /// An instruction fetch from a code region.
    InstrFetch,
    /// A data load.
    DataRead,
    /// A data store.
    DataWrite,
}

impl RefKind {
    /// All kinds, in declaration order.
    pub const ALL: [RefKind; 3] = [RefKind::InstrFetch, RefKind::DataRead, RefKind::DataWrite];

    /// Returns `true` for loads and stores.
    pub fn is_data(self) -> bool {
        matches!(self, RefKind::DataRead | RefKind::DataWrite)
    }

    /// Returns `true` for instruction fetches.
    pub fn is_instr(self) -> bool {
        matches!(self, RefKind::InstrFetch)
    }

    /// Compact index (0..3) usable for array-backed counters.
    pub fn index(self) -> usize {
        match self {
            RefKind::InstrFetch => 0,
            RefKind::DataRead => 1,
            RefKind::DataWrite => 2,
        }
    }
}

impl fmt::Display for RefKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefKind::InstrFetch => "instr-fetch",
            RefKind::DataRead => "data-read",
            RefKind::DataWrite => "data-write",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_classification() {
        assert!(RefKind::DataRead.is_data());
        assert!(RefKind::DataWrite.is_data());
        assert!(RefKind::InstrFetch.is_instr());
        assert!(!RefKind::InstrFetch.is_data());
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 3];
        for kind in RefKind::ALL {
            assert!(!seen[kind.index()]);
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(RefKind::InstrFetch.to_string(), "instr-fetch");
        assert_eq!(RefKind::DataRead.to_string(), "data-read");
        assert_eq!(RefKind::DataWrite.to_string(), "data-write");
    }
}
