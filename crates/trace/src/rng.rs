//! A tiny deterministic PRNG for tests and benches.
//!
//! The workspace builds offline with no external crates, so the
//! randomized tests that previously used `proptest` draw their inputs
//! from this xorshift64* generator instead (the SPEC kernels keep their
//! own faithful LCG in `agave-spec`). Deterministic seeding keeps every
//! test reproducible run-to-run.

/// An xorshift64* pseudo-random generator.
///
/// # Example
///
/// ```
/// use agave_trace::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (0 is remapped to a fixed odd
    /// constant — xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    /// A random boolean.
    pub fn chance(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn bounds_are_respected() {
        let mut g = XorShift64::new(123);
        for _ in 0..1000 {
            assert!(g.below(17) < 17);
            let r = g.range(5, 9);
            assert!((5..9).contains(&r));
            assert!(g.index(3) < 3);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut g = XorShift64::new(99);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[g.index(8)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
