//! Memory-reference accounting for the Agave Android software-stack simulator.
//!
//! This crate is the measurement substrate of the reproduction: the analogue
//! of the statistics instrumentation Brown et al. added to gem5 and the Linux
//! kernel. Every modeled memory access in the simulator is *charged* to a
//! [`Tracer`] together with the process, thread, virtual-memory region and
//! access kind it belongs to; the tracer aggregates those charges into the
//! breakdowns reported in the paper's Figures 1–4 and Table I.
//!
//! The crate deliberately knows nothing about the simulator itself — it only
//! deals in interned names and counters — so every other crate in the
//! workspace can depend on it without cycles.
//!
//! # Example
//!
//! ```
//! use agave_trace::{RefKind, Tracer};
//!
//! let mut tracer = Tracer::new();
//! let pid = tracer.register_process("music.mp3.view");
//! let tid = tracer.register_thread(pid, "AudioTrackThread");
//! let region = tracer.intern_region("libstagefright.so");
//!
//! tracer.charge(pid, tid, region, RefKind::InstrFetch, 1_000);
//! tracer.charge(pid, tid, region, RefKind::DataRead, 250);
//!
//! let summary = tracer.summarize("music.mp3.view");
//! assert_eq!(summary.total_instr, 1_000);
//! assert_eq!(summary.instr_by_region["libstagefright.so"], 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod figure;
mod intern;
pub mod json;
mod kind;
pub mod par;
mod rng;
mod sink;
mod summary;
mod tracer;

pub use canon::canonical_thread_name;
pub use figure::{FigureTable, TableOne, TableOneRow};
pub use intern::{NameId, NameTable};
pub use kind::RefKind;
pub use rng::XorShift64;
pub use sink::{NameDirectory, Reference, ReferenceSink, SharedSink, ThreadRecord};
pub use summary::{Breakdown, RunSummary};
pub use tracer::{CounterSnapshot, Pid, SnapshotEntry, Tid, Tracer};
