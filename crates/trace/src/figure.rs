//! Assembling the paper's figures and Table I from per-run summaries.

use crate::summary::RunSummary;
use std::collections::BTreeMap;
use std::fmt;

/// Which distribution of a [`RunSummary`] a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Figure 1: instruction references by VMA region.
    InstrByRegion,
    /// Figure 2: data references by VMA region.
    DataByRegion,
    /// Figure 3: instruction references by process.
    InstrByProcess,
    /// Figure 4: data references by process.
    DataByProcess,
}

impl Dimension {
    fn map(self, s: &RunSummary) -> &BTreeMap<String, u64> {
        match self {
            Dimension::InstrByRegion => &s.instr_by_region,
            Dimension::DataByRegion => &s.data_by_region,
            Dimension::InstrByProcess => &s.instr_by_process,
            Dimension::DataByProcess => &s.data_by_process,
        }
    }

    fn title(self) -> &'static str {
        match self {
            Dimension::InstrByRegion => "Instruction references by VMA region",
            Dimension::DataByRegion => "Data references by VMA region",
            Dimension::InstrByProcess => "Instruction references by process",
            Dimension::DataByProcess => "Data references by process",
        }
    }
}

/// A stacked-percentage table in the style of the paper's Figures 1–4:
/// one column per legend entry (top-`k` names across the whole suite plus
/// an `other (N items)` bucket), one row per benchmark.
///
/// # Example
///
/// ```
/// use agave_trace::{FigureTable, RunSummary};
///
/// let mut s = RunSummary::empty("demo");
/// s.instr_by_region.insert("libdvm.so".into(), 80);
/// s.instr_by_region.insert("libc.so".into(), 20);
/// let fig = FigureTable::figure1(&[s], 9);
/// assert!((fig.share("demo", "libdvm.so") - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FigureTable {
    title: String,
    dimension: Dimension,
    legend: Vec<String>,
    /// Distinct names folded into the `other` bucket, suite-wide.
    other_items: usize,
    /// Per benchmark: (label, per-legend-entry share summing to ~1.0).
    rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Builds a figure over `dimension` with a legend of the `k` largest
    /// names by suite-wide count.
    pub fn new(dimension: Dimension, runs: &[RunSummary], k: usize) -> Self {
        let mut suite: BTreeMap<&str, u64> = BTreeMap::new();
        for run in runs {
            for (name, &count) in dimension.map(run) {
                *suite.entry(name.as_str()).or_default() += count;
            }
        }
        let mut ordered: Vec<(&str, u64)> = suite.into_iter().collect();
        ordered.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let legend: Vec<String> = ordered
            .iter()
            .take(k)
            .map(|(n, _)| (*n).to_owned())
            .collect();
        let other_items = ordered.len().saturating_sub(legend.len());

        let rows = runs
            .iter()
            .map(|run| {
                let map = dimension.map(run);
                let total: u64 = map.values().sum();
                let mut shares: Vec<f64> = legend
                    .iter()
                    .map(|name| {
                        if total == 0 {
                            0.0
                        } else {
                            map.get(name).copied().unwrap_or(0) as f64 / total as f64
                        }
                    })
                    .collect();
                let named: f64 = shares.iter().sum();
                shares.push((1.0 - named).max(0.0)); // "other"
                (run.benchmark.clone(), shares)
            })
            .collect();

        FigureTable {
            title: dimension.title().to_owned(),
            dimension,
            legend,
            other_items,
            rows,
        }
    }

    /// Figure 1 of the paper: instruction references by VMA region.
    pub fn figure1(runs: &[RunSummary], k: usize) -> Self {
        Self::new(Dimension::InstrByRegion, runs, k)
    }

    /// Figure 2: data references by VMA region.
    pub fn figure2(runs: &[RunSummary], k: usize) -> Self {
        Self::new(Dimension::DataByRegion, runs, k)
    }

    /// Figure 3: instruction references by process.
    pub fn figure3(runs: &[RunSummary], k: usize) -> Self {
        Self::new(Dimension::InstrByProcess, runs, k)
    }

    /// Figure 4: data references by process.
    pub fn figure4(runs: &[RunSummary], k: usize) -> Self {
        Self::new(Dimension::DataByProcess, runs, k)
    }

    /// The figure's legend (without the trailing `other` bucket).
    pub fn legend(&self) -> &[String] {
        &self.legend
    }

    /// Number of distinct names aggregated into the `other` bucket.
    pub fn other_items(&self) -> usize {
        self.other_items
    }

    /// The dimension this figure plots.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// Benchmark labels in row order.
    pub fn benchmarks(&self) -> impl Iterator<Item = &str> {
        self.rows.iter().map(|(b, _)| b.as_str())
    }

    /// Share (0.0–1.0) of `legend_name` for `benchmark`; `"other"` selects
    /// the aggregate bucket. Returns 0.0 for unknown names/benchmarks.
    pub fn share(&self, benchmark: &str, legend_name: &str) -> f64 {
        let Some((_, shares)) = self.rows.iter().find(|(b, _)| b == benchmark) else {
            return 0.0;
        };
        if legend_name == "other" {
            return *shares.last().unwrap_or(&0.0);
        }
        self.legend
            .iter()
            .position(|n| n == legend_name)
            .map(|i| shares[i])
            .unwrap_or(0.0)
    }

    /// Renders the figure as a fixed-width ASCII table (percent values).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let label_w = self
            .rows
            .iter()
            .map(|(b, _)| b.len())
            .chain(std::iter::once("benchmark".len()))
            .max()
            .unwrap_or(10);
        let mut cols: Vec<String> = self.legend.clone();
        cols.push(format!("other ({} items)", self.other_items));
        let col_w: Vec<usize> = cols.iter().map(|c| c.len().max(6)).collect();

        out.push_str(&format!("{:label_w$}", "benchmark"));
        for (c, w) in cols.iter().zip(&col_w) {
            out.push_str(&format!("  {c:>w$}", w = w));
        }
        out.push('\n');
        for (bench, shares) in &self.rows {
            out.push_str(&format!("{bench:label_w$}"));
            for (s, w) in shares.iter().zip(&col_w) {
                out.push_str(&format!("  {:>w$.1}", s * 100.0, w = w));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as CSV (shares in percent).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("benchmark");
        for c in &self.legend {
            out.push(',');
            out.push_str(c);
        }
        out.push_str(&format!(",other ({} items)\n", self.other_items));
        for (bench, shares) in &self.rows {
            out.push_str(bench);
            for s in shares {
                out.push_str(&format!(",{:.3}", s * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One row of [`TableOne`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableOneRow {
    /// Canonical thread name (e.g. `SurfaceFlinger`).
    pub thread: String,
    /// Percent of total suite memory references.
    pub percent: f64,
}

/// The paper's Table I: threads ranked by contribution to total memory
/// references across the whole suite.
///
/// # Example
///
/// ```
/// use agave_trace::{RunSummary, TableOne};
///
/// let mut s = RunSummary::empty("a");
/// s.refs_by_thread.insert("SurfaceFlinger".into(), 90);
/// s.refs_by_thread.insert("GC".into(), 10);
/// let t = TableOne::from_runs(&[s], 6);
/// assert_eq!(t.rows()[0].thread, "SurfaceFlinger");
/// assert!((t.rows()[0].percent - 90.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableOne {
    rows: Vec<TableOneRow>,
    /// Total suite references the percentages are relative to.
    total: u64,
}

impl TableOne {
    /// Aggregates `runs` and returns the `k` most-referencing thread families.
    pub fn from_runs(runs: &[RunSummary], k: usize) -> Self {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for run in runs {
            for (name, &count) in &run.refs_by_thread {
                *merged.entry(name.clone()).or_default() += count;
            }
        }
        let total: u64 = merged.values().sum();
        let mut rows: Vec<(String, u64)> = merged.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let rows = rows
            .into_iter()
            .take(k)
            .map(|(thread, count)| TableOneRow {
                thread,
                percent: if total == 0 {
                    0.0
                } else {
                    count as f64 * 100.0 / total as f64
                },
            })
            .collect();
        TableOne { rows, total }
    }

    /// Ranked rows, largest first.
    pub fn rows(&self) -> &[TableOneRow] {
        &self.rows
    }

    /// Total references the percentages are relative to.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Percent share of `thread`, or 0.0 if not in the table.
    pub fn percent(&self, thread: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.thread == thread)
            .map(|r| r.percent)
            .unwrap_or(0.0)
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Thread                      % Total Memory References across Suite\n");
        for row in &self.rows {
            out.push_str(&format!("{:<28}{:.1}\n", row.thread, row.percent));
        }
        out
    }
}

impl fmt::Display for TableOne {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(label: &str, pairs: &[(&str, u64)]) -> RunSummary {
        let mut s = RunSummary::empty(label);
        for (k, v) in pairs {
            s.instr_by_region.insert(k.to_string(), *v);
            s.refs_by_thread.insert(k.to_string(), *v);
        }
        s.total_instr = pairs.iter().map(|(_, v)| v).sum();
        s
    }

    #[test]
    fn legend_is_suite_wide_top_k() {
        let runs = vec![
            run("a", &[("libdvm.so", 100), ("libc.so", 10)]),
            run("b", &[("libskia.so", 50), ("libc.so", 45)]),
        ];
        let fig = FigureTable::figure1(&runs, 2);
        assert_eq!(fig.legend(), ["libdvm.so", "libc.so"]);
        assert_eq!(fig.other_items(), 1);
    }

    #[test]
    fn shares_sum_to_one_per_row() {
        let runs = vec![run("a", &[("x", 3), ("y", 5), ("z", 2)])];
        let fig = FigureTable::figure1(&runs, 2);
        let total = fig.share("a", "y") + fig.share("a", "x") + fig.share("a", "other");
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_lookups_are_zero() {
        let fig = FigureTable::figure1(&[run("a", &[("x", 1)])], 1);
        assert_eq!(fig.share("nope", "x"), 0.0);
        assert_eq!(fig.share("a", "nope"), 0.0);
    }

    #[test]
    fn empty_run_has_zero_shares() {
        let runs = vec![run("a", &[("x", 10)]), RunSummary::empty("empty")];
        let fig = FigureTable::figure1(&runs, 1);
        assert_eq!(fig.share("empty", "x"), 0.0);
        assert_eq!(fig.share("empty", "other"), 1.0);
    }

    #[test]
    fn table_one_ranks_and_truncates() {
        let runs = vec![
            run("a", &[("SurfaceFlinger", 80), ("GC", 15)]),
            run("b", &[("SurfaceFlinger", 20), ("Compiler", 30)]),
        ];
        let t = TableOne::from_runs(&runs, 2);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].thread, "SurfaceFlinger");
        assert!((t.percent("SurfaceFlinger") - 100.0 * 100.0 / 145.0).abs() < 1e-9);
        assert_eq!(t.percent("GC"), 0.0); // truncated away
    }

    #[test]
    fn render_contains_rows_and_title() {
        let fig = FigureTable::figure1(&[run("aard.main", &[("libdvm.so", 1)])], 1);
        let text = fig.render();
        assert!(text.contains("Instruction references"));
        assert!(text.contains("aard.main"));
        let csv = fig.to_csv();
        assert!(csv.starts_with("benchmark,libdvm.so,other"));
    }
}
