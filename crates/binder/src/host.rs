//! Binder hosts (server side) and proxies (client side).

use crate::parcel::Parcel;
use agave_kernel::{Actor, Ctx, Message, RefKind, Tid};

/// Client-side cost of a transaction: `libbinder.so` marshalling fetches.
const CLIENT_LIBBINDER_COST: u64 = 300;
/// Server-side cost: `libbinder.so` unmarshalling and dispatch fetches.
const SERVER_LIBBINDER_COST: u64 = 200;
/// Kernel fetches for the binder ioctl round trip.
const DRIVER_SYSCALL_COST: u64 = 350;

/// A service reachable over Binder: the server-side handler.
///
/// Implementations run in the *hosting* thread's context; references they
/// charge land on the server process, which is how `system_server` and
/// `mediaserver` come to dominate many benchmarks in the paper's process
/// figures.
pub trait BinderService {
    /// Handles one transaction, returning the reply parcel.
    fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel;
}

/// An [`Actor`] hosting a [`BinderService`] on a binder pool thread.
///
/// Synchronous transactions arrive via `on_call`; oneway transactions
/// arrive as mailbox messages whose payload is the serialized parcel.
pub struct BinderHost<S> {
    service: S,
}

impl<S: BinderService> BinderHost<S> {
    /// Wraps `service` for hosting.
    pub fn new(service: S) -> Self {
        BinderHost { service }
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    fn server_side(&mut self, cx: &mut Ctx<'_>, code: u32, data: &[u8]) -> Parcel {
        let lib = cx.intern_region("libbinder.so");
        cx.call_lib(lib, SERVER_LIBBINDER_COST);
        // Unmarshal: read the parcel out of the driver mapping.
        let wk = cx.well_known();
        cx.charge(wk.dev_binder, RefKind::DataRead, word_refs(data.len()));
        let mut parcel = Parcel::from_bytes(data.to_vec());
        self.service.transact(cx, code, &mut parcel)
    }
}

impl<S: BinderService> Actor for BinderHost<S> {
    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        // Oneway transaction: code in `what`, parcel in the byte payload.
        let data = msg.as_bytes().unwrap_or(&[]).to_vec();
        let _ = self.server_side(cx, msg.what, &data);
    }

    fn on_call(&mut self, cx: &mut Ctx<'_>, code: u32, data: &[u8]) -> Vec<u8> {
        self.server_side(cx, code, data).into_bytes()
    }
}

/// A client-side handle to a remote binder object.
///
/// Cheap to copy; holds only the hosting thread's tid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinderProxy {
    target: Tid,
}

impl BinderProxy {
    /// Creates a proxy to the service hosted on `target`.
    pub fn new(target: Tid) -> Self {
        BinderProxy { target }
    }

    /// The hosting thread.
    pub fn target(&self) -> Tid {
        self.target
    }

    /// Performs a synchronous transaction, charging client marshalling,
    /// the driver copy, and the server-side execution (in the server's
    /// context).
    pub fn transact(&self, cx: &mut Ctx<'_>, code: u32, data: &Parcel) -> Parcel {
        self.client_marshal(cx, data.len());
        let reply = cx.call_thread(self.target, code, data.as_bytes());
        // Unmarshal the reply on the client.
        let wk = cx.well_known();
        cx.charge(wk.dev_binder, RefKind::DataRead, word_refs(reply.len()));
        Parcel::from_bytes(reply)
    }

    /// Fires a oneway (asynchronous) transaction and returns immediately.
    pub fn oneway(&self, cx: &mut Ctx<'_>, code: u32, data: &Parcel) {
        self.client_marshal(cx, data.len());
        cx.send(
            self.target,
            Message::new(code).bytes(data.as_bytes().to_vec()),
        );
    }

    fn client_marshal(&self, cx: &mut Ctx<'_>, len: usize) {
        let lib = cx.intern_region("libbinder.so");
        cx.call_lib(lib, CLIENT_LIBBINDER_COST);
        cx.syscall(DRIVER_SYSCALL_COST);
        // The driver copies the parcel through the /dev/binder mapping.
        let wk = cx.well_known();
        cx.charge(wk.dev_binder, RefKind::DataWrite, word_refs(len));
    }
}

fn word_refs(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_kernel::Kernel;

    struct Adder {
        total: i64,
    }
    impl BinderService for Adder {
        fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel {
            cx.op(100);
            self.total += data.read_i32() as i64;
            let mut reply = Parcel::new();
            reply.write_i64(self.total);
            reply.write_u32(code);
            reply
        }
    }

    struct Caller {
        proxy: BinderProxy,
        oneway: bool,
    }
    impl Actor for Caller {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let mut p = Parcel::new();
            p.write_i32(21);
            if self.oneway {
                self.proxy.oneway(cx, 9, &p);
            } else {
                let mut reply = self.proxy.transact(cx, 9, &p);
                assert_eq!(reply.read_i64(), 21);
                assert_eq!(reply.read_u32(), 9);
            }
        }
    }

    fn run(oneway: bool) -> agave_trace::RunSummary {
        let mut kernel = Kernel::new();
        let server = kernel.spawn_process("system_server");
        let tid = kernel.spawn_thread(
            server,
            "Binder Thread #1",
            Box::new(BinderHost::new(Adder { total: 0 })),
        );
        let client = kernel.spawn_process("benchmark");
        let main = kernel.spawn_thread(
            client,
            "main",
            Box::new(Caller {
                proxy: BinderProxy::new(tid),
                oneway,
            }),
        );
        kernel.send(main, Message::new(0));
        kernel.run_to_idle();
        kernel.tracer().summarize("t")
    }

    #[test]
    fn synchronous_transaction_charges_both_sides() {
        let s = run(false);
        assert_eq!(
            s.instr_by_process["system_server"],
            SERVER_LIBBINDER_COST + 100
        );
        assert!(s.instr_by_process["benchmark"] >= CLIENT_LIBBINDER_COST);
        assert!(s.instr_by_region["libbinder.so"] >= CLIENT_LIBBINDER_COST + SERVER_LIBBINDER_COST);
        assert!(s.data_by_region.contains_key("/dev/binder"));
    }

    #[test]
    fn oneway_transaction_executes_asynchronously() {
        let s = run(true);
        // Server work happened even though the client never blocked.
        assert_eq!(
            s.instr_by_process["system_server"],
            SERVER_LIBBINDER_COST + 100
        );
    }
}
