//! Parcels: the flat argument buffers of Binder transactions.

use std::fmt;

/// A serialization buffer in the style of `android.os.Parcel`.
///
/// Values are appended with `write_*` and consumed in order with `read_*`
/// (a separate read cursor tracks position, so a received parcel can be
/// drained without mutation of its contents).
///
/// # Example
///
/// ```
/// use agave_binder::Parcel;
///
/// let mut p = Parcel::new();
/// p.write_i32(7);
/// p.write_str("surface");
/// let mut q = Parcel::from_bytes(p.as_bytes().to_vec());
/// assert_eq!(q.read_i32(), 7);
/// assert_eq!(q.read_str(), "surface");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parcel {
    data: Vec<u8>,
    cursor: usize,
}

impl Parcel {
    /// Creates an empty parcel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps received bytes for reading.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Parcel { data, cursor: 0 }
    }

    /// The raw serialized form.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the parcel, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Serialized length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the parcel holds no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends an `i32`.
    pub fn write_i32(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(u32::try_from(s.len()).expect("string too long for parcel"));
        self.data.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn write_blob(&mut self, b: &[u8]) {
        self.write_u32(u32::try_from(b.len()).expect("blob too long for parcel"));
        self.data.extend_from_slice(b);
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.cursor + n <= self.data.len(),
            "parcel underflow: need {n} bytes at {}, have {}",
            self.cursor,
            self.data.len()
        );
        let slice = &self.data[self.cursor..self.cursor + n];
        self.cursor += n;
        slice
    }

    /// Reads the next `i32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as the real Parcel aborts on malformed data).
    pub fn read_i32(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads the next `u32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    pub fn read_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads the next `i64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    pub fn read_i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads the next `u64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    pub fn read_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads the next string.
    ///
    /// # Panics
    ///
    /// Panics on underflow or invalid UTF-8.
    pub fn read_str(&mut self) -> String {
        let len = self.read_u32() as usize;
        String::from_utf8(self.take(len).to_vec()).expect("parcel string is UTF-8")
    }

    /// Reads the next byte blob.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    pub fn read_blob(&mut self) -> Vec<u8> {
        let len = self.read_u32() as usize;
        self.take(len).to_vec()
    }

    /// Bytes remaining to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.cursor
    }
}

impl fmt::Display for Parcel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Parcel({} bytes, cursor {})",
            self.data.len(),
            self.cursor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_round_trip() {
        let mut p = Parcel::new();
        p.write_i32(-5);
        p.write_u32(7);
        p.write_i64(-1 << 40);
        p.write_u64(1 << 60);
        p.write_str("hello");
        p.write_blob(&[9, 8, 7]);
        let mut q = Parcel::from_bytes(p.into_bytes());
        assert_eq!(q.read_i32(), -5);
        assert_eq!(q.read_u32(), 7);
        assert_eq!(q.read_i64(), -1 << 40);
        assert_eq!(q.read_u64(), 1 << 60);
        assert_eq!(q.read_str(), "hello");
        assert_eq!(q.read_blob(), vec![9, 8, 7]);
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn empty_and_len() {
        let p = Parcel::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let mut p = Parcel::new();
        p.write_u32(0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut p = Parcel::from_bytes(vec![1, 2]);
        let _ = p.read_i32();
    }

    #[test]
    fn empty_string_and_blob() {
        let mut p = Parcel::new();
        p.write_str("");
        p.write_blob(&[]);
        let mut q = Parcel::from_bytes(p.into_bytes());
        assert_eq!(q.read_str(), "");
        assert!(q.read_blob().is_empty());
    }
}
