//! Binder IPC model for the Agave simulator.
//!
//! On Android, almost every framework interaction — starting activities,
//! posting surfaces, playing media — is a Binder transaction: the client
//! marshals arguments into a [`Parcel`], the kernel's binder driver copies
//! it into the server process, and a server-side binder pool thread executes
//! the call. This cross-process execution is exactly why the paper's
//! Figures 3 and 4 show `system_server` and `mediaserver` absorbing most of
//! many applications' references.
//!
//! The model maps onto the kernel crate's synchronous-call primitive:
//! a [`BinderHost`] actor hosts a [`BinderService`] on a binder pool thread;
//! a [`BinderProxy`] charges the client-side marshalling (`libbinder.so`),
//! the driver copy (`/dev/binder` + `OS kernel`), and then executes the
//! server handler *in the server's context*.
//!
//! # Example
//!
//! ```
//! use agave_binder::{BinderHost, BinderProxy, BinderService, Parcel};
//! use agave_kernel::{Actor, Ctx, Kernel, Message};
//!
//! struct Echo;
//! impl BinderService for Echo {
//!     fn transact(&mut self, cx: &mut Ctx<'_>, _code: u32, data: &mut Parcel) -> Parcel {
//!         cx.op(50);
//!         let v = data.read_i32();
//!         let mut reply = Parcel::new();
//!         reply.write_i32(v + 1);
//!         reply
//!     }
//! }
//!
//! struct Client(BinderProxy);
//! impl Actor for Client {
//!     fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
//!         let mut p = Parcel::new();
//!         p.write_i32(41);
//!         let mut reply = self.0.transact(cx, 1, &p);
//!         assert_eq!(reply.read_i32(), 42);
//!     }
//! }
//!
//! let mut kernel = Kernel::new();
//! let server = kernel.spawn_process("system_server");
//! let tid = kernel.spawn_thread(server, "Binder Thread #1", Box::new(BinderHost::new(Echo)));
//! let client = kernel.spawn_process("benchmark");
//! let main = kernel.spawn_thread(client, "main", Box::new(Client(BinderProxy::new(tid))));
//! kernel.send(main, Message::new(0));
//! kernel.run_to_idle();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod host;
mod parcel;
mod service_manager;

pub use host::{BinderHost, BinderProxy, BinderService};
pub use parcel::Parcel;
pub use service_manager::{tid_to_raw, ServiceDirectory, ServiceManager, SM_LOOKUP, SM_REGISTER};
