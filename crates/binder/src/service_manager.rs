//! The service manager: Android's name → binder-object directory.
//!
//! Handle 0 in real Binder. Services register at boot; clients resolve
//! names to [`BinderProxy`]s via transactions against the `servicemanager`
//! process (so even *finding* a service charges references to it, as on
//! real Android).

use crate::host::{BinderProxy, BinderService};
use crate::parcel::Parcel;
use agave_kernel::{Ctx, Tid};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Transaction code: register a service (`name`, `tid`).
pub const SM_REGISTER: u32 = 1;
/// Transaction code: look up a service by `name`.
pub const SM_LOOKUP: u32 = 2;

/// Shared directory of registered services.
///
/// The simulation is single-threaded, so a `Rc<RefCell<..>>` clone is held
/// by the boot code (for direct registration while the world is being
/// constructed) and by the [`ServiceManager`] service (for runtime
/// transactions).
#[derive(Debug, Clone, Default)]
pub struct ServiceDirectory {
    inner: Rc<RefCell<HashMap<String, Tid>>>,
}

impl ServiceDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` as hosted by `tid` (boot-time fast path).
    pub fn register(&self, name: &str, tid: Tid) {
        self.inner.borrow_mut().insert(name.to_owned(), tid);
    }

    /// Resolves a service to a proxy, if registered.
    pub fn lookup(&self, name: &str) -> Option<BinderProxy> {
        self.inner.borrow().get(name).copied().map(BinderProxy::new)
    }

    /// Resolves a service that must exist.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not registered — missing system services are a
    /// boot-order bug.
    pub fn expect(&self, name: &str) -> BinderProxy {
        self.lookup(name)
            .unwrap_or_else(|| panic!("service {name:?} not registered"))
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

/// The `servicemanager` binder service.
///
/// Host it with [`crate::BinderHost`] on a thread of the `servicemanager`
/// process; share its [`ServiceDirectory`] with boot code.
#[derive(Debug)]
pub struct ServiceManager {
    directory: ServiceDirectory,
}

impl ServiceManager {
    /// Creates the service around a shared directory.
    pub fn new(directory: ServiceDirectory) -> Self {
        ServiceManager { directory }
    }
}

impl BinderService for ServiceManager {
    fn transact(&mut self, cx: &mut Ctx<'_>, code: u32, data: &mut Parcel) -> Parcel {
        cx.op(150); // hash lookup / insert in servicemanager
        let mut reply = Parcel::new();
        match code {
            SM_REGISTER => {
                let name = data.read_str();
                let tid = Tid::from_raw(data.read_u64() as u32);
                self.directory.register(&name, tid);
                reply.write_u32(0);
            }
            SM_LOOKUP => {
                let name = data.read_str();
                match self.directory.lookup(&name) {
                    Some(proxy) => {
                        reply.write_u32(0);
                        reply.write_u64(u64::from(proxy.target().as_u32()));
                    }
                    None => reply.write_u32(1),
                }
            }
            other => panic!("servicemanager: unknown transaction code {other}"),
        }
        reply
    }
}

/// Encodes a tid for transport in a parcel (pair of [`Tid::from_raw`]),
/// e.g. when building an [`SM_REGISTER`] transaction by hand.
pub fn tid_to_raw(tid: Tid) -> u64 {
    u64::from(tid.as_u32())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::BinderHost;
    use agave_kernel::{Actor, Ctx, Kernel, Message};

    #[test]
    fn directory_register_lookup() {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("servicemanager");
        let tid = kernel.spawn_thread(pid, "servicemanager", Box::new(agave_kernel_inert()));
        let dir = ServiceDirectory::new();
        assert!(dir.is_empty());
        dir.register("window", tid);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.lookup("window").unwrap().target(), tid);
        assert!(dir.lookup("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn expect_missing_panics() {
        ServiceDirectory::new().expect("nope");
    }

    #[test]
    fn runtime_lookup_via_transaction() {
        struct Client {
            sm: BinderProxy,
            expected: u64,
        }
        impl Actor for Client {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                let mut p = Parcel::new();
                p.write_str("activity");
                let mut reply = self.sm.transact(cx, SM_LOOKUP, &p);
                assert_eq!(reply.read_u32(), 0);
                assert_eq!(reply.read_u64(), self.expected);
            }
        }

        let mut kernel = Kernel::new();
        let sm_pid = kernel.spawn_process("servicemanager");
        let dir = ServiceDirectory::new();
        let sm_tid = kernel.spawn_thread(
            sm_pid,
            "servicemanager",
            Box::new(BinderHost::new(ServiceManager::new(dir.clone()))),
        );
        let host_pid = kernel.spawn_process("system_server");
        let svc_tid =
            kernel.spawn_thread(host_pid, "Binder Thread #1", Box::new(agave_kernel_inert()));
        dir.register("activity", svc_tid);

        let app = kernel.spawn_process("benchmark");
        let main = kernel.spawn_thread(
            app,
            "main",
            Box::new(Client {
                sm: BinderProxy::new(sm_tid),
                expected: tid_to_raw(svc_tid),
            }),
        );
        kernel.send(main, Message::new(0));
        kernel.run_to_idle();

        let s = kernel.tracer().summarize("t");
        assert!(s.instr_by_process["servicemanager"] >= 150);
    }

    fn agave_kernel_inert() -> impl Actor {
        struct I;
        impl Actor for I {
            fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
        }
        I
    }
}
