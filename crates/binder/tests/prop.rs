//! Property tests for the Binder layer: parcels survive arbitrary
//! write/read sequences and transport.

use agave_binder::Parcel;
use proptest::prelude::*;

/// A value that can go into a parcel.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    I32(i32),
    U32(u32),
    I64(i64),
    U64(u64),
    Str(String),
    Blob(Vec<u8>),
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        any::<i32>().prop_map(Item::I32),
        any::<u32>().prop_map(Item::U32),
        any::<i64>().prop_map(Item::I64),
        any::<u64>().prop_map(Item::U64),
        "[a-zA-Z0-9 /._-]{0,40}".prop_map(Item::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Item::Blob),
    ]
}

proptest! {
    /// Whatever is written, in whatever order, reads back identically —
    /// including after a serialize/deserialize hop (the driver copy).
    #[test]
    fn parcels_round_trip_any_sequence(items in proptest::collection::vec(item_strategy(), 0..24)) {
        let mut p = Parcel::new();
        for item in &items {
            match item {
                Item::I32(v) => p.write_i32(*v),
                Item::U32(v) => p.write_u32(*v),
                Item::I64(v) => p.write_i64(*v),
                Item::U64(v) => p.write_u64(*v),
                Item::Str(s) => p.write_str(s),
                Item::Blob(b) => p.write_blob(b),
            }
        }
        // Transport hop.
        let mut q = Parcel::from_bytes(p.as_bytes().to_vec());
        for item in &items {
            match item {
                Item::I32(v) => prop_assert_eq!(q.read_i32(), *v),
                Item::U32(v) => prop_assert_eq!(q.read_u32(), *v),
                Item::I64(v) => prop_assert_eq!(q.read_i64(), *v),
                Item::U64(v) => prop_assert_eq!(q.read_u64(), *v),
                Item::Str(s) => prop_assert_eq!(&q.read_str(), s),
                Item::Blob(b) => prop_assert_eq!(&q.read_blob(), b),
            }
        }
        prop_assert_eq!(q.remaining(), 0);
    }

    /// Parcel length equals the sum of encoded item sizes.
    #[test]
    fn parcel_length_is_exact(items in proptest::collection::vec(item_strategy(), 0..24)) {
        let mut p = Parcel::new();
        let mut expected = 0usize;
        for item in &items {
            match item {
                Item::I32(v) => { p.write_i32(*v); expected += 4; }
                Item::U32(v) => { p.write_u32(*v); expected += 4; }
                Item::I64(v) => { p.write_i64(*v); expected += 8; }
                Item::U64(v) => { p.write_u64(*v); expected += 8; }
                Item::Str(s) => { p.write_str(s); expected += 4 + s.len(); }
                Item::Blob(b) => { p.write_blob(b); expected += 4 + b.len(); }
            }
        }
        prop_assert_eq!(p.len(), expected);
    }
}
