//! Randomized tests for the Binder layer: parcels survive arbitrary
//! write/read sequences and transport. Inputs come from the in-tree
//! [`XorShift64`] generator with fixed seeds.

use agave_binder::Parcel;
use agave_trace::XorShift64;

const CASES: u64 = 96;

/// A value that can go into a parcel.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    I32(i32),
    U32(u32),
    I64(i64),
    U64(u64),
    Str(String),
    Blob(Vec<u8>),
}

fn random_item(rng: &mut XorShift64) -> Item {
    match rng.index(6) {
        0 => Item::I32(rng.next_u64() as i32),
        1 => Item::U32(rng.next_u64() as u32),
        2 => Item::I64(rng.next_u64() as i64),
        3 => Item::U64(rng.next_u64()),
        4 => {
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEF0123456789 /._-";
            let len = rng.index(41);
            Item::Str(
                (0..len)
                    .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
                    .collect(),
            )
        }
        _ => {
            let len = rng.index(64);
            Item::Blob(rng.bytes(len))
        }
    }
}

fn random_items(rng: &mut XorShift64) -> Vec<Item> {
    (0..rng.index(24)).map(|_| random_item(rng)).collect()
}

/// Whatever is written, in whatever order, reads back identically —
/// including after a serialize/deserialize hop (the driver copy).
#[test]
fn parcels_round_trip_any_sequence() {
    let mut rng = XorShift64::new(0xb1d3);
    for _ in 0..CASES {
        let items = random_items(&mut rng);
        let mut p = Parcel::new();
        for item in &items {
            match item {
                Item::I32(v) => p.write_i32(*v),
                Item::U32(v) => p.write_u32(*v),
                Item::I64(v) => p.write_i64(*v),
                Item::U64(v) => p.write_u64(*v),
                Item::Str(s) => p.write_str(s),
                Item::Blob(b) => p.write_blob(b),
            }
        }
        // Transport hop.
        let mut q = Parcel::from_bytes(p.as_bytes().to_vec());
        for item in &items {
            match item {
                Item::I32(v) => assert_eq!(q.read_i32(), *v),
                Item::U32(v) => assert_eq!(q.read_u32(), *v),
                Item::I64(v) => assert_eq!(q.read_i64(), *v),
                Item::U64(v) => assert_eq!(q.read_u64(), *v),
                Item::Str(s) => assert_eq!(&q.read_str(), s),
                Item::Blob(b) => assert_eq!(&q.read_blob(), b),
            }
        }
        assert_eq!(q.remaining(), 0);
    }
}

/// Parcel length equals the sum of encoded item sizes.
#[test]
fn parcel_length_is_exact() {
    let mut rng = XorShift64::new(0x1e4);
    for _ in 0..CASES {
        let items = random_items(&mut rng);
        let mut p = Parcel::new();
        let mut expected = 0usize;
        for item in &items {
            match item {
                Item::I32(v) => {
                    p.write_i32(*v);
                    expected += 4;
                }
                Item::U32(v) => {
                    p.write_u32(*v);
                    expected += 4;
                }
                Item::I64(v) => {
                    p.write_i64(*v);
                    expected += 8;
                }
                Item::U64(v) => {
                    p.write_u64(*v);
                    expected += 8;
                }
                Item::Str(s) => {
                    p.write_str(s);
                    expected += 4 + s.len();
                }
                Item::Blob(b) => {
                    p.write_blob(b);
                    expected += 4 + b.len();
                }
            }
        }
        assert_eq!(p.len(), expected);
    }
}
