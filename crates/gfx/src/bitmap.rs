//! Plain pixel buffers with real contents.

use std::fmt;

/// Pixel formats of the Gingerbread display stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// 16-bit 5:6:5 — the default framebuffer format of the era.
    Rgb565,
    /// 32-bit ARGB.
    Argb8888,
}

impl PixelFormat {
    /// Bytes per pixel.
    pub fn bytes_per_pixel(self) -> usize {
        match self {
            PixelFormat::Rgb565 => 2,
            PixelFormat::Argb8888 => 4,
        }
    }
}

/// An axis-aligned rectangle (x, y, width, height).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
}

impl Rect {
    /// Creates a rect.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Pixel area.
    pub fn area(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// Intersection with another rect (empty if disjoint).
    pub fn intersect(&self, other: &Rect) -> Rect {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        if x2 > x1 && y2 > y1 {
            Rect::new(x1, y1, x2 - x1, y2 - y1)
        } else {
            Rect::default()
        }
    }
}

/// A width × height pixel buffer with real bytes.
///
/// # Example
///
/// ```
/// use agave_gfx::{Bitmap, PixelFormat, Rect};
///
/// let mut bmp = Bitmap::new(16, 16, PixelFormat::Rgb565);
/// bmp.fill_rect(Rect::new(4, 4, 8, 8), 0xf800); // red square
/// assert_eq!(bmp.pixel(5, 5), 0xf800);
/// assert_eq!(bmp.pixel(0, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: u32,
    height: u32,
    format: PixelFormat,
    data: Vec<u8>,
}

impl Bitmap {
    /// Creates a zeroed bitmap.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: u32, height: u32, format: PixelFormat) -> Self {
        assert!(width > 0 && height > 0, "empty bitmap");
        let len = width as usize * height as usize * format.bytes_per_pixel();
        Bitmap {
            width,
            height,
            format,
            data: vec![0; len],
        }
    }

    /// Builds an RGB565 bitmap from raw pixel values (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or dimensions are zero.
    pub fn from_rgb565(width: u32, height: u32, pixels: &[u16]) -> Self {
        assert_eq!(
            pixels.len(),
            width as usize * height as usize,
            "pixel count mismatch"
        );
        let mut bmp = Bitmap::new(width, height, PixelFormat::Rgb565);
        for (i, px) in pixels.iter().enumerate() {
            bmp.data[i * 2..i * 2 + 2].copy_from_slice(&px.to_le_bytes());
        }
        bmp
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// The full-bitmap rect.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    fn offset(&self, x: u32, y: u32) -> usize {
        (y as usize * self.width as usize + x as usize) * self.format.bytes_per_pixel()
    }

    /// Reads a pixel (as up to 32 bits).
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> u32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let o = self.offset(x, y);
        match self.format {
            PixelFormat::Rgb565 => u32::from(u16::from_le_bytes([self.data[o], self.data[o + 1]])),
            PixelFormat::Argb8888 => u32::from_le_bytes([
                self.data[o],
                self.data[o + 1],
                self.data[o + 2],
                self.data[o + 3],
            ]),
        }
    }

    /// Writes a pixel.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn set_pixel(&mut self, x: u32, y: u32, color: u32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let o = self.offset(x, y);
        match self.format {
            PixelFormat::Rgb565 => {
                self.data[o..o + 2].copy_from_slice(&(color as u16).to_le_bytes())
            }
            PixelFormat::Argb8888 => self.data[o..o + 4].copy_from_slice(&color.to_le_bytes()),
        }
    }

    /// Fills `rect` (clipped to bounds) with `color`.
    pub fn fill_rect(&mut self, rect: Rect, color: u32) {
        let r = rect.intersect(&self.bounds());
        let bpp = self.format.bytes_per_pixel();
        let mut row = Vec::with_capacity(r.w as usize * bpp);
        for _ in 0..r.w {
            match self.format {
                PixelFormat::Rgb565 => row.extend_from_slice(&(color as u16).to_le_bytes()),
                PixelFormat::Argb8888 => row.extend_from_slice(&color.to_le_bytes()),
            }
        }
        for y in r.y..r.y + r.h {
            let o = self.offset(r.x, y);
            self.data[o..o + row.len()].copy_from_slice(&row);
        }
    }

    /// Copies `src_rect` of `src` to `(dst_x, dst_y)` (clipped; formats
    /// must match).
    ///
    /// # Panics
    ///
    /// Panics on format mismatch.
    pub fn blit(&mut self, src: &Bitmap, src_rect: Rect, dst_x: u32, dst_y: u32) {
        assert_eq!(self.format, src.format, "blit format mismatch");
        let sr = src_rect.intersect(&src.bounds());
        let bpp = self.format.bytes_per_pixel();
        for dy in 0..sr.h {
            let y_dst = dst_y + dy;
            if y_dst >= self.height {
                break;
            }
            let copy_w = sr.w.min(self.width.saturating_sub(dst_x));
            if copy_w == 0 {
                break;
            }
            let so = src.offset(sr.x, sr.y + dy);
            let doff = self.offset(dst_x, y_dst);
            let n = copy_w as usize * bpp;
            self.data[doff..doff + n].copy_from_slice(&src.data[so..so + n]);
        }
    }

    /// FNV-1a checksum of the pixel bytes — cheap display-content identity
    /// for tests.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.data)
    }
}

/// FNV-1a over bytes.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl fmt::Display for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bitmap({}x{} {:?}, {} bytes)",
            self.width,
            self.height,
            self.format,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_read_back() {
        let mut b = Bitmap::new(8, 8, PixelFormat::Argb8888);
        b.fill_rect(Rect::new(2, 2, 4, 4), 0xff00ff00);
        assert_eq!(b.pixel(2, 2), 0xff00ff00);
        assert_eq!(b.pixel(5, 5), 0xff00ff00);
        assert_eq!(b.pixel(6, 6), 0);
        assert_eq!(b.pixel(1, 2), 0);
    }

    #[test]
    fn fill_clips_to_bounds() {
        let mut b = Bitmap::new(4, 4, PixelFormat::Rgb565);
        b.fill_rect(Rect::new(2, 2, 100, 100), 0xffff);
        assert_eq!(b.pixel(3, 3), 0xffff);
        assert_eq!(b.pixel(1, 1), 0);
    }

    #[test]
    fn blit_copies_subrect() {
        let mut src = Bitmap::new(4, 4, PixelFormat::Rgb565);
        src.fill_rect(Rect::new(0, 0, 4, 4), 0x1234);
        let mut dst = Bitmap::new(8, 8, PixelFormat::Rgb565);
        dst.blit(&src, Rect::new(1, 1, 2, 2), 5, 5);
        assert_eq!(dst.pixel(5, 5), 0x1234);
        assert_eq!(dst.pixel(6, 6), 0x1234);
        assert_eq!(dst.pixel(4, 4), 0);
    }

    #[test]
    fn blit_clips_at_destination_edge() {
        let mut src = Bitmap::new(4, 4, PixelFormat::Rgb565);
        src.fill_rect(Rect::new(0, 0, 4, 4), 0xaaaa);
        let mut dst = Bitmap::new(4, 4, PixelFormat::Rgb565);
        dst.blit(&src, src.bounds(), 2, 2);
        assert_eq!(dst.pixel(3, 3), 0xaaaa);
        assert_eq!(dst.pixel(1, 1), 0);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 5, 5));
        let c = Rect::new(20, 20, 1, 1);
        assert_eq!(a.intersect(&c).area(), 0);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut b = Bitmap::new(8, 8, PixelFormat::Rgb565);
        let c0 = b.checksum();
        b.set_pixel(0, 0, 1);
        assert_ne!(b.checksum(), c0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_pixel_panics() {
        let b = Bitmap::new(2, 2, PixelFormat::Rgb565);
        let _ = b.pixel(2, 0);
    }

    #[test]
    fn formats_sizes() {
        assert_eq!(PixelFormat::Rgb565.bytes_per_pixel(), 2);
        assert_eq!(PixelFormat::Argb8888.bytes_per_pixel(), 4);
        assert_eq!(Bitmap::new(3, 3, PixelFormat::Argb8888).byte_len(), 36);
    }
}
