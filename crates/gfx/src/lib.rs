//! The graphics stack model: Skia-like software rendering, gralloc
//! surfaces, and SurfaceFlinger composition.
//!
//! This subsystem generates the paper's most prominent signals:
//!
//! * **`mspace`** — Skia on Gingerbread allocates raster scratch and keeps
//!   *runtime-generated blitter code* in a private dlmalloc mspace; per-pixel
//!   blitter execution is why `mspace` is the largest *instruction* region in
//!   Figure 1. [`Canvas`] charges its inner-loop fetches there.
//! * **`gralloc-buffer`** — window surfaces are double-buffered shared
//!   segments; posting a frame writes one ([`SurfaceHandle::post_buffer`]).
//! * **`fb0 (frame buffer)`** — the [`SurfaceFlinger`] actor composites
//!   front buffers into the framebuffer at vsync; across the suite this
//!   thread accounts for the paper's Table-I-topping 43.4 % of references.
//!
//! Pixels are real: drawing mutates a [`Bitmap`], posting copies those bytes
//! into shared memory, and composition copies them again into `fb0`, so
//! tests can checksum actual display contents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod canvas;
mod flinger;
mod surface;

pub use bitmap::{Bitmap, PixelFormat, Rect};
pub use canvas::Canvas;
pub use flinger::{DisplayConfig, SurfaceFlinger, MSG_STOP, MSG_VSYNC, VSYNC_PERIOD};
pub use surface::{SurfaceHandle, SurfaceStore};
