//! Window surfaces: double-buffered gralloc shared memory.

use crate::bitmap::{Bitmap, PixelFormat};
use agave_kernel::{Ctx, RefKind, ShmId};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug)]
pub(crate) struct Layer {
    pub name: String,
    pub x: u32,
    pub y: u32,
    pub width: u32,
    pub height: u32,
    pub format: PixelFormat,
    pub buffers: [ShmId; 2],
    pub front: usize,
    pub dirty: bool,
    pub visible: bool,
    /// Composited through the overlay/copybit path (video): plain copy,
    /// no per-pixel pixelflinger work.
    pub overlay: bool,
}

/// The shared window list: clients post buffers into it, the
/// [`crate::SurfaceFlinger`] composites out of it.
///
/// Single-threaded simulation ⇒ a cheap `Rc<RefCell<…>>` clone per party.
#[derive(Debug, Clone, Default)]
pub struct SurfaceStore {
    inner: Rc<RefCell<Vec<Layer>>>,
}

impl SurfaceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a double-buffered surface at `(x, y)` and returns the
    /// client handle. The two gralloc buffers are allocated as shared
    /// segments charged to `gralloc-buffer`.
    // The parameter list mirrors the SurfaceFlinger createSurface ABI;
    // collapsing it into a struct would obscure the modeled call.
    #[allow(clippy::too_many_arguments)]
    pub fn create_surface(
        &self,
        cx: &mut Ctx<'_>,
        name: &str,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        format: PixelFormat,
    ) -> SurfaceHandle {
        let wk = cx.well_known();
        let len = width as usize * height as usize * format.bytes_per_pixel();
        let buffers = [
            cx.shm_create(wk.gralloc, len),
            cx.shm_create(wk.gralloc, len),
        ];
        let mut layers = self.inner.borrow_mut();
        layers.push(Layer {
            name: name.to_owned(),
            x,
            y,
            width,
            height,
            format,
            buffers,
            front: 0,
            dirty: false,
            visible: true,
            overlay: false,
        });
        SurfaceHandle {
            store: self.clone(),
            index: layers.len() - 1,
        }
    }

    /// Number of surfaces created so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Rebuilds a handle to surface `index` (e.g. after passing the index
    /// through a parcel).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn handle(&self, index: usize) -> SurfaceHandle {
        assert!(index < self.len(), "no surface #{index}");
        SurfaceHandle {
            store: self.clone(),
            index,
        }
    }

    /// Whether no surfaces exist.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Whether any visible surface has an un-composited frame.
    pub fn any_dirty(&self) -> bool {
        self.inner.borrow().iter().any(|l| l.dirty && l.visible)
    }

    /// Whether anything is on screen at all.
    pub fn any_visible(&self) -> bool {
        self.inner.borrow().iter().any(|l| l.visible)
    }

    /// Shows/hides a layer by its creation name (e.g. re-showing the
    /// launcher when an app goes to the background). No-op if absent.
    pub fn set_visible_by_name(&self, name: &str, visible: bool) {
        for layer in self.inner.borrow_mut().iter_mut() {
            if layer.name == name {
                layer.visible = visible;
            }
        }
    }

    pub(crate) fn with_layers<R>(&self, f: impl FnOnce(&mut Vec<Layer>) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

/// A client-side handle to one surface.
#[derive(Debug, Clone)]
pub struct SurfaceHandle {
    store: SurfaceStore,
    index: usize,
}

impl SurfaceHandle {
    /// This surface's index in the store (parcel-transportable; pair of
    /// [`SurfaceStore::handle`]).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Surface width in pixels.
    pub fn width(&self) -> u32 {
        self.store.inner.borrow()[self.index].width
    }

    /// Surface height in pixels.
    pub fn height(&self) -> u32 {
        self.store.inner.borrow()[self.index].height
    }

    /// Pixel format.
    pub fn format(&self) -> PixelFormat {
        self.store.inner.borrow()[self.index].format
    }

    /// Posts a rendered frame: copies `frame`'s bytes into the back
    /// buffer (reads charged to the `mspace` raster source, writes to
    /// `gralloc-buffer`), swaps buffers, and marks the layer dirty for the
    /// next vsync.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not match the surface dimensions/format.
    pub fn post_buffer(&self, cx: &mut Ctx<'_>, frame: &Bitmap) {
        let (back, expected_len) = {
            let layers = self.store.inner.borrow();
            let l = &layers[self.index];
            assert_eq!(
                (frame.width(), frame.height(), frame.format()),
                (l.width, l.height, l.format),
                "posted frame does not match surface geometry"
            );
            (
                l.buffers[1 - l.front],
                l.width as usize * l.height as usize * l.format.bytes_per_pixel(),
            )
        };
        assert_eq!(frame.byte_len(), expected_len);
        // The raster source is read out of Skia's mspace scratch.
        let wk = cx.well_known();
        cx.charge(
            wk.mspace,
            RefKind::DataRead,
            (frame.byte_len() as u64).div_ceil(4),
        );
        cx.shm_write(back, 0, frame.bytes());
        let mut layers = self.store.inner.borrow_mut();
        let l = &mut layers[self.index];
        l.front = 1 - l.front;
        l.dirty = true;
    }

    /// Shows or hides the layer.
    pub fn set_visible(&self, visible: bool) {
        self.store.inner.borrow_mut()[self.index].visible = visible;
    }

    /// Marks this layer for overlay (copybit) composition — the path
    /// Gingerbread used for video surfaces, bypassing the per-pixel
    /// pixelflinger loop.
    pub fn set_overlay(&self, overlay: bool) {
        self.store.inner.borrow_mut()[self.index].overlay = overlay;
    }

    /// The shm segment currently on screen (front buffer).
    pub fn front_buffer(&self) -> ShmId {
        let layers = self.store.inner.borrow();
        let l = &layers[self.index];
        l.buffers[l.front]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Rect;
    use agave_kernel::{Actor, Kernel, Message};

    #[test]
    fn post_swaps_and_dirties() {
        struct T(SurfaceStore);
        impl Actor for T {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                let h = self
                    .0
                    .create_surface(cx, "win", 0, 0, 16, 16, PixelFormat::Rgb565);
                assert!(!self.0.any_dirty());
                let before = h.front_buffer();
                let mut frame = Bitmap::new(16, 16, PixelFormat::Rgb565);
                frame.fill_rect(Rect::new(0, 0, 16, 16), 0xbeef);
                h.post_buffer(cx, &frame);
                assert!(self.0.any_dirty());
                assert_ne!(h.front_buffer(), before);
                // The posted bytes landed in the (new) front buffer.
                let mut check = [0u8; 2];
                cx.shm_read(h.front_buffer(), 0, &mut check);
                assert_eq!(u16::from_le_bytes(check), 0xbeef);
            }
        }
        let store = SurfaceStore::new();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("app");
        let tid = kernel.spawn_thread(pid, "main", Box::new(T(store.clone())));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
        let s = kernel.tracer().summarize("t");
        assert!(s.data_by_region["gralloc-buffer"] > 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn hidden_layers_are_not_dirty_candidates() {
        struct T(SurfaceStore);
        impl Actor for T {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                let h = self
                    .0
                    .create_surface(cx, "win", 0, 0, 4, 4, PixelFormat::Rgb565);
                let frame = Bitmap::new(4, 4, PixelFormat::Rgb565);
                h.post_buffer(cx, &frame);
                h.set_visible(false);
                assert!(!self.0.any_dirty());
            }
        }
        let store = SurfaceStore::new();
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("app");
        let tid = kernel.spawn_thread(pid, "main", Box::new(T(store)));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
    }
}
