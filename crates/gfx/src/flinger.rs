//! SurfaceFlinger: vsync-driven composition into the framebuffer.

use crate::bitmap::PixelFormat;
use crate::surface::SurfaceStore;
use agave_kernel::{Actor, Ctx, Message, ShmId, TICKS_PER_MS};
use std::cell::Cell;
use std::rc::Rc;

/// Vsync period: ~60 Hz.
pub const VSYNC_PERIOD: u64 = 16 * TICKS_PER_MS + TICKS_PER_MS * 2 / 3;

/// Message: a display refresh tick.
pub const MSG_VSYNC: u32 = 0x7673;
/// Message: stop re-arming the vsync timer (end of run).
pub const MSG_STOP: u32 = 0x7374;

/// Display geometry (Nexus-S-class default is 480×800 RGB565; benchmark
/// configs scale it down for fast runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplayConfig {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Framebuffer format.
    pub format: PixelFormat,
}

impl DisplayConfig {
    /// The Gingerbread-era default panel.
    pub const fn wvga() -> Self {
        DisplayConfig {
            width: 480,
            height: 800,
            format: PixelFormat::Rgb565,
        }
    }

    /// A `1/scale` panel for fast runs (dimensions divided, minimum 16).
    pub fn scaled(self, scale: u32) -> Self {
        DisplayConfig {
            width: (self.width / scale.max(1)).max(16),
            height: (self.height / scale.max(1)).max(16),
            format: self.format,
        }
    }

    /// Framebuffer size in bytes.
    pub fn fb_bytes(&self) -> usize {
        self.width as usize * self.height as usize * self.format.bytes_per_pixel()
    }
}

impl Default for DisplayConfig {
    fn default() -> Self {
        Self::wvga()
    }
}

/// How long after the last client post the screen counts as *active*:
/// while active, SurfaceFlinger recomposes the full frame every vsync
/// (Gingerbread-era SF had no damage-rect tracking on most devices).
const ACTIVE_WINDOW: u64 = 2_000 * TICKS_PER_MS;

/// The SurfaceFlinger thread: composites visible layers into `fb0` at
/// vsync while the screen is active.
///
/// Runs inside `system_server` on Gingerbread; the hosting crate spawns it
/// there as a thread literally named `SurfaceFlinger`, which is what tops
/// the paper's Table I at 43.4 % of all suite references. Its per-pixel
/// inner loops execute from pixelflinger's *runtime-generated scanline
/// code*, charged to the `mspace` arena — which is how `mspace` comes to
/// be the paper's largest instruction region even though much of it is
/// executed by the compositor.
pub struct SurfaceFlinger {
    cfg: DisplayConfig,
    store: SurfaceStore,
    fb: ShmId,
    running: bool,
    last_activity: u64,
    vsyncs: u64,
    frames: Rc<Cell<u64>>,
}

impl SurfaceFlinger {
    /// Creates the compositor over an existing framebuffer segment
    /// (`kernel.shm_create(wk.fb0, cfg.fb_bytes())`).
    pub fn new(cfg: DisplayConfig, store: SurfaceStore, fb: ShmId) -> Self {
        SurfaceFlinger {
            cfg,
            store,
            fb,
            running: true,
            last_activity: 0,
            vsyncs: 0,
            frames: Rc::new(Cell::new(0)),
        }
    }

    /// A shared counter of composed frames (clone before spawning).
    pub fn frame_counter(&self) -> Rc<Cell<u64>> {
        self.frames.clone()
    }

    /// The framebuffer segment.
    pub fn framebuffer(&self) -> ShmId {
        self.fb
    }

    fn compose(&mut self, cx: &mut Ctx<'_>) {
        let sf_lib = cx.intern_region("libsurfaceflinger.so");
        let pf_lib = cx.intern_region("libpixelflinger.so");
        let ui_lib = cx.intern_region("libui.so");
        let egl_lib = cx.intern_region("libEGL.so");
        cx.call_lib(sf_lib, 800);
        cx.call_lib(ui_lib, 200);
        cx.call_lib(egl_lib, 150);

        let fb = self.fb;
        let cfg = self.cfg;
        // Snapshot layer geometry to avoid holding the borrow across
        // charged copies.
        struct Piece {
            front: ShmId,
            x: u32,
            y: u32,
            width: u32,
            height: u32,
            bpp: usize,
            overlay: bool,
        }
        let pieces: Vec<Piece> = self.store.with_layers(|layers| {
            layers
                .iter_mut()
                .filter(|l| l.visible)
                .map(|l| {
                    l.dirty = false;
                    Piece {
                        front: l.buffers[l.front],
                        x: l.x,
                        y: l.y,
                        width: l.width,
                        height: l.height,
                        bpp: l.format.bytes_per_pixel(),
                        overlay: l.overlay,
                    }
                })
                .collect()
        });

        let fb_bpp = cfg.format.bytes_per_pixel();
        let fb_row = cfg.width as usize * fb_bpp;
        let wk = cx.well_known();
        for p in &pieces {
            // Software composition: pixelflinger's generated scanline code
            // (resident in mspace) loops per pixel — read, convert, dither,
            // write is ~6 instructions per RGB565 pixel; libpixelflinger
            // proper only runs the per-span setup.
            let pixels = u64::from(p.width) * u64::from(p.height);
            if p.overlay {
                // Video layers go through the copybit/overlay engine: a
                // plain copy with a little setup.
                cx.call_lib(sf_lib, pixels / 32 + 200);
            } else {
                cx.charge(wk.mspace, agave_kernel::RefKind::InstrFetch, pixels * 6);
                cx.call_lib(pf_lib, pixels / 8);
                cx.call_lib(sf_lib, pixels / 16);
                // Per-pixel (not per-word) source reads and dithered stores
                // on top of the word-granular copy below.
                cx.charge(wk.gralloc, agave_kernel::RefKind::DataRead, pixels / 2);
                cx.charge(wk.fb0, agave_kernel::RefKind::DataWrite, pixels / 2);
            }
            // Row-wise copy into the framebuffer at the layer position,
            // clipped to the panel.
            let copy_w = (p.width.min(cfg.width.saturating_sub(p.x)) as usize) * p.bpp;
            if copy_w == 0 {
                continue;
            }
            let src_row = p.width as usize * p.bpp;
            let rows = p.height.min(cfg.height.saturating_sub(p.y)) as usize;
            for row in 0..rows {
                let src_off = row * src_row;
                let dst_off = (p.y as usize + row) * fb_row + p.x as usize * fb_bpp;
                cx.shm_copy(fb, dst_off, p.front, src_off, copy_w.min(fb_row));
            }
        }
        self.frames.set(self.frames.get() + 1);
    }
}

impl Actor for SurfaceFlinger {
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        cx.post_self_after(VSYNC_PERIOD, Message::new(MSG_VSYNC));
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        match msg.what {
            MSG_VSYNC => {
                self.vsyncs += 1;
                let dirty = self.store.any_dirty();
                if dirty {
                    self.last_activity = cx.now();
                }
                let active = cx.now().saturating_sub(self.last_activity) < ACTIVE_WINDOW;
                // Dirty frames compose immediately; while the screen is
                // active, animation/dim passes also recompose at a quarter
                // of the vsync rate even without new client buffers.
                if self.store.any_visible() && (dirty || (active && self.vsyncs.is_multiple_of(2)))
                {
                    self.compose(cx);
                } else {
                    // Idle vsync: minimal bookkeeping.
                    let sf_lib = cx.intern_region("libsurfaceflinger.so");
                    cx.call_lib(sf_lib, 60);
                }
                if self.running {
                    cx.post_self_after(VSYNC_PERIOD, Message::new(MSG_VSYNC));
                }
            }
            MSG_STOP => self.running = false,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::{Bitmap, Rect};
    use agave_kernel::{Kernel, Perms};

    /// One app posting frames; the flinger composes them to fb0.
    #[test]
    fn flinger_composes_dirty_layers_to_fb0() {
        struct App {
            store: SurfaceStore,
            handle: Option<crate::SurfaceHandle>,
            posts: u32,
        }
        impl Actor for App {
            fn on_start(&mut self, cx: &mut Ctx<'_>) {
                let h = self
                    .store
                    .create_surface(cx, "app", 0, 0, 32, 32, PixelFormat::Rgb565);
                self.handle = Some(h);
                cx.post_self_after(VSYNC_PERIOD / 2, Message::new(1));
            }
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                let mut frame = Bitmap::new(32, 32, PixelFormat::Rgb565);
                frame.fill_rect(Rect::new(0, 0, 32, 32), 0xabcd);
                self.handle.as_ref().unwrap().post_buffer(cx, &frame);
                self.posts += 1;
                if self.posts < 5 {
                    cx.post_self_after(VSYNC_PERIOD, Message::new(1));
                }
            }
        }

        let mut kernel = Kernel::new();
        let cfg = DisplayConfig::wvga().scaled(8); // 60x100
        let wk = kernel.well_known();
        let fb = kernel.shm_create(wk.fb0, cfg.fb_bytes());
        let store = SurfaceStore::new();

        let ss = kernel.spawn_process("system_server");
        let flinger = SurfaceFlinger::new(cfg, store.clone(), fb);
        let frames = flinger.frame_counter();
        let sf_lib = kernel.intern_region("libsurfaceflinger.so");
        kernel.spawn_thread_in(ss, "SurfaceFlinger", sf_lib, Box::new(flinger));

        let app = kernel.spawn_process("benchmark");
        kernel.spawn_thread(
            app,
            "main",
            Box::new(App {
                store,
                handle: None,
                posts: 0,
            }),
        );

        kernel.run_until(VSYNC_PERIOD * 10);
        // Stop condition: just stop running the loop (timers drain).
        assert!(frames.get() >= 4, "composed only {} frames", frames.get());

        // fb0 actually holds the posted color at the layer origin.
        let fb_bytes = kernel.shm_bytes(fb);
        assert_eq!(u16::from_le_bytes([fb_bytes[0], fb_bytes[1]]), 0xabcd);

        let s = kernel.tracer().summarize("t");
        assert!(s.data_by_region["fb0 (frame buffer)"] > 0);
        assert!(s.data_by_region["gralloc-buffer"] > 0);
        assert!(s.refs_by_thread["SurfaceFlinger"] > 0);
        assert!(s.instr_by_region["libpixelflinger.so"] > 0);
        // SurfaceFlinger's work is attributed to system_server.
        assert!(s.instr_by_process["system_server"] > 0);
        let _ = Perms::RW;
    }

    #[test]
    fn idle_vsyncs_cost_little() {
        let mut kernel = Kernel::new();
        let cfg = DisplayConfig::wvga().scaled(8);
        let wk = kernel.well_known();
        let fb = kernel.shm_create(wk.fb0, cfg.fb_bytes());
        let store = SurfaceStore::new();
        let ss = kernel.spawn_process("system_server");
        let sf_lib = kernel.intern_region("libsurfaceflinger.so");
        let flinger = SurfaceFlinger::new(cfg, store, fb);
        let frames = flinger.frame_counter();
        kernel.spawn_thread_in(ss, "SurfaceFlinger", sf_lib, Box::new(flinger));
        kernel.run_until(VSYNC_PERIOD * 20);
        assert_eq!(frames.get(), 0);
        let s = kernel.tracer().summarize("t");
        // No fb0 traffic when nothing is dirty.
        assert!(!s.data_by_region.contains_key("fb0 (frame buffer)"));
    }

    #[test]
    fn display_config_scaling() {
        let cfg = DisplayConfig::wvga();
        assert_eq!(cfg.fb_bytes(), 480 * 800 * 2);
        let s = cfg.scaled(4);
        assert_eq!((s.width, s.height), (120, 200));
        let tiny = cfg.scaled(1000);
        assert!(tiny.width >= 16 && tiny.height >= 16);
    }
}
