//! The Skia-model canvas: real pixel operations with blitter charging.

use crate::bitmap::{Bitmap, Rect};
use agave_kernel::{Ctx, RefKind};

/// Instruction fetches charged to `mspace` per pixel touched — the
/// generated blitter's inner loop.
const BLITTER_FETCH_PER_PIXEL_NUM: u64 = 1;
const BLITTER_FETCH_PER_PIXEL_DEN: u64 = 2;
/// Fixed `libskia.so` overhead per draw call.
const SKIA_CALL_OVERHEAD: u64 = 300;

/// A drawing surface bound to a [`Bitmap`], charging Skia-model costs.
///
/// On Gingerbread, Skia raster state and generated blitters live in a
/// dlmalloc *mspace*; the canvas therefore charges its per-pixel inner
/// loops as instruction fetches from the `mspace` region and its outer
/// loops to `libskia.so`, while pixel data traffic lands on `mspace` too
/// (the scratch raster target) until the frame is posted to a gralloc
/// buffer.
///
/// All operations mutate the underlying bitmap for real — tests checksum
/// the result.
#[derive(Debug)]
pub struct Canvas {
    bitmap: Bitmap,
}

impl Canvas {
    /// Creates a canvas over a fresh bitmap.
    pub fn new(bitmap: Bitmap) -> Self {
        Canvas { bitmap }
    }

    /// The backing bitmap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Consumes the canvas, returning the bitmap.
    pub fn into_bitmap(self) -> Bitmap {
        self.bitmap
    }

    fn charge_blit(&self, cx: &mut Ctx<'_>, pixels: u64, reads: bool) {
        let wk = cx.well_known();
        cx.call_lib(wk.libskia, SKIA_CALL_OVERHEAD + pixels / 6);
        // Generated blitter inner loop executes from mspace.
        cx.charge(
            wk.mspace,
            RefKind::InstrFetch,
            pixels * BLITTER_FETCH_PER_PIXEL_NUM / BLITTER_FETCH_PER_PIXEL_DEN,
        );
        let bpp = self.bitmap.format().bytes_per_pixel() as u64;
        let words = (pixels * bpp).div_ceil(4);
        if reads {
            cx.charge(wk.mspace, RefKind::DataRead, words);
        }
        cx.charge(wk.mspace, RefKind::DataWrite, words);
    }

    /// Fills `rect` with `color`.
    pub fn fill_rect(&mut self, cx: &mut Ctx<'_>, rect: Rect, color: u32) {
        let clipped = rect.intersect(&self.bitmap.bounds());
        self.charge_blit(cx, clipped.area(), false);
        self.bitmap.fill_rect(rect, color);
    }

    /// Clears the whole canvas to `color`.
    pub fn clear(&mut self, cx: &mut Ctx<'_>, color: u32) {
        self.fill_rect(cx, self.bitmap.bounds(), color);
    }

    /// Blits `src_rect` of `src` to `(x, y)` (a `drawBitmap`).
    pub fn draw_bitmap(&mut self, cx: &mut Ctx<'_>, src: &Bitmap, src_rect: Rect, x: u32, y: u32) {
        let clipped = src_rect.intersect(&src.bounds());
        self.charge_blit(cx, clipped.area(), true);
        self.bitmap.blit(src, src_rect, x, y);
    }

    /// Draws `text` at `(x, y)`: glyph rasterization reads the font file
    /// and blits per-glyph coverage.
    ///
    /// Glyphs are modeled as 8×12 blocks keyed to each character, so the
    /// output is deterministic (if crude) and the charges are
    /// text-proportional.
    pub fn draw_text(&mut self, cx: &mut Ctx<'_>, text: &str, x: u32, y: u32, color: u32) {
        const GLYPH_W: u32 = 8;
        const GLYPH_H: u32 = 12;
        let wk = cx.well_known();
        let fonts = [
            "/system/fonts/DroidSans.ttf",
            "/system/fonts/DroidSans-Bold.ttf",
            "/system/fonts/DroidSerif-Regular.ttf",
        ];
        let font_region = cx.intern_region(fonts[text.len() % fonts.len()]);
        // Glyph lookup + hinting reads the mapped font.
        cx.charge(font_region, RefKind::DataRead, 24 * text.len() as u64);
        cx.call_lib(wk.libskia, 300 + 80 * text.len() as u64);
        let pixels = u64::from(GLYPH_W * GLYPH_H) * text.len() as u64;
        self.charge_blit(cx, pixels / 2, true); // ~50% coverage
        let mut cursor_x = x;
        for ch in text.bytes() {
            // A deterministic per-character pattern: vertical bar whose
            // height tracks the byte value.
            let h = GLYPH_H.min(2 + u32::from(ch) % GLYPH_H);
            self.bitmap
                .fill_rect(Rect::new(cursor_x, y, GLYPH_W - 2, h), color);
            cursor_x += GLYPH_W;
            if cursor_x + GLYPH_W > self.bitmap.width() {
                break;
            }
        }
    }

    /// Draws a horizontal gradient — a stand-in for shader-based fills
    /// (game backgrounds, map tiles).
    pub fn draw_gradient(&mut self, cx: &mut Ctx<'_>, rect: Rect, from: u32, to: u32) {
        let clipped = rect.intersect(&self.bitmap.bounds());
        // Shaders are costlier per pixel than solid fills.
        self.charge_blit(cx, clipped.area() * 2, false);
        if clipped.w == 0 {
            return;
        }
        for i in 0..clipped.w {
            let t = i as f32 / clipped.w as f32;
            let color = lerp_color(from, to, t);
            self.bitmap
                .fill_rect(Rect::new(clipped.x + i, clipped.y, 1, clipped.h), color);
        }
    }
}

fn lerp_color(a: u32, b: u32, t: f32) -> u32 {
    let la = a & 0xff;
    let lb = b & 0xff;
    let l = la as f32 + (lb as f32 - la as f32) * t;
    (a & !0xff) | (l as u32 & 0xff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::PixelFormat;
    use agave_kernel::{Actor, Kernel, Message};

    fn with_ctx(f: impl FnOnce(&mut Ctx<'_>) + 'static) -> agave_trace::RunSummary {
        struct Runner<F>(Option<F>);
        impl<F: FnOnce(&mut Ctx<'_>) + 'static> Actor for Runner<F> {
            fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
                (self.0.take().unwrap())(cx);
            }
        }
        let mut kernel = Kernel::new();
        let pid = kernel.spawn_process("gfx-test");
        let tid = kernel.spawn_thread(pid, "main", Box::new(Runner(Some(f))));
        kernel.send(tid, Message::new(0));
        kernel.run_to_idle();
        kernel.tracer().summarize("gfx")
    }

    #[test]
    fn fill_charges_mspace_fetches_and_writes() {
        let s = with_ctx(|cx| {
            let mut c = Canvas::new(Bitmap::new(64, 64, PixelFormat::Rgb565));
            c.clear(cx, 0x07e0);
            assert_eq!(c.bitmap().pixel(63, 63), 0x07e0);
        });
        // 4096 pixels → ≥2048 mspace fetches and 2048 word writes.
        assert!(s.instr_by_region["mspace"] >= 2048);
        assert!(s.data_by_region["mspace"] >= 2048);
        assert!(s.instr_by_region["libskia.so"] >= SKIA_CALL_OVERHEAD);
    }

    #[test]
    fn draw_text_reads_font_file() {
        let s = with_ctx(|cx| {
            let mut c = Canvas::new(Bitmap::new(128, 32, PixelFormat::Rgb565));
            c.draw_text(cx, "hello world", 2, 2, 0xffff);
            // Text actually changed pixels.
            assert_ne!(
                c.bitmap().checksum(),
                Bitmap::new(128, 32, PixelFormat::Rgb565).checksum()
            );
        });
        // "hello world" is 11 chars → the serif face is selected.
        assert!(s.data_by_region["/system/fonts/DroidSerif-Regular.ttf"] >= 24 * 11);
    }

    #[test]
    fn gradient_varies_horizontally() {
        let s = with_ctx(|cx| {
            let mut c = Canvas::new(Bitmap::new(32, 8, PixelFormat::Argb8888));
            c.draw_gradient(cx, c.bitmap().bounds(), 0xff000000, 0xff0000ff);
            let left = c.bitmap().pixel(0, 0);
            let right = c.bitmap().pixel(31, 0);
            assert_ne!(left, right);
        });
        assert!(s.instr_by_region["mspace"] > 0);
    }

    #[test]
    fn draw_bitmap_blits_real_pixels() {
        with_ctx(|cx| {
            let mut sprite = Bitmap::new(8, 8, PixelFormat::Rgb565);
            sprite.fill_rect(Rect::new(0, 0, 8, 8), 0x1111);
            let mut c = Canvas::new(Bitmap::new(32, 32, PixelFormat::Rgb565));
            c.draw_bitmap(cx, &sprite, sprite.bounds(), 10, 10);
            assert_eq!(c.bitmap().pixel(10, 10), 0x1111);
            assert_eq!(c.bitmap().pixel(17, 17), 0x1111);
            assert_eq!(c.bitmap().pixel(9, 9), 0);
        });
    }
}
