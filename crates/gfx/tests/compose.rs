//! Composition-path integration tests: overlay vs GL, z-order, stacking.

use agave_gfx::{
    Bitmap, DisplayConfig, PixelFormat, Rect, SurfaceFlinger, SurfaceStore, MSG_STOP, VSYNC_PERIOD,
};
use agave_kernel::{Actor, Ctx, Kernel, Message, ShmId};

/// Boots a flinger + one posting app; returns (kernel, fb, frames counter).
fn world(overlay: bool, color: u16) -> (Kernel, ShmId, std::rc::Rc<std::cell::Cell<u64>>) {
    let mut kernel = Kernel::new();
    let cfg = DisplayConfig::wvga().scaled(8);
    let wk = kernel.well_known();
    let fb = kernel.shm_create(wk.fb0, cfg.fb_bytes());
    let store = SurfaceStore::new();
    let ss = kernel.spawn_process("system_server");
    let sf_lib = kernel.intern_region("libsurfaceflinger.so");
    let flinger = SurfaceFlinger::new(cfg, store.clone(), fb);
    let frames = flinger.frame_counter();
    kernel.spawn_thread_in(ss, "SurfaceFlinger", sf_lib, Box::new(flinger));

    struct App {
        store: SurfaceStore,
        overlay: bool,
        color: u16,
        cfg: DisplayConfig,
    }
    impl Actor for App {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            let h = self.store.create_surface(
                cx,
                "app",
                0,
                0,
                self.cfg.width,
                self.cfg.height,
                PixelFormat::Rgb565,
            );
            h.set_overlay(self.overlay);
            let mut frame = Bitmap::new(h.width(), h.height(), PixelFormat::Rgb565);
            frame.fill_rect(
                Rect::new(0, 0, h.width(), h.height()),
                u32::from(self.color),
            );
            h.post_buffer(cx, &frame);
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }
    let app = kernel.spawn_process("benchmark");
    kernel.spawn_thread(
        app,
        "main",
        Box::new(App {
            store,
            overlay,
            color,
            cfg,
        }),
    );
    (kernel, fb, frames)
}

#[test]
fn overlay_path_reaches_fb0_without_pixelflinger() {
    let (mut kernel, fb, frames) = world(true, 0x1234);
    kernel.run_until(VSYNC_PERIOD * 4);
    assert!(frames.get() >= 1);
    let bytes = kernel.shm_bytes(fb);
    assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), 0x1234);
    let s = kernel.tracer().summarize("overlay");
    // No per-pixel GL work for overlay layers.
    assert!(!s.instr_by_region.contains_key("libpixelflinger.so"));
    // And much less mspace instruction traffic than the GL path.
    let (mut gl_kernel, _, _) = { world(false, 0x1234) };
    gl_kernel.run_until(VSYNC_PERIOD * 4);
    let gl = gl_kernel.tracer().summarize("gl");
    let overlay_mspace = s.instr_by_region.get("mspace").copied().unwrap_or(0);
    let gl_mspace = gl.instr_by_region.get("mspace").copied().unwrap_or(0);
    assert!(
        gl_mspace > overlay_mspace * 3,
        "gl {gl_mspace} vs overlay {overlay_mspace}"
    );
}

#[test]
fn gl_path_reaches_fb0_with_pixelflinger() {
    let (mut kernel, fb, _) = world(false, 0xbeef);
    kernel.run_until(VSYNC_PERIOD * 4);
    let bytes = kernel.shm_bytes(fb);
    assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), 0xbeef);
    let s = kernel.tracer().summarize("gl");
    assert!(s.instr_by_region.contains_key("libpixelflinger.so"));
}

#[test]
fn later_layers_stack_on_top() {
    let mut kernel = Kernel::new();
    let cfg = DisplayConfig::wvga().scaled(8);
    let wk = kernel.well_known();
    let fb = kernel.shm_create(wk.fb0, cfg.fb_bytes());
    let store = SurfaceStore::new();
    let ss = kernel.spawn_process("system_server");
    let sf_lib = kernel.intern_region("libsurfaceflinger.so");
    let flinger = SurfaceFlinger::new(cfg, store.clone(), fb);
    kernel.spawn_thread_in(ss, "SurfaceFlinger", sf_lib, Box::new(flinger));

    struct TwoWindows {
        store: SurfaceStore,
        cfg: DisplayConfig,
    }
    impl Actor for TwoWindows {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            // Full-screen background…
            let bg = self.store.create_surface(
                cx,
                "bg",
                0,
                0,
                self.cfg.width,
                self.cfg.height,
                PixelFormat::Rgb565,
            );
            let mut frame = Bitmap::new(bg.width(), bg.height(), PixelFormat::Rgb565);
            frame.fill_rect(Rect::new(0, 0, bg.width(), bg.height()), 0x000f);
            bg.post_buffer(cx, &frame);
            // …and a small status strip on top at the origin.
            let strip = self.store.create_surface(
                cx,
                "strip",
                0,
                0,
                self.cfg.width,
                4,
                PixelFormat::Rgb565,
            );
            let mut bar = Bitmap::new(strip.width(), 4, PixelFormat::Rgb565);
            bar.fill_rect(Rect::new(0, 0, strip.width(), 4), 0xfff0);
            strip.post_buffer(cx, &bar);
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }
    let app = kernel.spawn_process("benchmark");
    kernel.spawn_thread(app, "main", Box::new(TwoWindows { store, cfg }));
    kernel.run_until(VSYNC_PERIOD * 4);
    let bytes = kernel.shm_bytes(fb);
    // Top-left pixel belongs to the strip (composed after the background).
    assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), 0xfff0);
    // A pixel well below the strip shows the background.
    let row = 10 * cfg.width as usize * 2;
    assert_eq!(u16::from_le_bytes([bytes[row], bytes[row + 1]]), 0x000f);
}

#[test]
fn stop_message_ends_vsync_rearming() {
    let (mut kernel, _, frames) = world(false, 1);
    kernel.run_until(VSYNC_PERIOD * 3);
    let composed = frames.get();
    assert!(composed >= 1);
    // Broadcast MSG_STOP to every thread; only the flinger reacts.
    for i in 0..kernel.thread_count() {
        let tid = agave_kernel::Tid::from_raw(i as u32);
        if kernel.thread(tid).is_alive() {
            kernel.send(tid, Message::new(MSG_STOP));
        }
    }
    kernel.run_to_idle(); // would hang if vsync kept re-arming
}
