//! Varint, zigzag-delta, and record-level coding for `.agtrace` chunks.
//!
//! Records are [`agave_trace::Reference`] blocks. Three observations
//! shape the encoding:
//!
//! 1. Consecutive blocks usually share the same `(pid, tid, region)` key
//!    — charging sites issue runs of blocks for one thread in one
//!    region — so the key is written only when it changes (one flag
//!    bit).
//! 2. Addresses are locally sequential: a block very often starts
//!    exactly where the previous one ended (synthetic cyclic windows,
//!    buffer walks). That case costs one flag bit; everything else is a
//!    zigzag varint of the *wrapping* delta from the previous address,
//!    which round-trips every `u64` including the boundaries.
//! 3. Word counts are small and repeat; plain varints do well.
//!
//! The coder state resets at every chunk boundary so chunks decode
//! independently (corruption stays contained; see [`crate::format`]).

use agave_trace::{NameId, Pid, RefKind, Reference, Tid};

/// Bits 0–1 of a record's header byte: [`RefKind::index`].
const KIND_MASK: u8 = 0b0000_0011;
/// Header flag: the record reuses the previous `(pid, tid, region)` key.
const F_SAME_KEY: u8 = 0b0000_0100;
/// Header flag: `addr` continues exactly at the previous block's end.
const F_CONT_ADDR: u8 = 0b0000_1000;
/// Header flag: `words == 1`, so no word-count varint follows.
const F_ONE_WORD: u8 = 0b0001_0000;

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit =
/// continuation). At most 10 bytes.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` on truncation or a varint longer than
/// 10 bytes (no valid `u64` needs more).
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only carry the final bit of a u64.
        if shift == 9 && byte > 0x01 {
            return None;
        }
        v |= payload << (7 * shift);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Maps a signed delta to an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The per-chunk checksum: an FNV-style multiply-mix absorbed in
/// 8-byte lanes (a byte-serial FNV-1a costs a dependent multiply per
/// byte and shows up at the top of the replay profile).
///
/// An internal buffer makes the digest independent of how `update` calls
/// split the message; the total length is mixed into [`Checksum::finish`]
/// so truncation by whole lanes of zeros still changes the digest.
///
/// Not cryptographic: the threat model is bit rot, truncation, and
/// tooling bugs, not an adversary forging traces.
#[derive(Debug, Clone, Copy)]
pub struct Checksum {
    state: u64,
    buf: [u8; 8],
    buffered: usize,
    len: u64,
}

impl Checksum {
    /// A fresh digest (FNV offset-basis seed).
    pub fn new() -> Self {
        Checksum {
            state: 0xcbf2_9ce4_8422_2325,
            buf: [0u8; 8],
            buffered: 0,
            len: 0,
        }
    }

    fn absorb(&mut self, lane: u64) {
        self.state = (self.state ^ lane)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(23);
    }

    /// Absorbs `bytes` into the running hash.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.buffered > 0 {
            let take = bytes.len().min(8 - self.buffered);
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered == 8 {
                self.absorb(u64::from_le_bytes(self.buf));
                self.buffered = 0;
            }
            // Either the buffer drained into a lane or `bytes` ran dry.
            if bytes.is_empty() {
                return;
            }
        }
        let mut lanes = bytes.chunks_exact(8);
        for lane in &mut lanes {
            self.absorb(u64::from_le_bytes(lane.try_into().unwrap()));
        }
        let tail = lanes.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        let mut tail = [0u8; 8];
        tail[..self.buffered].copy_from_slice(&self.buf[..self.buffered]);
        let mut state = self.state ^ u64::from_le_bytes(tail) ^ self.len;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
        state ^ (state >> 31)
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

/// The delta-coder state shared (symmetrically) by encoder and decoder.
///
/// Address prediction is **per stream**: each `(pid, tid, region)` key
/// keeps its own last address and expected continuation point, because
/// the tracer interleaves many locally-sequential streams (one per
/// thread per region). Predicting against the previous record globally
/// would pay a full cross-region delta at nearly every key switch;
/// predicting per stream makes a key switch back into a known stream
/// cost one flag bit.
///
/// Reset at every chunk boundary so chunks decode independently.
///
/// Performance: the current key's prediction lives inline, so the
/// (majority) `F_SAME_KEY` records never touch the map; key switches pay
/// one store + one lookup in a [`KeyHasher`]-backed table. This is what
/// keeps summary replay faster than a live run.
#[derive(Debug, Clone, Default)]
pub struct CoderState {
    pid: u32,
    tid: u32,
    region: u32,
    /// Prediction for the *current* key: last address and expected
    /// continuation point.
    addr: u64,
    end: u64,
    /// Parked predictions for every other key seen this chunk.
    streams: StreamMap,
}

type StreamMap = std::collections::HashMap<
    (u32, u32, u32),
    (u64, u64),
    std::hash::BuildHasherDefault<KeyHasher>,
>;

/// Multiply-mix hasher for the small-integer stream keys. The default
/// SipHash dominates the decode profile; stream keys are not
/// attacker-chosen (a hostile trace can at worst slow itself down), so a
/// two-instruction mix per `u32` is the right trade.
#[derive(Debug, Default)]
pub struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0.rotate_left(24) ^ u64::from(v)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 29)
    }
}

impl CoderState {
    /// Fresh state, as at the start of a chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the current key's prediction and loads (or initializes) the
    /// prediction for `(pid, tid, region)`.
    fn switch_key(&mut self, pid: u32, tid: u32, region: u32) {
        self.streams
            .insert((self.pid, self.tid, self.region), (self.addr, self.end));
        let (addr, end) = self
            .streams
            .get(&(pid, tid, region))
            .copied()
            .unwrap_or((0, 0));
        self.pid = pid;
        self.tid = tid;
        self.region = region;
        self.addr = addr;
        self.end = end;
    }

    /// Appends one record to `out`.
    pub fn encode(&mut self, r: &Reference, out: &mut Vec<u8>) {
        let pid = r.pid.as_u32();
        let tid = r.tid.as_u32();
        let region = r.region.index() as u32;
        let same_key = pid == self.pid && tid == self.tid && region == self.region;
        if !same_key {
            self.switch_key(pid, tid, region);
        }
        let mut header = r.kind.index() as u8;
        if same_key {
            header |= F_SAME_KEY;
        }
        if r.addr == self.end {
            header |= F_CONT_ADDR;
        }
        if r.words == 1 {
            header |= F_ONE_WORD;
        }
        out.push(header);
        if !same_key {
            put_varint(out, u64::from(pid));
            put_varint(out, u64::from(tid));
            put_varint(out, u64::from(region));
        }
        if header & F_CONT_ADDR == 0 {
            put_varint(out, zigzag(r.addr.wrapping_sub(self.addr) as i64));
        }
        if header & F_ONE_WORD == 0 {
            put_varint(out, r.words);
        }
        self.addr = r.addr;
        self.end = r.addr.wrapping_add(r.words.wrapping_mul(4));
    }

    /// Decodes one record from `buf` at `*pos`, advancing `*pos`.
    /// Returns `None` on a truncated or malformed record.
    pub fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Option<Reference> {
        let header = *buf.get(*pos)?;
        *pos += 1;
        let kind = match header & KIND_MASK {
            0 => RefKind::InstrFetch,
            1 => RefKind::DataRead,
            2 => RefKind::DataWrite,
            _ => return None,
        };
        if header & F_SAME_KEY == 0 {
            let pid = u32::try_from(get_varint(buf, pos)?).ok()?;
            let tid = u32::try_from(get_varint(buf, pos)?).ok()?;
            let region = u32::try_from(get_varint(buf, pos)?).ok()?;
            self.switch_key(pid, tid, region);
        }
        let addr = if header & F_CONT_ADDR == 0 {
            self.addr
                .wrapping_add(unzigzag(get_varint(buf, pos)?) as u64)
        } else {
            self.end
        };
        let words = if header & F_ONE_WORD == 0 {
            get_varint(buf, pos)?
        } else {
            1
        };
        self.addr = addr;
        self.end = addr.wrapping_add(words.wrapping_mul(4));
        Some(Reference {
            pid: Pid::from_raw(self.pid),
            tid: Tid::from_raw(self.tid),
            region: NameId::from_raw(self.region),
            kind,
            addr,
            words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let mut buf = Vec::new();
        let values = [0, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        assert_eq!(get_varint(&[], &mut 0), None);
        assert_eq!(get_varint(&[0x80], &mut 0), None);
        // 11 continuation bytes can never be a valid u64.
        let overlong = [0x80u8; 10];
        assert_eq!(get_varint(&overlong, &mut 0), None);
        // A 10th byte with payload beyond bit 63 overflows.
        let mut too_big = vec![0x80u8; 9];
        too_big.push(0x02);
        assert_eq!(get_varint(&too_big, &mut 0), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = Checksum::new();
        a.update(b"ab");
        let mut b = Checksum::new();
        b.update(b"ba");
        assert_ne!(a.finish(), b.finish());
        let mut c = Checksum::new();
        c.update(b"a");
        c.update(b"b");
        assert_eq!(a.finish(), c.finish(), "chunked updates must match");
    }

    #[test]
    fn record_coding_round_trips_a_small_stream() {
        let refs = [
            Reference {
                pid: Pid::from_raw(1),
                tid: Tid::from_raw(2),
                region: NameId::from_raw(3),
                kind: RefKind::InstrFetch,
                addr: 0x1_0000,
                words: 16,
            },
            // Continuation: same key, addr continues at the end.
            Reference {
                pid: Pid::from_raw(1),
                tid: Tid::from_raw(2),
                region: NameId::from_raw(3),
                kind: RefKind::InstrFetch,
                addr: 0x1_0040,
                words: 1,
            },
            // Key change with a boundary address.
            Reference {
                pid: Pid::from_raw(0),
                tid: Tid::from_raw(9),
                region: NameId::from_raw(0),
                kind: RefKind::DataWrite,
                addr: u64::MAX,
                words: 3,
            },
        ];
        let mut out = Vec::new();
        let mut enc = CoderState::new();
        for r in &refs {
            enc.encode(r, &mut out);
        }
        // The continuation record is a single header byte.
        let mut dec = CoderState::new();
        let mut pos = 0;
        for r in &refs {
            assert_eq!(dec.decode(&out, &mut pos).as_ref(), Some(r));
        }
        assert_eq!(pos, out.len());
    }
}
