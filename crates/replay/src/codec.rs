//! Varint, zigzag-delta, and record-level coding for `.agtrace` chunks.
//!
//! Records are [`agave_trace::Reference`] blocks. Three observations
//! shape the encoding:
//!
//! 1. Consecutive blocks usually share the same `(pid, tid, region)` key
//!    — charging sites issue runs of blocks for one thread in one
//!    region — so the key is written only when it changes (one flag
//!    bit).
//! 2. Addresses are locally sequential: a block very often starts
//!    exactly where the previous one ended (synthetic cyclic windows,
//!    buffer walks). That case costs one flag bit; everything else is a
//!    zigzag varint of the *wrapping* delta from the previous address,
//!    which round-trips every `u64` including the boundaries.
//! 3. Word counts are small and repeat; plain varints do well.
//!
//! The coder state resets at every chunk boundary so chunks decode
//! independently (corruption stays contained; see [`crate::format`]).

use agave_trace::{NameId, Pid, RefKind, Reference, Tid};

/// Bits 0–1 of a record's header byte: [`RefKind::index`].
const KIND_MASK: u8 = 0b0000_0011;
/// Header flag: the record reuses the previous `(pid, tid, region)` key.
const F_SAME_KEY: u8 = 0b0000_0100;
/// Header flag: `addr` continues exactly at the previous block's end.
const F_CONT_ADDR: u8 = 0b0000_1000;
/// Header flag: `words == 1`, so no word-count varint follows.
const F_ONE_WORD: u8 = 0b0001_0000;

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit =
/// continuation). At most 10 bytes.
///
/// The single-byte case (the overwhelming majority of field values in a
/// real stream: small deltas, small word counts, small ids) is one
/// capacity check and one store; longer values are assembled in a stack
/// buffer and appended with one `extend_from_slice` instead of a
/// capacity check per byte.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            n += 1;
            break;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
    out.extend_from_slice(&buf[..n]);
}

/// Reads one LEB128 varint like [`get_varint`], but requires the caller
/// to guarantee `*pos + 10 <= buf.len()`. The guarantee is hoisted into
/// one fixed-size array view so the unrolled byte reads compile without
/// per-byte bounds checks, and the (dominant) single-byte case is one
/// load and one test.
///
/// Accepts and rejects exactly the same byte strings as [`get_varint`];
/// the property tests in `tests/prop.rs` pin the two against each other.
#[inline(always)]
fn fast_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    let w: &[u8; 10] = buf[p..p + 10].try_into().expect("caller hoisted bounds");
    let b0 = w[0];
    if b0 & 0x80 == 0 {
        *pos = p + 1;
        return Some(u64::from(b0));
    }
    let mut v = u64::from(b0 & 0x7f);
    macro_rules! continuation_byte {
        ($k:literal) => {{
            let b = w[$k];
            v |= u64::from(b & 0x7f) << (7 * $k);
            if b & 0x80 == 0 {
                *pos = p + $k + 1;
                return Some(v);
            }
        }};
    }
    continuation_byte!(1);
    continuation_byte!(2);
    continuation_byte!(3);
    continuation_byte!(4);
    continuation_byte!(5);
    continuation_byte!(6);
    continuation_byte!(7);
    continuation_byte!(8);
    // The 10th byte may only carry the final bit of a u64, and a valid
    // varint never has a continuation bit here.
    let b = w[9];
    if b > 0x01 {
        return None;
    }
    v |= u64::from(b) << 63;
    *pos = p + 10;
    Some(v)
}

/// Reads one LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` on truncation or a varint longer than
/// 10 bytes (no valid `u64` needs more).
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only carry the final bit of a u64.
        if shift == 9 && byte > 0x01 {
            return None;
        }
        v |= payload << (7 * shift);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Maps a signed delta to an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The per-chunk checksum: an FNV-style multiply-mix absorbed in
/// 8-byte lanes (a byte-serial FNV-1a costs a dependent multiply per
/// byte and shows up at the top of the replay profile).
///
/// An internal buffer makes the digest independent of how `update` calls
/// split the message; the total length is mixed into [`Checksum::finish`]
/// so truncation by whole lanes of zeros still changes the digest.
///
/// Not cryptographic: the threat model is bit rot, truncation, and
/// tooling bugs, not an adversary forging traces.
#[derive(Debug, Clone, Copy)]
pub struct Checksum {
    state: u64,
    buf: [u8; 8],
    buffered: usize,
    len: u64,
}

impl Checksum {
    /// A fresh digest (FNV offset-basis seed).
    pub fn new() -> Self {
        Checksum {
            state: 0xcbf2_9ce4_8422_2325,
            buf: [0u8; 8],
            buffered: 0,
            len: 0,
        }
    }

    fn absorb(&mut self, lane: u64) {
        self.state = (self.state ^ lane)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(23);
    }

    /// Absorbs `bytes` into the running hash.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.buffered > 0 {
            let take = bytes.len().min(8 - self.buffered);
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered == 8 {
                self.absorb(u64::from_le_bytes(self.buf));
                self.buffered = 0;
            }
            // Either the buffer drained into a lane or `bytes` ran dry.
            if bytes.is_empty() {
                return;
            }
        }
        let mut lanes = bytes.chunks_exact(8);
        for lane in &mut lanes {
            self.absorb(u64::from_le_bytes(lane.try_into().unwrap()));
        }
        let tail = lanes.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        let mut tail = [0u8; 8];
        tail[..self.buffered].copy_from_slice(&self.buf[..self.buffered]);
        let mut state = self.state ^ u64::from_le_bytes(tail) ^ self.len;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
        state ^ (state >> 31)
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

/// The delta-coder state shared (symmetrically) by encoder and decoder.
///
/// Address prediction is **per stream**: each `(pid, tid, region)` key
/// keeps its own last address and expected continuation point, because
/// the tracer interleaves many locally-sequential streams (one per
/// thread per region). Predicting against the previous record globally
/// would pay a full cross-region delta at nearly every key switch;
/// predicting per stream makes a key switch back into a known stream
/// cost one flag bit.
///
/// Reset at every chunk boundary so chunks decode independently.
///
/// Performance: the current key's prediction lives inline, so the
/// (majority) `F_SAME_KEY` records never touch the map; key switches pay
/// one store + one lookup in a [`KeyHasher`]-backed table. This is what
/// keeps summary replay faster than a live run.
#[derive(Debug, Clone, Default)]
pub struct CoderState {
    pid: u32,
    tid: u32,
    region: u32,
    /// Prediction for the *current* key: last address and expected
    /// continuation point.
    addr: u64,
    end: u64,
    /// Parked predictions for every other key seen this chunk.
    streams: StreamMap,
}

type StreamMap = std::collections::HashMap<
    (u32, u32, u32),
    (u64, u64),
    std::hash::BuildHasherDefault<KeyHasher>,
>;

/// Multiply-mix hasher for the small-integer stream keys. The default
/// SipHash dominates the decode profile; stream keys are not
/// attacker-chosen (a hostile trace can at worst slow itself down), so a
/// two-instruction mix per `u32` is the right trade.
#[derive(Debug, Default)]
pub struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0.rotate_left(24) ^ u64::from(v)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 29)
    }
}

impl CoderState {
    /// Fresh state, as at the start of a chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the current key's prediction and loads (or initializes) the
    /// prediction for `(pid, tid, region)`.
    fn switch_key(&mut self, pid: u32, tid: u32, region: u32) {
        self.streams
            .insert((self.pid, self.tid, self.region), (self.addr, self.end));
        let (addr, end) = self
            .streams
            .get(&(pid, tid, region))
            .copied()
            .unwrap_or((0, 0));
        self.pid = pid;
        self.tid = tid;
        self.region = region;
        self.addr = addr;
        self.end = end;
    }

    /// Appends one record to `out`.
    pub fn encode(&mut self, r: &Reference, out: &mut Vec<u8>) {
        let pid = r.pid.as_u32();
        let tid = r.tid.as_u32();
        let region = r.region.index() as u32;
        let same_key = pid == self.pid && tid == self.tid && region == self.region;
        if !same_key {
            self.switch_key(pid, tid, region);
        }
        let mut header = r.kind.index() as u8;
        if same_key {
            header |= F_SAME_KEY;
        }
        if r.addr == self.end {
            header |= F_CONT_ADDR;
        }
        if r.words == 1 {
            header |= F_ONE_WORD;
        }
        out.push(header);
        if !same_key {
            put_varint(out, u64::from(pid));
            put_varint(out, u64::from(tid));
            put_varint(out, u64::from(region));
        }
        if header & F_CONT_ADDR == 0 {
            put_varint(out, zigzag(r.addr.wrapping_sub(self.addr) as i64));
        }
        if header & F_ONE_WORD == 0 {
            put_varint(out, r.words);
        }
        self.addr = r.addr;
        self.end = r.addr.wrapping_add(r.words.wrapping_mul(4));
    }

    /// Decodes one record from `buf` at `*pos`, advancing `*pos`.
    /// Returns `None` on a truncated or malformed record.
    pub fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Option<Reference> {
        let header = *buf.get(*pos)?;
        *pos += 1;
        let kind = match header & KIND_MASK {
            0 => RefKind::InstrFetch,
            1 => RefKind::DataRead,
            2 => RefKind::DataWrite,
            _ => return None,
        };
        if header & F_SAME_KEY == 0 {
            let pid = u32::try_from(get_varint(buf, pos)?).ok()?;
            let tid = u32::try_from(get_varint(buf, pos)?).ok()?;
            let region = u32::try_from(get_varint(buf, pos)?).ok()?;
            self.switch_key(pid, tid, region);
        }
        let addr = if header & F_CONT_ADDR == 0 {
            self.addr
                .wrapping_add(unzigzag(get_varint(buf, pos)?) as u64)
        } else {
            self.end
        };
        let words = if header & F_ONE_WORD == 0 {
            get_varint(buf, pos)?
        } else {
            1
        };
        self.addr = addr;
        self.end = addr.wrapping_add(words.wrapping_mul(4));
        Some(Reference {
            pid: Pid::from_raw(self.pid),
            tid: Tid::from_raw(self.tid),
            region: NameId::from_raw(self.region),
            kind,
            addr,
            words,
        })
    }

    /// [`CoderState::decode`] with the flag tests replaced by one table
    /// load and the varint reads unrolled. The caller must guarantee at
    /// least [`MAX_RECORD_BYTES`] bytes remain at `*pos`; near the end
    /// of a chunk the scalar path takes over.
    #[inline(always)]
    fn decode_fast(&mut self, buf: &[u8], pos: &mut usize) -> Option<Reference> {
        let header = buf[*pos];
        *pos += 1;
        let op = HEADER_OPS[usize::from(header & HEADER_OP_MASK)];
        let kind = op.kind?;
        if !op.same_key {
            let pid = u32::try_from(fast_varint(buf, pos)?).ok()?;
            let tid = u32::try_from(fast_varint(buf, pos)?).ok()?;
            let region = u32::try_from(fast_varint(buf, pos)?).ok()?;
            self.switch_key(pid, tid, region);
        }
        let addr = if op.cont_addr {
            self.end
        } else {
            self.addr
                .wrapping_add(unzigzag(fast_varint(buf, pos)?) as u64)
        };
        let words = if op.one_word {
            1
        } else {
            fast_varint(buf, pos)?
        };
        self.addr = addr;
        self.end = addr.wrapping_add(words.wrapping_mul(4));
        Some(Reference {
            pid: Pid::from_raw(self.pid),
            tid: Tid::from_raw(self.tid),
            region: NameId::from_raw(self.region),
            kind,
            addr,
            words,
        })
    }
}

/// Worst-case encoded size of one record: a header byte plus five
/// varints (pid, tid, region, addr delta, words), each at most 10 bytes
/// *as read* — the id varints reject values above `u32::MAX` only after
/// the bytes are consumed, so a malformed stream can legally present ten
/// bytes per field. When at least this much input remains, the fast
/// decoder can skip every per-byte bounds check.
const MAX_RECORD_BYTES: usize = 1 + 5 * 10;

/// Decoded form of a record header byte: the kind (`None` for the
/// reserved kind pattern `0b11`) and the three flags, precomputed for
/// all 32 meaningful bit patterns so the hot loop dispatches with a
/// single table load instead of four tests. Bits 5–7 are ignored, as in
/// the scalar decoder.
#[derive(Clone, Copy)]
struct HeaderOp {
    kind: Option<RefKind>,
    same_key: bool,
    cont_addr: bool,
    one_word: bool,
}

/// The header bits [`HEADER_OPS`] is indexed by: kind plus three flags.
const HEADER_OP_MASK: u8 = KIND_MASK | F_SAME_KEY | F_CONT_ADDR | F_ONE_WORD;

const HEADER_OPS: [HeaderOp; 32] = {
    let mut ops = [HeaderOp {
        kind: None,
        same_key: false,
        cont_addr: false,
        one_word: false,
    }; 32];
    let mut h = 0usize;
    while h < 32 {
        let byte = h as u8;
        ops[h] = HeaderOp {
            kind: match byte & KIND_MASK {
                0 => Some(RefKind::InstrFetch),
                1 => Some(RefKind::DataRead),
                2 => Some(RefKind::DataWrite),
                _ => None,
            },
            same_key: byte & F_SAME_KEY != 0,
            cont_addr: byte & F_CONT_ADDR != 0,
            one_word: byte & F_ONE_WORD != 0,
        };
        h += 1;
    }
    ops
};

/// Per-chunk totals gathered during [`decode_records`], in the same
/// single pass as the decode itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DecodeTotals {
    /// Sum of `words` across the decoded records (wrapping — an
    /// adversarial chunk can encode astronomically large word counts,
    /// and the decoder must stay panic-free; the footer-totals check
    /// still catches any mismatch).
    pub words: u64,
    /// Highest thread id observed (0 when the chunk is empty).
    pub max_tid: u64,
    /// Highest region id observed (0 when the chunk is empty).
    pub max_region: u64,
}

/// Decodes exactly `count` records from `payload` starting at `*pos`,
/// appending them to `out` and advancing `*pos`. Returns `None` on any
/// truncated or malformed record, leaving `out` with whatever prefix
/// decoded cleanly (callers treat the whole chunk as corrupt).
///
/// While [`MAX_RECORD_BYTES`] of input remain the branchless fast path
/// runs; the scalar [`CoderState::decode`] handles the chunk tail. Both
/// paths accept exactly the same byte strings (pinned by the property
/// tests), so the split is invisible to callers.
///
/// The id maxima are recovered from the coder's stream table at the end
/// rather than compared per record: tid/region only change at a key
/// switch, and the table's extra initial `(0, 0, 0)` entry can never
/// raise a maximum.
pub fn decode_records(
    payload: &[u8],
    pos: &mut usize,
    count: u64,
    out: &mut Vec<Reference>,
) -> Option<DecodeTotals> {
    // Every record costs at least one byte, so a valid count never
    // exceeds the remaining payload; this also keeps the reserve sane.
    let remaining = payload.len().saturating_sub(*pos);
    if count > remaining as u64 {
        return None;
    }
    out.reserve(count as usize);
    let mut coder = CoderState::new();
    let mut totals = DecodeTotals::default();
    for _ in 0..count {
        let r = if *pos + MAX_RECORD_BYTES <= payload.len() {
            coder.decode_fast(payload, pos)?
        } else {
            coder.decode(payload, pos)?
        };
        totals.words = totals.words.wrapping_add(r.words);
        out.push(r);
    }
    totals.max_tid = u64::from(coder.tid);
    totals.max_region = u64::from(coder.region);
    for &(_, tid, region) in coder.streams.keys() {
        totals.max_tid = totals.max_tid.max(u64::from(tid));
        totals.max_region = totals.max_region.max(u64::from(region));
    }
    Some(totals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let mut buf = Vec::new();
        let values = [0, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        assert_eq!(get_varint(&[], &mut 0), None);
        assert_eq!(get_varint(&[0x80], &mut 0), None);
        // 11 continuation bytes can never be a valid u64.
        let overlong = [0x80u8; 10];
        assert_eq!(get_varint(&overlong, &mut 0), None);
        // A 10th byte with payload beyond bit 63 overflows.
        let mut too_big = vec![0x80u8; 9];
        too_big.push(0x02);
        assert_eq!(get_varint(&too_big, &mut 0), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = Checksum::new();
        a.update(b"ab");
        let mut b = Checksum::new();
        b.update(b"ba");
        assert_ne!(a.finish(), b.finish());
        let mut c = Checksum::new();
        c.update(b"a");
        c.update(b"b");
        assert_eq!(a.finish(), c.finish(), "chunked updates must match");
    }

    #[test]
    fn record_coding_round_trips_a_small_stream() {
        let refs = [
            Reference {
                pid: Pid::from_raw(1),
                tid: Tid::from_raw(2),
                region: NameId::from_raw(3),
                kind: RefKind::InstrFetch,
                addr: 0x1_0000,
                words: 16,
            },
            // Continuation: same key, addr continues at the end.
            Reference {
                pid: Pid::from_raw(1),
                tid: Tid::from_raw(2),
                region: NameId::from_raw(3),
                kind: RefKind::InstrFetch,
                addr: 0x1_0040,
                words: 1,
            },
            // Key change with a boundary address.
            Reference {
                pid: Pid::from_raw(0),
                tid: Tid::from_raw(9),
                region: NameId::from_raw(0),
                kind: RefKind::DataWrite,
                addr: u64::MAX,
                words: 3,
            },
        ];
        let mut out = Vec::new();
        let mut enc = CoderState::new();
        for r in &refs {
            enc.encode(r, &mut out);
        }
        // The continuation record is a single header byte.
        let mut dec = CoderState::new();
        let mut pos = 0;
        for r in &refs {
            assert_eq!(dec.decode(&out, &mut pos).as_ref(), Some(r));
        }
        assert_eq!(pos, out.len());
    }
}
