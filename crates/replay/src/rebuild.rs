//! Rebuilding a [`RunSummary`] from a replayed trace.
//!
//! The live run's summary comes from `Tracer::summarize`, which folds
//! the per-(thread, region, kind) counters into name-keyed maps. The
//! same counters are recoverable from a trace: the boot-baseline
//! snapshot in the footer covers every charge from before the recorder
//! attached, and re-accumulating the recorded stream covers the rest.
//! [`SummaryAccumulator`] does the stream half as a plain
//! [`ReferenceSink`] (so it rides the same replay pass as any cache
//! model), and [`SummaryAccumulator::build`] folds both halves exactly
//! the way `summarize` does — producing byte-identical
//! [`RunSummary::to_json`] output, which the round-trip tests assert.

use crate::reader::ReplayOutcome;
use agave_trace::{NameId, RefKind, Reference, ReferenceSink, RunSummary, Tid};
use std::collections::BTreeMap;

/// Sentinel for an empty cell in the dense `tid × region` slot table
/// (mirrors the tracer's own accounting layout).
const NO_SLOT: u32 = u32::MAX;

/// Accumulates per-(thread, region, kind) word counts from a replayed
/// reference stream, mirroring the tracer's dense-slot accounting.
#[derive(Debug, Default)]
pub struct SummaryAccumulator {
    /// `slot_table[tid][region]` → row in `counters`, or [`NO_SLOT`].
    slot_table: Vec<Vec<u32>>,
    counters: Vec<[u64; 3]>,
    keys: Vec<(u32, u32)>,
    last: Option<((u32, u32), usize)>,
}

impl SummaryAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(&mut self, tid: u32, region: u32, kind: RefKind, words: u64) {
        let key = (tid, region);
        if let Some((last_key, slot)) = self.last {
            if last_key == key {
                self.counters[slot][kind.index()] += words;
                return;
            }
        }
        let ti = tid as usize;
        if ti >= self.slot_table.len() {
            self.slot_table.resize_with(ti + 1, Vec::new);
        }
        let row = &mut self.slot_table[ti];
        let ri = region as usize;
        if ri >= row.len() {
            row.resize(ri + 1, NO_SLOT);
        }
        let slot = if row[ri] == NO_SLOT {
            let s = self.counters.len();
            self.counters.push([0; 3]);
            self.keys.push(key);
            row[ri] = u32::try_from(s).expect("slot overflow");
            s
        } else {
            row[ri] as usize
        };
        self.counters[slot][kind.index()] += words;
        self.last = Some((key, slot));
    }

    /// Folds the accumulated stream counters together with the trace's
    /// boot baseline into the run's [`RunSummary`].
    ///
    /// The output is byte-identical (via [`RunSummary::to_json`]) to the
    /// summary the live run produced; `wall_time_ns` is left at 0, which
    /// both JSON and equality deliberately ignore.
    pub fn build(&self, outcome: &ReplayOutcome) -> RunSummary {
        let dir = &outcome.directory;
        let mut instr_by_region: BTreeMap<String, u64> = BTreeMap::new();
        let mut data_by_region: BTreeMap<String, u64> = BTreeMap::new();
        let mut instr_by_process: BTreeMap<String, u64> = BTreeMap::new();
        let mut data_by_process: BTreeMap<String, u64> = BTreeMap::new();
        let mut refs_by_thread: BTreeMap<String, u64> = BTreeMap::new();
        let mut active_pids = vec![false; dir.process_count()];
        let mut active_tids = vec![false; dir.thread_count()];
        let mut total_instr: u64 = 0;
        let mut total_data: u64 = 0;

        let baseline = outcome
            .baseline
            .entries
            .iter()
            .map(|e| (e.tid.as_u32(), e.region.index() as u32, e.counts));
        let stream = self
            .keys
            .iter()
            .zip(&self.counters)
            .map(|(&(tid, region), &counts)| (tid, region, counts));
        for (tid, region, counts) in baseline.chain(stream) {
            let instr = counts[RefKind::InstrFetch.index()];
            let data = counts[RefKind::DataRead.index()] + counts[RefKind::DataWrite.index()];
            total_instr += instr;
            total_data += data;
            if instr == 0 && data == 0 {
                continue;
            }
            let tid = Tid::from_raw(tid);
            let thread = dir.thread(tid);
            active_pids[thread.pid.as_u32() as usize] = true;
            active_tids[tid.as_u32() as usize] = true;
            let region_name = dir.region(NameId::from_raw(region));
            let proc_name = dir.process(thread.pid);
            let thread_name = dir.names().resolve(thread.canonical);
            if instr > 0 {
                *instr_by_region.entry(region_name.to_owned()).or_default() += instr;
                *instr_by_process.entry(proc_name.to_owned()).or_default() += instr;
            }
            if data > 0 {
                *data_by_region.entry(region_name.to_owned()).or_default() += data;
                *data_by_process.entry(proc_name.to_owned()).or_default() += data;
            }
            *refs_by_thread.entry(thread_name.to_owned()).or_default() += instr + data;
        }

        RunSummary {
            benchmark: outcome.label.clone(),
            instr_by_region,
            data_by_region,
            instr_by_process,
            data_by_process,
            refs_by_thread,
            total_instr,
            total_data,
            active_processes: active_pids.iter().filter(|&&a| a).count(),
            active_threads: active_tids.iter().filter(|&&a| a).count(),
            spawned_processes: dir.process_count(),
            spawned_threads: dir.thread_count(),
            wall_time_ns: 0,
        }
    }
}

impl ReferenceSink for SummaryAccumulator {
    fn on_reference(&mut self, r: &Reference) {
        self.add(r.tid.as_u32(), r.region.index() as u32, r.kind, r.words);
    }
}
