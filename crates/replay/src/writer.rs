//! Streaming `.agtrace` capture.
//!
//! [`TraceWriter`] is a [`ReferenceSink`]: registered on a run via the
//! normal sink API (`agave_core::engine::run_traced`), it observes the
//! classified reference stream batch-by-batch and streams delta-coded
//! chunks through any [`Write`] — a `BufWriter<File>` in the CLI, a
//! `Vec<u8>` in tests.
//!
//! Because [`ReferenceSink::on_batch`] cannot return errors, I/O
//! failures during the run are *sticky*: the writer stops consuming and
//! reports the stored error from [`TraceWriter::finish`], which also
//! seals the file with the directory footer (name/process/thread
//! tables, the boot-baseline counter snapshot, and whole-file totals).

use crate::codec::{put_varint, Checksum, CoderState};
use crate::format::{
    TraceError, CHUNK_RECORDS, MAGIC, MAX_CHUNK_RECORDS, TAG_DIRECTORY, TAG_RECORDS, VERSION,
};
use agave_trace::{CounterSnapshot, NameDirectory, Reference, ReferenceSink};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// What one finished recording produced, for logs and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Reference blocks written.
    pub records: u64,
    /// Total words those blocks span.
    pub words: u64,
    /// Sealed chunks (records chunks only, not the footer).
    pub chunks: u64,
    /// Total bytes written to the output, header and footer included.
    pub file_bytes: u64,
}

impl TraceStats {
    /// Compression ratio: file bytes per reference block.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.file_bytes as f64 / self.records as f64
    }
}

/// A [`ReferenceSink`] that captures the stream it observes into the
/// `.agtrace` binary format.
pub struct TraceWriter<W: Write> {
    out: W,
    /// Delta-coded bytes of the chunk being assembled.
    body: Vec<u8>,
    chunk_records: u64,
    /// Records per sealed chunk ([`CHUNK_RECORDS`] unless configured).
    chunk_capacity: usize,
    /// Reusable frame buffer: each sealed chunk is assembled here and
    /// written with a single `write_all`, so the steady state allocates
    /// nothing per chunk.
    frame: Vec<u8>,
    coder: CoderState,
    records: u64,
    words: u64,
    chunks: u64,
    file_bytes: u64,
    error: Option<TraceError>,
    finished: bool,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` and writes the trace header for `label`.
    pub fn create(path: &Path, label: &str) -> Result<Self, TraceError> {
        TraceWriter::new(BufWriter::new(File::create(path)?), label)
    }

    /// [`TraceWriter::create`] with an explicit chunk size (see
    /// [`TraceWriter::with_chunk_records`]).
    pub fn create_chunked(
        path: &Path,
        label: &str,
        chunk_records: usize,
    ) -> Result<Self, TraceError> {
        TraceWriter::with_chunk_records(BufWriter::new(File::create(path)?), label, chunk_records)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out` and immediately writes the header for `label` (the
    /// workload the trace captures). Chunks seal at the default
    /// [`CHUNK_RECORDS`].
    pub fn new(out: W, label: &str) -> Result<Self, TraceError> {
        TraceWriter::with_chunk_records(out, label, CHUNK_RECORDS)
    }

    /// Like [`TraceWriter::new`], but seals a chunk every
    /// `chunk_records` records (clamped to `1..=`[`MAX_CHUNK_RECORDS`]).
    /// Chunks are the unit of parallel decode and of corruption
    /// containment, so this is the recording-time knob for that trade:
    /// smaller chunks parallelize and contain damage better, larger
    /// chunks amortize framing and delta-coder warmup.
    pub fn with_chunk_records(
        mut out: W,
        label: &str,
        chunk_records: usize,
    ) -> Result<Self, TraceError> {
        let chunk_capacity = chunk_records.clamp(1, MAX_CHUNK_RECORDS);
        let mut header = Vec::with_capacity(16 + label.len());
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        put_varint(&mut header, label.len() as u64);
        header.extend_from_slice(label.as_bytes());
        out.write_all(&header)?;
        Ok(TraceWriter {
            out,
            body: Vec::with_capacity(chunk_capacity.min(CHUNK_RECORDS * 2) * 4),
            chunk_records: 0,
            chunk_capacity,
            frame: Vec::new(),
            coder: CoderState::new(),
            records: 0,
            words: 0,
            chunks: 0,
            file_bytes: header.len() as u64,
            error: None,
            finished: false,
        })
    }

    /// Appends one reference block, sealing a chunk when full. I/O
    /// errors are stored and reported from [`TraceWriter::finish`].
    pub fn append(&mut self, r: &Reference) {
        if self.error.is_some() || self.finished {
            return;
        }
        self.coder.encode(r, &mut self.body);
        self.chunk_records += 1;
        self.records += 1;
        self.words += r.words;
        if self.chunk_records as usize >= self.chunk_capacity {
            if let Err(e) = self.seal_chunk() {
                self.error = Some(e);
            }
        }
    }

    /// Writes the assembled chunk as `tag · len · payload · checksum`
    /// and resets the coder for the next chunk.
    fn seal_chunk(&mut self) -> Result<(), TraceError> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        let mut count = Vec::with_capacity(10);
        put_varint(&mut count, self.chunk_records);
        let body = std::mem::take(&mut self.body);
        let sealed = self.write_chunk_parts(TAG_RECORDS, &[&count, &body]);
        self.body = body;
        self.body.clear();
        sealed?;
        self.chunk_records = 0;
        self.coder = CoderState::new();
        self.chunks += 1;
        Ok(())
    }

    /// Frames `parts` (concatenated) as one chunk under `tag`, assembled
    /// in the reusable frame buffer and written with one `write_all`.
    fn write_chunk_parts(&mut self, tag: u8, parts: &[&[u8]]) -> Result<(), TraceError> {
        let payload_len: usize = parts.iter().map(|p| p.len()).sum();
        self.frame.clear();
        self.frame.reserve(payload_len + 16);
        self.frame.push(tag);
        put_varint(&mut self.frame, payload_len as u64);
        let mut check = Checksum::new();
        check.update(&[tag]);
        for part in parts {
            self.frame.extend_from_slice(part);
            check.update(part);
        }
        self.frame.extend_from_slice(&check.finish().to_le_bytes());
        self.out.write_all(&self.frame)?;
        self.file_bytes += self.frame.len() as u64;
        Ok(())
    }

    /// Seals any pending records, writes the directory footer, and
    /// flushes the output.
    ///
    /// `directory` is the end-of-run [`NameDirectory`] (the same one the
    /// live run hands to report builders); `baseline` is the counter
    /// snapshot taken when this writer was attached, i.e. the charges
    /// that predate the recorded stream. Returns the recording's
    /// [`TraceStats`], or the first error the writer hit — including any
    /// I/O error swallowed during [`ReferenceSink::on_batch`] delivery.
    pub fn finish(
        &mut self,
        directory: &NameDirectory,
        baseline: &CounterSnapshot,
    ) -> Result<TraceStats, TraceError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        assert!(!self.finished, "TraceWriter::finish called twice");
        self.finished = true;
        self.seal_chunk()?;

        let mut footer = Vec::new();
        let names = directory.names();
        put_varint(&mut footer, names.len() as u64);
        for (_, name) in names.iter() {
            put_varint(&mut footer, name.len() as u64);
            footer.extend_from_slice(name.as_bytes());
        }
        put_varint(&mut footer, directory.process_count() as u64);
        for p in 0..directory.process_count() {
            let pid = agave_trace::Pid::from_raw(p as u32);
            put_varint(&mut footer, directory.process_name_id(pid).index() as u64);
        }
        put_varint(&mut footer, directory.thread_count() as u64);
        for t in 0..directory.thread_count() {
            let rec = directory.thread(agave_trace::Tid::from_raw(t as u32));
            put_varint(&mut footer, u64::from(rec.pid.as_u32()));
            put_varint(&mut footer, rec.name.index() as u64);
            put_varint(&mut footer, rec.canonical.index() as u64);
        }
        put_varint(&mut footer, baseline.entries.len() as u64);
        for e in &baseline.entries {
            put_varint(&mut footer, u64::from(e.tid.as_u32()));
            put_varint(&mut footer, e.region.index() as u64);
            for &c in &e.counts {
                put_varint(&mut footer, c);
            }
        }
        put_varint(&mut footer, self.records);
        put_varint(&mut footer, self.words);
        self.write_chunk_parts(TAG_DIRECTORY, &[&footer])?;
        self.out.flush()?;
        Ok(TraceStats {
            records: self.records,
            words: self.words,
            chunks: self.chunks,
            file_bytes: self.file_bytes,
        })
    }
}

impl<W: Write> TraceWriter<W> {
    /// Consumes the writer and returns the underlying output (e.g. the
    /// `Vec<u8>` buffer in tests). Only meaningful after
    /// [`TraceWriter::finish`].
    pub fn into_output(self) -> W {
        self.out
    }
}

impl<W: Write> ReferenceSink for TraceWriter<W> {
    fn on_reference(&mut self, r: &Reference) {
        self.append(r);
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        // Telemetry gate once per 1024-block batch, not per record.
        if !agave_telemetry::enabled() {
            for r in batch {
                self.append(r);
            }
            return;
        }
        use agave_telemetry::metrics::{Counter, Histogram};
        use std::sync::OnceLock;
        static ENCODE_NS: OnceLock<&'static Counter> = OnceLock::new();
        static ENCODE_RECORDS: OnceLock<&'static Counter> = OnceLock::new();
        static BATCH_ENCODE_NS: OnceLock<&'static Histogram> = OnceLock::new();
        let start = std::time::Instant::now();
        for r in batch {
            self.append(r);
        }
        let ns = start.elapsed().as_nanos() as u64;
        ENCODE_NS
            .get_or_init(|| agave_telemetry::metrics::counter("replay.encode_ns"))
            .add(ns);
        ENCODE_RECORDS
            .get_or_init(|| agave_telemetry::metrics::counter("replay.encode_records"))
            .add(batch.len() as u64);
        BATCH_ENCODE_NS
            .get_or_init(|| agave_telemetry::metrics::histogram("replay.batch_encode_ns"))
            .record(ns);
    }
}

impl<W: Write> std::fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("records", &self.records)
            .field("chunks", &self.chunks)
            .field("file_bytes", &self.file_bytes)
            .field("finished", &self.finished)
            .finish()
    }
}
