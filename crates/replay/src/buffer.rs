//! Buffered `.agtrace` replay: slurp once, decode in parallel.
//!
//! [`TraceBuffer`] is the throughput-oriented counterpart to the
//! streaming [`crate::TraceReader`]: it reads (or is handed) the whole
//! file once, scans the chunk framing serially — cheap, it only reads
//! tags and lengths — and then checksums + decodes the record chunks on
//! [`agave_trace::par::parallel_map`] workers, each borrowing its
//! payload straight out of the file buffer with no per-chunk copies.
//!
//! **Byte-identity is the contract.** Decoded chunks are merged back in
//! file order on the calling thread and delivered to sinks in
//! [`Tracer::SINK_BATCH`]-sized slices, so every sink observes exactly
//! the stream, order, and batch boundaries it would see from a serial
//! replay — `jobs` is unobservable downstream. Errors are deterministic
//! too: workers only *report* failures; the merge loop surfaces the
//! lowest-offset one, regardless of which worker tripped first.
//!
//! Decode runs in bounded waves (a few chunks per worker) rather than
//! fanning out the whole file at once, so peak memory stays at
//! `O(jobs × chunk)` decoded records instead of `O(file)`.

use crate::codec::{get_varint, Checksum, DecodeTotals};
use crate::format::{TraceError, MAGIC, MAX_CHUNK_BYTES, TAG_DIRECTORY, TAG_RECORDS, VERSION};
use crate::reader::{chunk_metrics, decode_record_chunk, parse_footer};
use crate::{ReplayOutcome, ValidateOutcome};
use agave_trace::par::parallel_map;
use agave_trace::{Reference, SharedSink, Tracer};
use std::ops::Range;
use std::path::Path;

/// Chunks scheduled per worker per decode wave. Large enough to keep
/// stealing cheap relative to a ~20 KB chunk decode, small enough that
/// buffered-but-undelivered records stay bounded.
const WAVE_CHUNKS_PER_JOB: usize = 4;

/// One framed chunk located by the serial scan: where its payload lives
/// in the file buffer and the checksum stored after it.
struct ChunkSpan {
    tag: u8,
    /// File offset of the tag byte — the offset corruption errors cite,
    /// matching the streaming reader.
    start: u64,
    payload: Range<usize>,
    stored_checksum: u64,
}

/// A whole `.agtrace` held in memory, decodable in parallel.
///
/// Construction validates only the header (magic, version, label), like
/// [`crate::TraceReader::new`]; chunk framing and checksums are checked
/// by [`TraceBuffer::replay`] / [`TraceBuffer::validate`].
pub struct TraceBuffer {
    bytes: Vec<u8>,
    label: String,
    /// Offset of the first chunk (just past the header).
    body: usize,
}

impl TraceBuffer {
    /// Reads `path` into memory and validates the `.agtrace` header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        TraceBuffer::from_vec(std::fs::read(path)?)
    }

    /// Takes ownership of raw trace bytes and validates the header.
    pub fn from_vec(bytes: Vec<u8>) -> Result<Self, TraceError> {
        if bytes.len() < MAGIC.len() {
            return Err(TraceError::corrupt(
                0,
                "truncated while reading file header",
            ));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(TraceError::NotATrace);
        }
        if bytes.len() < 12 {
            return Err(TraceError::corrupt(
                8,
                "truncated while reading format version",
            ));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut pos = 12usize;
        let label_len = slice_varint(&bytes, &mut pos, "label length")?;
        if label_len > 4096 {
            return Err(TraceError::corrupt(pos as u64, "implausible label length"));
        }
        let label_end = pos + label_len as usize;
        let label = bytes.get(pos..label_end).ok_or_else(|| {
            TraceError::corrupt(pos as u64, "truncated while reading workload label")
        })?;
        let label = String::from_utf8(label.to_vec())
            .map_err(|_| TraceError::corrupt(label_end as u64, "label is not UTF-8"))?;
        Ok(TraceBuffer {
            bytes,
            label,
            body: label_end,
        })
    }

    /// The recorded workload's label, from the header.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total bytes held (the whole file).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is empty (never true for a valid trace).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Locates every chunk frame without touching payload contents:
    /// structural damage (truncation, implausible lengths, unknown tags,
    /// data after the footer, a missing footer) is caught here, at the
    /// same offsets the streaming reader reports, before any worker
    /// starts. Returns the record-chunk spans in file order plus the
    /// footer span.
    fn scan(&self) -> Result<(Vec<ChunkSpan>, ChunkSpan), TraceError> {
        let bytes = &self.bytes;
        let mut pos = self.body;
        let mut chunks = Vec::new();
        let mut footer: Option<ChunkSpan> = None;
        while pos < bytes.len() {
            if footer.is_some() {
                return Err(TraceError::corrupt(
                    pos as u64,
                    "trailing data after the directory footer",
                ));
            }
            let start = pos as u64;
            let tag = bytes[pos];
            pos += 1;
            let len = slice_varint(bytes, &mut pos, "chunk length")?;
            if len > MAX_CHUNK_BYTES {
                return Err(TraceError::corrupt(pos as u64, "implausible chunk length"));
            }
            let payload = pos..pos + len as usize;
            if payload.end > bytes.len() {
                return Err(TraceError::corrupt(
                    pos as u64,
                    "truncated while reading chunk payload",
                ));
            }
            pos = payload.end;
            let stored = bytes.get(pos..pos + 8).ok_or_else(|| {
                TraceError::corrupt(pos as u64, "truncated while reading chunk checksum")
            })?;
            let stored_checksum = u64::from_le_bytes(stored.try_into().expect("8 bytes"));
            pos += 8;
            let span = ChunkSpan {
                tag,
                start,
                payload,
                stored_checksum,
            };
            match tag {
                TAG_RECORDS => chunks.push(span),
                TAG_DIRECTORY => footer = Some(span),
                other => {
                    return Err(TraceError::corrupt(
                        start,
                        format!("unknown chunk tag 0x{other:02x}"),
                    ));
                }
            }
        }
        let footer = footer.ok_or_else(|| {
            TraceError::corrupt(
                bytes.len() as u64,
                "trace ends before the directory footer (truncated?)",
            )
        })?;
        Ok((chunks, footer))
    }

    /// Recomputes one chunk's checksum against the stored value.
    fn verify_checksum(&self, span: &ChunkSpan) -> Result<(), TraceError> {
        let mut check = Checksum::new();
        check.update(&[span.tag]);
        check.update(&self.bytes[span.payload.clone()]);
        if check.finish() != span.stored_checksum {
            return Err(TraceError::corrupt(
                span.payload.end as u64,
                "chunk checksum mismatch (corrupt or truncated write)",
            ));
        }
        Ok(())
    }

    /// Checksums and decodes one record chunk into a fresh buffer — the
    /// per-worker unit of the parallel pipeline.
    fn decode_chunk(&self, span: &ChunkSpan) -> Result<(Vec<Reference>, DecodeTotals), TraceError> {
        self.verify_checksum(span)?;
        let decode_start = agave_telemetry::enabled().then(std::time::Instant::now);
        let payload = &self.bytes[span.payload.clone()];
        let mut batch = Vec::new();
        let totals = decode_record_chunk(payload, span.start, &mut batch)?;
        if let Some(start) = decode_start {
            chunk_metrics(start, batch.len() as u64, payload.len() as u64);
        }
        Ok((batch, totals))
    }

    /// Replays the whole trace into `sinks` on up to `jobs` decode
    /// workers (0 = one per CPU, 1 = serial), returning the
    /// [`ReplayOutcome`].
    ///
    /// Delivery is byte-identical to [`crate::TraceReader::replay`] for
    /// every `jobs` value: chunks are merged in file order and handed to
    /// sinks in [`Tracer::SINK_BATCH`]-sized slices on the calling
    /// thread (sinks are deliberately thread-local — see
    /// [`agave_trace::SharedSink`]). Fails — without delivering the
    /// offending or any later chunk — on checksum mismatch, malformed
    /// records, truncation, a missing footer, or totals that contradict
    /// the footer, and reports the same error for the same file
    /// regardless of `jobs`.
    pub fn replay(&self, sinks: &[SharedSink], jobs: usize) -> Result<ReplayOutcome, TraceError> {
        let mut span = agave_telemetry::Span::enter_labeled("replay decode", &self.label);
        let (chunks, footer_span) = self.scan()?;
        self.verify_checksum(&footer_span)?;
        let footer = parse_footer(&self.bytes[footer_span.payload.clone()], footer_span.start)?;
        let mut records: u64 = 0;
        let mut words: u64 = 0;
        let mut max_tid: u64 = 0;
        let mut max_region: u64 = 0;
        let wave = agave_trace::par::effective_jobs(jobs).max(1) * WAVE_CHUNKS_PER_JOB;
        for wave_spans in chunks.chunks(wave) {
            // `parallel_map` returns results in index order, so the
            // merge below is a plain in-order walk and the first error
            // encountered is the lowest-offset one — deterministic for
            // any worker schedule.
            let decoded = parallel_map(wave_spans.len(), jobs, |i| {
                self.decode_chunk(&wave_spans[i])
            });
            for result in decoded {
                let (batch, totals) = result?;
                records += batch.len() as u64;
                words += totals.words;
                max_tid = max_tid.max(totals.max_tid);
                max_region = max_region.max(totals.max_region);
                for slice in batch.chunks(Tracer::SINK_BATCH) {
                    for sink in sinks {
                        sink.borrow_mut().on_batch(slice);
                    }
                }
            }
        }
        if records > 0
            && (max_tid >= footer.directory.thread_count() as u64
                || max_region >= footer.directory.names().len() as u64)
        {
            return Err(TraceError::corrupt(
                footer_span.start,
                "stream references ids missing from the directory footer",
            ));
        }
        if footer.total_records != records || footer.total_words != words {
            return Err(TraceError::corrupt(
                footer_span.start,
                format!(
                    "footer promises {} records / {} words but the body \
                     carries {records} / {words} (missing chunks?)",
                    footer.total_records, footer.total_words
                ),
            ));
        }
        span.set_refs(words);
        Ok(ReplayOutcome {
            label: self.label.clone(),
            directory: footer.directory,
            baseline: footer.baseline,
            records,
            words,
        })
    }

    /// Validates the whole trace without decoding or delivering a single
    /// record: serial structure scan, footer parse, then every record
    /// chunk's checksum recomputed on up to `jobs` workers. The parallel
    /// counterpart of [`crate::TraceReader::validate`], with the same
    /// outcome for the same file regardless of `jobs` (errors surface
    /// lowest-offset first).
    pub fn validate(&self, jobs: usize) -> Result<ValidateOutcome, TraceError> {
        let (chunks, footer_span) = self.scan()?;
        self.verify_checksum(&footer_span)?;
        let footer = parse_footer(&self.bytes[footer_span.payload.clone()], footer_span.start)?;
        let results = parallel_map(chunks.len(), jobs, |i| self.verify_checksum(&chunks[i]));
        for result in results {
            result?;
        }
        Ok(ValidateOutcome {
            label: self.label.clone(),
            record_chunks: chunks.len() as u64,
            bytes: self.bytes.len() as u64,
            records: footer.total_records,
            words: footer.total_words,
        })
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("label", &self.label)
            .field("bytes", &self.bytes.len())
            .finish()
    }
}

/// [`get_varint`] with `None` mapped to a descriptive corruption error
/// at the current offset (truncated and overlong varints are
/// indistinguishable on a byte slice; both are damage).
fn slice_varint(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, TraceError> {
    get_varint(bytes, pos)
        .ok_or_else(|| TraceError::corrupt(*pos as u64, format!("bad varint in {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SummaryAccumulator;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn synthetic() -> (Vec<u8>, agave_trace::RunSummary) {
        crate::tests::record_synthetic_bytes()
    }

    fn summary_via_buffer(bytes: &[u8], jobs: usize) -> agave_trace::RunSummary {
        let buf = TraceBuffer::from_vec(bytes.to_vec()).unwrap();
        let acc = Rc::new(RefCell::new(SummaryAccumulator::new()));
        let outcome = buf.replay(&[acc.clone() as SharedSink], jobs).unwrap();
        let summary = acc.borrow().build(&outcome);
        summary
    }

    #[test]
    fn buffered_replay_matches_live_for_any_job_count() {
        let (bytes, live) = synthetic();
        for jobs in [1, 2, 8, 0] {
            let rebuilt = summary_via_buffer(&bytes, jobs);
            assert_eq!(rebuilt, live, "jobs={jobs}");
            assert_eq!(rebuilt.to_json(), live.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn buffered_validate_matches_streaming() {
        let (bytes, _) = synthetic();
        let buf = TraceBuffer::from_vec(bytes.clone()).unwrap();
        let parallel = buf.validate(8).unwrap();
        let streaming = crate::TraceReader::new(std::io::Cursor::new(&bytes))
            .unwrap()
            .validate()
            .unwrap();
        assert_eq!(parallel.label, streaming.label);
        assert_eq!(parallel.record_chunks, streaming.record_chunks);
        assert_eq!(parallel.bytes, streaming.bytes);
        assert_eq!(parallel.records, streaming.records);
        assert_eq!(parallel.words, streaming.words);
    }

    #[test]
    fn corruption_errors_are_deterministic_across_jobs() {
        let (bytes, _) = synthetic();
        // Flip a byte in the middle of the body (some record chunk).
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let mut rendered: Vec<String> = Vec::new();
        for jobs in [1, 2, 8] {
            let buf = TraceBuffer::from_vec(flipped.clone()).unwrap();
            let replay_err = buf.replay(&[], jobs).unwrap_err();
            let validate_err = buf.validate(jobs).unwrap_err();
            assert!(matches!(replay_err, TraceError::Corrupt { .. }));
            assert!(matches!(validate_err, TraceError::Corrupt { .. }));
            rendered.push(format!("{replay_err} / {validate_err}"));
        }
        assert!(
            rendered.windows(2).all(|w| w[0] == w[1]),
            "same corruption must render identically for all job counts: {rendered:?}"
        );
    }

    #[test]
    fn truncation_is_rejected_at_scan_time() {
        let (bytes, _) = synthetic();
        for cut in [13, bytes.len() / 3, bytes.len() - 5] {
            match TraceBuffer::from_vec(bytes[..cut].to_vec()) {
                Ok(buf) => {
                    let err = buf.replay(&[], 8).unwrap_err();
                    assert!(matches!(err, TraceError::Corrupt { .. }), "cut={cut}");
                }
                Err(err) => {
                    assert!(matches!(err, TraceError::Corrupt { .. }), "cut={cut}");
                }
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected_on_open() {
        assert!(matches!(
            TraceBuffer::from_vec(b"NOTATRACEFILE".to_vec()),
            Err(TraceError::NotATrace)
        ));
        let (mut bytes, _) = synthetic();
        bytes[8] = 0xfe;
        assert!(matches!(
            TraceBuffer::from_vec(bytes),
            Err(TraceError::UnsupportedVersion(_))
        ));
    }
}
