//! **agave-replay** — compact binary trace capture and trace-driven
//! replay for the Agave suite.
//!
//! The paper's whole methodology is trace-driven: capture every memory
//! reference once, then analyze offline. Until now this reproduction
//! could only analyze *live* — each cache sweep or new figure re-ran all
//! 25 workloads. This crate turns one expensive run into a reusable
//! artifact:
//!
//! * [`TraceWriter`] is a [`agave_trace::ReferenceSink`] that captures a
//!   run's classified reference stream into an `.agtrace` file — a
//!   self-describing, checksummed, delta-coded binary format (see
//!   [`format`]) that typically costs a few bytes per reference block.
//! * [`TraceReader`] streams the file back, delivering decoded batches
//!   to any set of sinks: a cache hierarchy, a figure accumulator, or
//!   the [`SummaryAccumulator`] that rebuilds the run's
//!   [`agave_trace::RunSummary`].
//!
//! The correctness contract, asserted by `tests/replay_roundtrip.rs`:
//! replaying a recorded trace yields **byte-identical** `RunSummary`
//! JSON and `CacheReport` output to the live run. Two pieces make that
//! possible: the footer stores the end-of-run name/process/thread
//! directory (so ids resolve exactly as they did live), and it stores
//! the boot-baseline counter snapshot (charges from before the recorder
//! attached, which the stream by definition cannot carry).
//!
//! Two read paths share one decoder: [`TraceReader`] streams from any
//! `io::Read` (bounded memory, used for smoke checks and pipes), while
//! [`TraceBuffer`] slurps the file once and decodes whole chunks in
//! parallel — chunks carry independent checksums and self-contained
//! delta state, so they are the natural unit of fan-out. Both deliver
//! byte-identical output; `TraceBuffer` is what the analysis verbs use.
//!
//! ```no_run
//! use agave_replay::{replay_summary, TraceBuffer, TraceReader};
//! use std::path::Path;
//!
//! // Rebuild the recorded run's summary without re-simulating it
//! // (decoding on up to 8 worker threads).
//! let summary = replay_summary(Path::new("gallery.agtrace"), 8).unwrap();
//! println!("{}", summary.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
pub mod codec;
pub mod format;
mod reader;
mod rebuild;
mod writer;

pub use buffer::TraceBuffer;
pub use format::TraceError;
pub use reader::{ReplayOutcome, TraceReader, ValidateOutcome};
pub use rebuild::SummaryAccumulator;
pub use writer::{TraceStats, TraceWriter};

use agave_trace::{RunSummary, SharedSink};
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

/// Opens `path` and rebuilds the recorded run's [`RunSummary`] —
/// byte-identical (as JSON) to the one the live run produced, for any
/// `jobs` (decode worker count; 0 = one per CPU, 1 = serial).
pub fn replay_summary(path: &Path, jobs: usize) -> Result<RunSummary, TraceError> {
    let buf = TraceBuffer::open(path)?;
    let acc = Rc::new(RefCell::new(SummaryAccumulator::new()));
    let outcome = buf.replay(&[acc.clone() as SharedSink], jobs)?;
    let summary = acc.borrow().build(&outcome);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::{RefKind, Tracer};
    use std::io::Cursor;

    /// Records a small synthetic world (boot traffic before the sink
    /// attaches, a charge mix after) and returns the trace bytes plus
    /// the live summary for comparison. Shared with the `buffer` tests.
    pub(crate) fn record_synthetic_bytes() -> (Vec<u8>, RunSummary) {
        let mut t = Tracer::new();
        let boot_pid = t.register_process("system_server");
        let boot_tid = t.register_thread(boot_pid, "Binder-1");
        let lib = t.intern_region("libbinder.so");
        t.charge(boot_pid, boot_tid, lib, RefKind::InstrFetch, 500);
        let baseline = t.counter_snapshot();
        let writer = Rc::new(RefCell::new(
            TraceWriter::new(Vec::new(), "synthetic").unwrap(),
        ));
        t.add_sink(writer.clone() as SharedSink);
        let pid = t.register_process("app_process");
        let tid = t.register_thread(pid, "Thread-7");
        let heap = t.intern_region("dalvik-heap");
        for i in 0..5000u64 {
            t.charge(pid, tid, heap, RefKind::DataWrite, 3 + i % 7);
            t.charge_at(pid, tid, lib, RefKind::InstrFetch, 0x1000 + i * 64, 16);
        }
        t.flush_sinks();
        let live = t.summarize("synthetic");
        writer
            .borrow_mut()
            .finish(&t.name_directory(), &baseline)
            .unwrap();
        drop(t); // tracer's sink clone released
        let bytes = Rc::try_unwrap(writer)
            .expect("writer uniquely owned after the world is gone")
            .into_inner()
            .into_output();
        (bytes, live)
    }

    #[test]
    fn synthetic_world_round_trips_byte_identically() {
        let (bytes, live) = record_synthetic_bytes();
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.label(), "synthetic");
        let acc = Rc::new(RefCell::new(SummaryAccumulator::new()));
        let outcome = reader.replay(&[acc.clone() as SharedSink]).unwrap();
        assert!(outcome.records > 0);
        assert!(!outcome.baseline.is_empty(), "boot baseline must survive");
        let rebuilt = acc.borrow().build(&outcome);
        assert_eq!(rebuilt, live);
        assert_eq!(rebuilt.to_json(), live.to_json());
    }

    #[test]
    fn truncated_trace_is_rejected_not_misread() {
        let (bytes, _) = record_synthetic_bytes();
        for cut in [bytes.len() / 3, bytes.len() - 5] {
            let reader = TraceReader::new(Cursor::new(&bytes[..cut])).unwrap();
            let err = reader.replay(&[]).unwrap_err();
            assert!(
                matches!(err, TraceError::Corrupt { .. }),
                "cut at {cut}: expected Corrupt, got {err}"
            );
        }
    }

    #[test]
    fn validate_walks_a_good_trace_without_decoding() {
        let (bytes, live) = record_synthetic_bytes();
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        let outcome = reader.validate().unwrap();
        assert_eq!(outcome.label, "synthetic");
        assert!(outcome.record_chunks > 0);
        assert_eq!(outcome.bytes, bytes.len() as u64);
        assert!(outcome.records > 0, "footer totals must surface");
        // The stream excludes the 500 boot-baseline words charged before
        // the recorder attached.
        assert_eq!(outcome.words, live.total_instr + live.total_data - 500);
    }

    #[test]
    fn validate_rejects_flipped_bytes_and_truncation() {
        let (bytes, _) = record_synthetic_bytes();
        // Flip one payload byte somewhere in the body.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let err = TraceReader::new(Cursor::new(&flipped))
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "got {err}");
        // Truncate before the footer.
        let cut = &bytes[..bytes.len() - 9];
        let err = TraceReader::new(Cursor::new(cut))
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "got {err}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected_on_open() {
        assert!(matches!(
            TraceReader::new(Cursor::new(b"NOTATRACEFILE".to_vec())),
            Err(TraceError::NotATrace)
        ));
        let (mut bytes, _) = record_synthetic_bytes();
        bytes[8] = 0xfe; // version field
        assert!(matches!(
            TraceReader::new(Cursor::new(bytes)),
            Err(TraceError::UnsupportedVersion(_))
        ));
    }
}
