//! The `.agtrace` container format: constants, layout, and errors.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   magic "AGTRACE\0" · u32 LE version · varint label   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ chunk*   tag 0x01 · varint len · payload · u64 LE checksum   │
//! │          payload = varint record count + delta-coded records │
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer   tag 0x02 · varint len · payload · u64 LE checksum   │
//! │          payload = name table + process table + thread table │
//! │                    + boot-baseline counters + record totals  │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every chunk carries its own FNV-1a checksum (computed over the tag
//! and payload), so a flipped byte or a truncated download is reported
//! as a [`TraceError::Corrupt`] at read time instead of silently
//! producing wrong reports. The footer must be the last chunk; a file
//! that ends before it is truncated by definition.

use std::fmt;
use std::io;

/// First eight bytes of every trace file.
pub const MAGIC: [u8; 8] = *b"AGTRACE\0";

/// Current format version, bumped on any incompatible layout change.
pub const VERSION: u32 = 1;

/// Chunk tag: a batch of delta-coded reference records.
pub const TAG_RECORDS: u8 = 0x01;

/// Chunk tag: the directory footer (string/process/thread tables,
/// boot-baseline counters, whole-file record totals).
pub const TAG_DIRECTORY: u8 = 0x02;

/// Records buffered per chunk before the writer seals and emits it.
///
/// Chunks are independently decodable (the delta coder resets at each
/// chunk boundary), so this bounds both the writer's buffer and the
/// blast radius of a corrupt byte.
pub const CHUNK_RECORDS: usize = 4096;

/// Upper bound on `--chunk-records`: chunks are the unit of parallel
/// decode and of corruption containment, so arbitrarily huge chunks are
/// disallowed. With the worst-case record size this also keeps every
/// legal chunk under [`MAX_CHUNK_BYTES`].
pub const MAX_CHUNK_RECORDS: usize = 1 << 20;

/// Readers reject any chunk whose declared payload length exceeds this
/// (shared by the streaming and buffered read paths): a corrupt length
/// varint must not drive a multi-gigabyte allocation.
pub const MAX_CHUNK_BYTES: u64 = 64 << 20;

/// Everything that can go wrong opening, reading, or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying file or stream failed.
    Io(io::Error),
    /// The file does not start with the `.agtrace` magic.
    NotATrace,
    /// The file is a trace, but from an incompatible format version.
    UnsupportedVersion(u32),
    /// The file is structurally damaged: truncated mid-chunk, failed a
    /// checksum, or contains an impossible encoding. The offset is the
    /// byte position where the damage was detected.
    Corrupt {
        /// Byte offset at which the damage was detected.
        offset: u64,
        /// Human-readable description of what was expected.
        what: String,
    },
}

impl TraceError {
    /// Builds a [`TraceError::Corrupt`] at `offset`.
    pub fn corrupt(offset: u64, what: impl Into<String>) -> Self {
        TraceError::Corrupt {
            offset,
            what: what.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::NotATrace => write!(f, "not an .agtrace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported .agtrace version {v} (supported: {VERSION})")
            }
            TraceError::Corrupt { offset, what } => {
                write!(f, "corrupt .agtrace at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_descriptively() {
        assert!(TraceError::NotATrace.to_string().contains("magic"));
        assert!(TraceError::UnsupportedVersion(9).to_string().contains('9'));
        let c = TraceError::corrupt(17, "checksum mismatch");
        assert!(c.to_string().contains("byte 17"));
        assert!(c.to_string().contains("checksum mismatch"));
    }
}
