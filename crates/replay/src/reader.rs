//! Streaming `.agtrace` replay.
//!
//! [`TraceReader`] validates the header on open (magic + version, so a
//! wrong or stale file fails immediately), then [`TraceReader::replay`]
//! decodes chunk after chunk — verifying each checksum *before*
//! interpreting a single record — and delivers the decoded batches to
//! any set of [`SharedSink`]s. The cache hierarchy, figure
//! accumulators, and the summary rebuilder all consume a replayed file
//! exactly as they consume a live run.

use crate::codec::{decode_records, get_varint, Checksum, DecodeTotals};
use crate::format::{TraceError, MAGIC, MAX_CHUNK_BYTES, TAG_DIRECTORY, TAG_RECORDS, VERSION};
use agave_trace::{
    CounterSnapshot, NameDirectory, NameId, Pid, Reference, SharedSink, SnapshotEntry,
    ThreadRecord, Tid,
};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Everything a fully replayed trace yields besides the stream itself:
/// the workload label, the end-of-run directory, the boot-baseline
/// counters, and the stream totals (validated against the footer).
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The recorded workload's label (e.g. `"gallery.mp4.view"`).
    pub label: String,
    /// Name/process/thread tables, byte-equivalent to the live run's.
    pub directory: NameDirectory,
    /// Counters charged before the recorder attached (world boot).
    pub baseline: CounterSnapshot,
    /// Reference blocks delivered.
    pub records: u64,
    /// Total words those blocks span.
    pub words: u64,
}

/// What a [`TraceReader::validate`] walk establishes about a trace:
/// header parsed, every chunk checksum verified, footer present and
/// structurally sound — without decoding or delivering any record.
#[derive(Debug, Clone)]
pub struct ValidateOutcome {
    /// The recorded workload's label, from the header.
    pub label: String,
    /// Number of record chunks whose checksums verified.
    pub record_chunks: u64,
    /// Total bytes walked (header through footer).
    pub bytes: u64,
    /// Record count promised by the footer (not cross-checked — see
    /// [`TraceReader::validate`]).
    pub records: u64,
    /// Word count promised by the footer.
    pub words: u64,
}

/// A streaming `.agtrace` decoder.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    label: String,
    /// Bytes consumed so far — reported in corruption errors.
    offset: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens `path` and validates the header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input` and validates the `.agtrace` header.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        read_exact_at(&mut input, &mut magic, 0, "file header")?;
        if magic != MAGIC {
            return Err(TraceError::NotATrace);
        }
        let mut version = [0u8; 4];
        read_exact_at(&mut input, &mut version, 8, "format version")?;
        let version = u32::from_le_bytes(version);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut offset = 12;
        let label_len = read_varint(&mut input, &mut offset, "label length")?;
        if label_len > 4096 {
            return Err(TraceError::corrupt(offset, "implausible label length"));
        }
        let mut label = vec![0u8; label_len as usize];
        read_exact_at(&mut input, &mut label, offset, "workload label")?;
        offset += label_len;
        let label = String::from_utf8(label)
            .map_err(|_| TraceError::corrupt(offset, "label is not UTF-8"))?;
        Ok(TraceReader {
            input,
            label,
            offset,
        })
    }

    /// The recorded workload's label, from the header.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Replays the whole trace into `sinks`, delivering decoded record
    /// batches in captured order, and returns the [`ReplayOutcome`].
    ///
    /// Fails — without delivering the offending chunk — on checksum
    /// mismatch, malformed records, truncation, a missing directory
    /// footer, or totals that contradict the footer.
    pub fn replay(mut self, sinks: &[SharedSink]) -> Result<ReplayOutcome, TraceError> {
        let mut span = agave_telemetry::Span::enter_labeled("replay decode", &self.label);
        let mut records: u64 = 0;
        let mut words: u64 = 0;
        let mut max_tid: u64 = 0;
        let mut max_region: u64 = 0;
        let mut batch: Vec<Reference> = Vec::new();
        loop {
            let chunk_start = self.offset;
            let (tag, payload) = match self.read_chunk()? {
                Some(chunk) => chunk,
                None => {
                    return Err(TraceError::corrupt(
                        self.offset,
                        "trace ends before the directory footer (truncated?)",
                    ));
                }
            };
            match tag {
                TAG_RECORDS => {
                    // Telemetry gate once per chunk (thousands of records).
                    let decode_start = agave_telemetry::enabled().then(std::time::Instant::now);
                    let totals = decode_record_chunk(&payload, chunk_start, &mut batch)?;
                    records += batch.len() as u64;
                    words += totals.words;
                    max_tid = max_tid.max(totals.max_tid);
                    max_region = max_region.max(totals.max_region);
                    for sink in sinks {
                        sink.borrow_mut().on_batch(&batch);
                    }
                    if let Some(start) = decode_start {
                        chunk_metrics(start, batch.len() as u64, payload.len() as u64);
                    }
                    batch.clear();
                }
                TAG_DIRECTORY => {
                    let footer = parse_footer(&payload, chunk_start)?;
                    let mut trailing = [0u8; 1];
                    if self.input.read(&mut trailing)? != 0 {
                        return Err(TraceError::corrupt(
                            self.offset,
                            "trailing data after the directory footer",
                        ));
                    }
                    if records > 0
                        && (max_tid >= footer.directory.thread_count() as u64
                            || max_region >= footer.directory.names().len() as u64)
                    {
                        return Err(TraceError::corrupt(
                            chunk_start,
                            "stream references ids missing from the directory footer",
                        ));
                    }
                    if footer.total_records != records || footer.total_words != words {
                        return Err(TraceError::corrupt(
                            chunk_start,
                            format!(
                                "footer promises {} records / {} words but the body \
                                 carries {records} / {words} (missing chunks?)",
                                footer.total_records, footer.total_words
                            ),
                        ));
                    }
                    span.set_refs(words);
                    return Ok(ReplayOutcome {
                        label: self.label,
                        directory: footer.directory,
                        baseline: footer.baseline,
                        records,
                        words,
                    });
                }
                other => {
                    return Err(TraceError::corrupt(
                        chunk_start,
                        format!("unknown chunk tag 0x{other:02x}"),
                    ));
                }
            }
        }
    }

    /// Walks the whole trace verifying structure without delivering a
    /// single record: every chunk checksum is recomputed, the directory
    /// footer must be present, parseable, and last. No sink sees the
    /// stream and no record is decoded, so validation is bounded by I/O
    /// plus one checksum pass — the cheap admission check `agave-serve`
    /// runs on every upload before a session is created.
    ///
    /// Returns the footer-promised totals. Cross-checking those totals
    /// against the body requires decoding every record, which is
    /// [`TraceReader::replay`]'s job; a record-level inconsistency that a
    /// checksum cannot catch is still caught at analysis time.
    pub fn validate(mut self) -> Result<ValidateOutcome, TraceError> {
        let mut record_chunks: u64 = 0;
        loop {
            let chunk_start = self.offset;
            let (tag, payload) = self.read_chunk()?.ok_or_else(|| {
                TraceError::corrupt(
                    self.offset,
                    "trace ends before the directory footer (truncated?)",
                )
            })?;
            match tag {
                TAG_RECORDS => record_chunks += 1,
                TAG_DIRECTORY => {
                    let footer = parse_footer(&payload, chunk_start)?;
                    let mut trailing = [0u8; 1];
                    if self.input.read(&mut trailing)? != 0 {
                        return Err(TraceError::corrupt(
                            self.offset,
                            "trailing data after the directory footer",
                        ));
                    }
                    return Ok(ValidateOutcome {
                        label: self.label,
                        record_chunks,
                        bytes: self.offset,
                        records: footer.total_records,
                        words: footer.total_words,
                    });
                }
                other => {
                    return Err(TraceError::corrupt(
                        chunk_start,
                        format!("unknown chunk tag 0x{other:02x}"),
                    ));
                }
            }
        }
    }

    /// Reads one framed chunk, verifying its checksum. `Ok(None)` means
    /// clean EOF at a chunk boundary (only valid after the footer — the
    /// caller decides).
    fn read_chunk(&mut self) -> Result<Option<(u8, Vec<u8>)>, TraceError> {
        let mut tag = [0u8; 1];
        match self.input.read(&mut tag)? {
            0 => return Ok(None),
            _ => self.offset += 1,
        }
        let len = read_varint(&mut self.input, &mut self.offset, "chunk length")?;
        // A chunk is at most MAX_CHUNK_RECORDS maximally sized records
        // or the directory; anything beyond a generous bound is damage.
        if len > MAX_CHUNK_BYTES {
            return Err(TraceError::corrupt(self.offset, "implausible chunk length"));
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_at(&mut self.input, &mut payload, self.offset, "chunk payload")?;
        self.offset += len;
        let mut stored = [0u8; 8];
        read_exact_at(&mut self.input, &mut stored, self.offset, "chunk checksum")?;
        self.offset += 8;
        let mut check = Checksum::new();
        check.update(&tag);
        check.update(&payload);
        if check.finish() != u64::from_le_bytes(stored) {
            return Err(TraceError::corrupt(
                self.offset - 8,
                "chunk checksum mismatch (corrupt or truncated write)",
            ));
        }
        Ok(Some((tag[0], payload)))
    }
}

/// Telemetry accounting for one decoded-and-delivered records chunk;
/// only reached when telemetry is enabled. Shared with the buffered
/// read path so both report under the same metric names.
pub(crate) fn chunk_metrics(start: std::time::Instant, chunk_records: u64, chunk_bytes: u64) {
    use agave_telemetry::metrics::{Counter, Histogram};
    use std::sync::OnceLock;
    static DECODE_NS: OnceLock<&'static Counter> = OnceLock::new();
    static DECODE_CHUNKS: OnceLock<&'static Counter> = OnceLock::new();
    static DECODE_RECORDS: OnceLock<&'static Counter> = OnceLock::new();
    static CHUNK_BYTES: OnceLock<&'static Histogram> = OnceLock::new();
    static CHUNK_DECODE_NS: OnceLock<&'static Histogram> = OnceLock::new();
    let ns = start.elapsed().as_nanos() as u64;
    DECODE_NS
        .get_or_init(|| agave_telemetry::metrics::counter("replay.decode_ns"))
        .add(ns);
    DECODE_CHUNKS
        .get_or_init(|| agave_telemetry::metrics::counter("replay.decode_chunks"))
        .incr();
    DECODE_RECORDS
        .get_or_init(|| agave_telemetry::metrics::counter("replay.decode_records"))
        .add(chunk_records);
    CHUNK_BYTES
        .get_or_init(|| agave_telemetry::metrics::histogram("replay.chunk_bytes"))
        .record(chunk_bytes);
    CHUNK_DECODE_NS
        .get_or_init(|| agave_telemetry::metrics::histogram("replay.chunk_decode_ns"))
        .record(ns);
}

/// Decodes a records-chunk payload into `out`, via the branchless
/// [`decode_records`] fast path shared with the buffered reader.
pub(crate) fn decode_record_chunk(
    payload: &[u8],
    chunk_start: u64,
    out: &mut Vec<Reference>,
) -> Result<DecodeTotals, TraceError> {
    let corrupt = |what: &str| TraceError::corrupt(chunk_start, what.to_owned());
    let mut pos = 0;
    let count = get_varint(payload, &mut pos).ok_or_else(|| corrupt("bad record count"))?;
    // Every record costs at least one payload byte, so a count beyond
    // the payload length is damage — reject before reserving memory.
    if count > payload.len() as u64 {
        return Err(corrupt("record count exceeds chunk size"));
    }
    let totals =
        decode_records(payload, &mut pos, count, out).ok_or_else(|| corrupt("malformed record"))?;
    if pos != payload.len() {
        return Err(corrupt("record chunk has leftover bytes"));
    }
    Ok(totals)
}

pub(crate) struct Footer {
    pub(crate) directory: NameDirectory,
    pub(crate) baseline: CounterSnapshot,
    pub(crate) total_records: u64,
    pub(crate) total_words: u64,
}

/// Parses the directory footer payload.
pub(crate) fn parse_footer(payload: &[u8], chunk_start: u64) -> Result<Footer, TraceError> {
    let corrupt = |what: &str| TraceError::corrupt(chunk_start, format!("footer: {what}"));
    let mut pos = 0;
    let uint = |pos: &mut usize, what: &str| get_varint(payload, pos).ok_or_else(|| corrupt(what));
    // Every table entry costs at least one payload byte, so any count
    // beyond the payload length is damage — reject before reserving.
    let counted = |v: u64, what: &str| {
        if v > payload.len() as u64 {
            Err(corrupt(what))
        } else {
            Ok(v)
        }
    };

    let name_count = counted(uint(&mut pos, "name count")?, "implausible name count")?;
    let mut names: Vec<String> = Vec::with_capacity(name_count as usize);
    for _ in 0..name_count {
        let len = uint(&mut pos, "name length")? as usize;
        let bytes = payload
            .get(pos..pos + len)
            .ok_or_else(|| corrupt("name bytes"))?;
        pos += len;
        names.push(String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("name is not UTF-8"))?);
    }

    let id = |v: u64, what: &str| -> Result<NameId, TraceError> {
        if v < name_count {
            Ok(NameId::from_raw(v as u32))
        } else {
            Err(corrupt(what))
        }
    };
    let proc_count = counted(
        uint(&mut pos, "process count")?,
        "implausible process count",
    )?;
    let mut proc_names = Vec::with_capacity(proc_count as usize);
    for _ in 0..proc_count {
        let v = uint(&mut pos, "process name id")?;
        proc_names.push(id(v, "process name id out of range")?);
    }

    let thread_count = counted(uint(&mut pos, "thread count")?, "implausible thread count")?;
    let mut threads = Vec::with_capacity(thread_count as usize);
    for _ in 0..thread_count {
        let pid = uint(&mut pos, "thread pid")?;
        if pid >= proc_count {
            return Err(corrupt("thread pid out of range"));
        }
        let name = id(
            uint(&mut pos, "thread name id")?,
            "thread name id out of range",
        )?;
        let canonical = id(
            uint(&mut pos, "thread canonical id")?,
            "thread canonical id out of range",
        )?;
        threads.push(ThreadRecord {
            pid: Pid::from_raw(pid as u32),
            name,
            canonical,
        });
    }

    let baseline_count = counted(
        uint(&mut pos, "baseline count")?,
        "implausible baseline count",
    )?;
    let mut entries = Vec::with_capacity(baseline_count as usize);
    for _ in 0..baseline_count {
        let tid = uint(&mut pos, "baseline tid")?;
        if tid >= thread_count {
            return Err(corrupt("baseline tid out of range"));
        }
        let region = id(
            uint(&mut pos, "baseline region")?,
            "baseline region out of range",
        )?;
        let mut counts = [0u64; 3];
        for c in &mut counts {
            *c = uint(&mut pos, "baseline counter")?;
        }
        entries.push(SnapshotEntry {
            tid: Tid::from_raw(tid as u32),
            region,
            counts,
        });
    }

    let total_records = uint(&mut pos, "total record count")?;
    let total_words = uint(&mut pos, "total word count")?;
    if pos != payload.len() {
        return Err(corrupt("leftover bytes"));
    }
    Ok(Footer {
        directory: NameDirectory::from_parts(names.iter().map(String::as_str), proc_names, threads),
        baseline: CounterSnapshot { entries },
        total_records,
        total_words,
    })
}

/// `read_exact` with truncation mapped to a descriptive [`TraceError`].
fn read_exact_at<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: u64,
    what: &str,
) -> Result<(), TraceError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::corrupt(offset, format!("truncated while reading {what}"))
        } else {
            TraceError::Io(e)
        }
    })
}

/// Reads one varint byte-by-byte from a stream, advancing `*offset`.
fn read_varint<R: Read>(input: &mut R, offset: &mut u64, what: &str) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let mut byte = [0u8; 1];
        read_exact_at(input, &mut byte, *offset, what)?;
        *offset += 1;
        let byte = byte[0];
        if shift == 9 && byte > 0x01 {
            return Err(TraceError::corrupt(
                *offset,
                format!("overlong varint in {what}"),
            ));
        }
        v |= u64::from(byte & 0x7f) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceError::corrupt(
        *offset,
        format!("overlong varint in {what}"),
    ))
}
