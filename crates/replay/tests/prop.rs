//! Property tests for the `.agtrace` codec layer, driven by a seeded
//! XorShift64 generator (no external property-testing crate — the
//! workspace is offline by design).
//!
//! Each test runs thousands of randomized cases mixed with deliberate
//! boundary values (`0`, `u64::MAX`, varint byte-width edges), so a
//! regression in varint, zigzag, or record delta coding fails loudly and
//! reproducibly: every assertion carries the seed that produced it.

use agave_replay::codec::{decode_records, get_varint, put_varint, unzigzag, zigzag, CoderState};
use agave_trace::{NameId, Pid, RefKind, Reference, Tid};

/// The classic xorshift64 generator — deterministic, seedable, and more
/// than random enough to exercise codec branches.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A u64 with a uniformly random *bit width* — small values are as
    /// likely as huge ones, so every varint length gets exercised.
    fn next_spread(&mut self) -> u64 {
        let bits = self.next() % 65;
        if bits == 0 {
            0
        } else {
            self.next() >> (64 - bits)
        }
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Hand-picked values sitting on every varint length boundary plus the
/// u64 extremes the zigzag-delta path must round-trip.
const BOUNDARY: &[u64] = &[
    0,
    1,
    0x7f,
    0x80,
    0x3fff,
    0x4000,
    0x001f_ffff,
    0x0020_0000,
    u32::MAX as u64,
    u32::MAX as u64 + 1,
    i64::MAX as u64,
    i64::MAX as u64 + 1,
    u64::MAX - 1,
    u64::MAX,
];

#[test]
fn varint_round_trips_random_and_boundary_values() {
    let mut rng = XorShift64::new(0x5eed_0001);
    let mut values: Vec<u64> = BOUNDARY.to_vec();
    values.extend((0..10_000).map(|_| rng.next_spread()));

    let mut buf = Vec::new();
    for &v in &values {
        put_varint(&mut buf, v);
    }
    let mut pos = 0;
    for &v in &values {
        assert_eq!(get_varint(&buf, &mut pos), Some(v), "value {v:#x}");
    }
    assert_eq!(
        pos,
        buf.len(),
        "decoder must consume exactly what was written"
    );
}

#[test]
fn varint_decode_never_reads_past_truncation() {
    let mut rng = XorShift64::new(0x5eed_0002);
    for _ in 0..2_000 {
        let v = rng.next_spread();
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        // Every proper prefix must decode to None without panicking.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                get_varint(&buf[..cut], &mut pos),
                None,
                "prefix of len {cut} for {v:#x} must be rejected"
            );
        }
    }
}

#[test]
fn zigzag_round_trips_random_and_boundary_values() {
    let mut rng = XorShift64::new(0x5eed_0003);
    for &v in BOUNDARY {
        // Every u64 is some zigzag output; unzigzag∘zigzag must be id.
        assert_eq!(zigzag(unzigzag(v)), v, "u64 {v:#x}");
    }
    for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
        assert_eq!(unzigzag(zigzag(v)), v, "i64 {v}");
    }
    for _ in 0..10_000 {
        let v = rng.next_spread() as i64;
        assert_eq!(unzigzag(zigzag(v)), v, "i64 {v}");
    }
}

/// Generates a stream shaped like real tracer output — runs of one
/// `(pid, tid, region)` key, frequent exact-continuation addresses —
/// salted with adversarial jumps to and from `u64` boundary addresses.
fn random_stream(rng: &mut XorShift64, len: usize) -> Vec<Reference> {
    let mut refs = Vec::with_capacity(len);
    let (mut pid, mut tid, mut region) = (1u32, 1u32, 0u32);
    let mut next_addr = 0x4000_0000u64;
    for _ in 0..len {
        if rng.chance(15) {
            pid = (rng.next() % 40) as u32;
            tid = (rng.next() % 200) as u32;
            region = (rng.next() % 30) as u32;
        }
        let addr = if rng.chance(60) {
            next_addr
        } else if rng.chance(10) {
            BOUNDARY[(rng.next() as usize) % BOUNDARY.len()]
        } else {
            rng.next_spread()
        };
        let words = if rng.chance(40) {
            1
        } else if rng.chance(5) {
            rng.next_spread()
        } else {
            1 + rng.next() % 64
        };
        let kind = match rng.next() % 3 {
            0 => RefKind::InstrFetch,
            1 => RefKind::DataRead,
            _ => RefKind::DataWrite,
        };
        next_addr = addr.wrapping_add(words.wrapping_mul(4));
        refs.push(Reference {
            pid: Pid::from_raw(pid),
            tid: Tid::from_raw(tid),
            region: NameId::from_raw(region),
            kind,
            addr,
            words,
        });
    }
    refs
}

#[test]
fn record_coding_round_trips_randomized_streams() {
    for seed in 1..=25u64 {
        let mut rng = XorShift64::new(0x5eed_1000 + seed);
        let refs = random_stream(&mut rng, 2_000);
        let mut buf = Vec::new();
        let mut enc = CoderState::new();
        for r in &refs {
            enc.encode(r, &mut buf);
        }
        let mut dec = CoderState::new();
        let mut pos = 0;
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(
                dec.decode(&buf, &mut pos).as_ref(),
                Some(r),
                "seed {seed}, record {i}"
            );
        }
        assert_eq!(pos, buf.len(), "seed {seed}: trailing bytes after decode");
    }
}

/// Scalar reference decode: `count` records via the old byte-at-a-time
/// [`CoderState::decode`] path, with totals gathered per record — the
/// semantics the branchless [`decode_records`] path must reproduce.
#[allow(clippy::type_complexity)]
fn scalar_decode(payload: &[u8], count: usize) -> Option<(Vec<Reference>, usize, u64, u64, u64)> {
    let mut dec = CoderState::new();
    let mut pos = 0;
    let mut out = Vec::new();
    let (mut words, mut max_tid, mut max_region) = (0u64, 0u64, 0u64);
    for _ in 0..count {
        let r = dec.decode(payload, &mut pos)?;
        words = words.wrapping_add(r.words);
        max_tid = max_tid.max(u64::from(r.tid.as_u32()));
        max_region = max_region.max(r.region.index() as u64);
        out.push(r);
    }
    Some((out, pos, words, max_tid, max_region))
}

#[test]
fn branchless_decoder_matches_scalar_on_random_streams() {
    for seed in 1..=25u64 {
        let mut rng = XorShift64::new(0x5eed_3000 + seed);
        let refs = random_stream(&mut rng, 2_000);
        let mut buf = Vec::new();
        let mut enc = CoderState::new();
        for r in &refs {
            enc.encode(r, &mut buf);
        }
        let (scalar, scalar_pos, words, max_tid, max_region) =
            scalar_decode(&buf, refs.len()).expect("valid stream must decode");
        let mut fast = Vec::new();
        let mut fast_pos = 0;
        let totals = decode_records(&buf, &mut fast_pos, refs.len() as u64, &mut fast)
            .expect("valid stream must decode on the fast path");
        assert_eq!(fast, scalar, "seed {seed}: records diverge");
        assert_eq!(fast, refs, "seed {seed}: decode does not round-trip");
        assert_eq!(fast_pos, scalar_pos, "seed {seed}: consumed bytes diverge");
        assert_eq!(totals.words, words, "seed {seed}");
        assert_eq!(totals.max_tid, max_tid, "seed {seed}");
        assert_eq!(totals.max_region, max_region, "seed {seed}");
    }
}

#[test]
fn branchless_decoder_rejects_exactly_what_scalar_rejects() {
    // Random single-byte corruption and truncation: the two decoders
    // must agree on accept/reject for every mutated payload (accepted
    // payloads must also yield identical records — corruption the codec
    // cannot detect must at least be deterministic).
    for seed in 1..=10u64 {
        let mut rng = XorShift64::new(0x5eed_4000 + seed);
        let refs = random_stream(&mut rng, 256);
        let mut buf = Vec::new();
        let mut enc = CoderState::new();
        for r in &refs {
            enc.encode(r, &mut buf);
        }
        for _ in 0..200 {
            let mut mutated = buf.clone();
            if rng.chance(50) {
                let i = (rng.next() as usize) % mutated.len();
                mutated[i] ^= (rng.next() % 255 + 1) as u8;
            } else {
                mutated.truncate((rng.next() as usize) % mutated.len());
            }
            let scalar = scalar_decode(&mutated, refs.len());
            let mut fast = Vec::new();
            let mut fast_pos = 0;
            let totals = decode_records(&mutated, &mut fast_pos, refs.len() as u64, &mut fast);
            match (&scalar, &totals) {
                (None, None) => {}
                (Some((records, pos, words, _, _)), Some(t)) => {
                    assert_eq!(&fast, records, "seed {seed}: accepted records diverge");
                    assert_eq!(fast_pos, *pos, "seed {seed}: consumed bytes diverge");
                    assert_eq!(t.words, *words, "seed {seed}: word totals diverge");
                }
                _ => panic!(
                    "seed {seed}: decoders disagree on accept/reject \
                     (scalar={}, fast={})",
                    scalar.is_some(),
                    totals.is_some()
                ),
            }
        }
    }
}

#[test]
fn record_decoding_rejects_every_truncation_point() {
    let mut rng = XorShift64::new(0x5eed_2000);
    let refs = random_stream(&mut rng, 64);
    let mut buf = Vec::new();
    let mut enc = CoderState::new();
    for r in &refs {
        enc.encode(r, &mut buf);
    }
    // Decoding a truncated buffer must stop with None exactly at (or
    // before) the cut — never panic, never fabricate a record beyond it.
    for cut in 0..buf.len() {
        let mut dec = CoderState::new();
        let mut pos = 0;
        let mut decoded = 0usize;
        while pos < cut {
            match dec.decode(&buf[..cut], &mut pos) {
                Some(_) => decoded += 1,
                None => break,
            }
        }
        assert!(
            decoded <= refs.len(),
            "cut {cut}: decoded more records than were encoded"
        );
        assert!(pos <= cut, "cut {cut}: decoder read past the truncation");
    }
}
