//! Integration tests for the kernel engine: dispatch, timers, charging
//! attribution, cross-thread calls, file I/O and process lifecycle.

use agave_kernel::{Actor, Ctx, Kernel, Message, Perms, TICKS_PER_MS};

// Re-export check: Perms should come through the mem re-export path.
use agave_mem::Addr;

mod util {
    use super::*;

    /// Actor that counts messages and optionally does charged work.
    pub struct Worker {
        pub fetches_per_msg: u64,
        pub handled: u64,
    }

    impl Actor for Worker {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            if self.fetches_per_msg > 0 {
                cx.op(self.fetches_per_msg);
            }
            self.handled += 1;
        }
    }
}

#[test]
fn kernel_boots_with_swapper_and_ata() {
    let kernel = Kernel::new();
    assert_eq!(kernel.process_count(), 2);
    let (swapper_pid, _) = kernel.swapper();
    let (ata_pid, _) = kernel.ata();
    assert_eq!(kernel.process(swapper_pid).name(), "swapper");
    assert_eq!(kernel.process(ata_pid).name(), "ata_sff/0");
}

#[test]
fn messages_charge_to_the_right_process_and_region() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(
        pid,
        "main",
        Box::new(util::Worker {
            fetches_per_msg: 123,
            handled: 0,
        }),
    );
    kernel.send(tid, Message::new(1));
    kernel.send(tid, Message::new(2));
    kernel.run_to_idle();
    let s = kernel.tracer().summarize("t");
    // Default code region for user processes is `app binary`.
    assert_eq!(s.instr_by_region["app binary"], 246);
    assert_eq!(s.instr_by_process["bench"], 246);
}

#[test]
fn timers_fire_in_order_and_advance_time() {
    struct Recorder(Vec<(u64, i64)>);
    impl Actor for Recorder {
        fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
            self.0.push((cx.now(), msg.arg1));
            if msg.arg1 == 2 {
                // Report back through the tracer-visible side channel:
                // charge arg-many fetches so the test can observe order.
                cx.op(self.0.len() as u64);
            }
        }
    }
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(pid, "main", Box::new(Recorder(Vec::new())));
    kernel.send_after(5 * TICKS_PER_MS, tid, Message::new(1).arg1(2));
    kernel.send_after(TICKS_PER_MS, tid, Message::new(1).arg1(1));
    kernel.run_to_idle();
    assert!(kernel.now() >= 5 * TICKS_PER_MS);
    // Both fired; the later (arg1 == 2) message ran second and saw both.
    let s = kernel.tracer().summarize("t");
    assert_eq!(s.instr_by_process.get("bench").copied(), Some(2));
}

#[test]
fn idle_time_is_charged_to_swapper() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(
        pid,
        "main",
        Box::new(util::Worker {
            fetches_per_msg: 0,
            handled: 0,
        }),
    );
    kernel.send_after(100 * TICKS_PER_MS, tid, Message::new(1));
    kernel.run_to_idle();
    let s = kernel.tracer().summarize("t");
    let swapper = s.instr_by_process.get("swapper").copied().unwrap_or(0);
    assert!(swapper > 0, "swapper idle charge missing: {s:?}");
}

#[test]
fn run_until_respects_deadline_when_idle() {
    let mut kernel = Kernel::new();
    kernel.run_until(42 * TICKS_PER_MS);
    assert_eq!(kernel.now(), 42 * TICKS_PER_MS);
}

#[test]
fn call_thread_charges_target_context() {
    struct Server;
    impl Actor for Server {
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
        fn on_call(&mut self, cx: &mut Ctx<'_>, code: u32, data: &[u8]) -> Vec<u8> {
            cx.op(1_000); // server-side work
            let mut reply = data.to_vec();
            reply.push(code as u8);
            reply
        }
    }
    struct Client {
        server: agave_kernel::Tid,
    }
    impl Actor for Client {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let reply = cx.call_thread(self.server, 7, &[1, 2]);
            assert_eq!(reply, vec![1, 2, 7]);
            cx.op(10); // client-side work
        }
    }

    let mut kernel = Kernel::new();
    let server_pid = kernel.spawn_process("system_server");
    let server_tid = kernel.spawn_thread(server_pid, "Binder Thread #1", Box::new(Server));
    let client_pid = kernel.spawn_process("benchmark");
    let client_tid =
        kernel.spawn_thread(client_pid, "main", Box::new(Client { server: server_tid }));
    kernel.send(client_tid, Message::new(0));
    kernel.run_to_idle();

    let s = kernel.tracer().summarize("t");
    assert_eq!(s.instr_by_process["system_server"], 1_000);
    assert_eq!(s.instr_by_process["benchmark"], 10);
    // Binder pool threads canonicalize for Table I.
    assert_eq!(s.refs_by_thread["Binder Thread"], 1_000);
}

#[test]
fn fs_read_bills_ata_for_cold_pages_only() {
    struct Reader;
    impl Actor for Reader {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let mut buf = vec![0u8; 8192];
            let n = cx.fs_read("/data/file", 0, &mut buf);
            assert_eq!(n, 8192);
            // Second read hits the page cache.
            let n = cx.fs_read("/data/file", 0, &mut buf);
            assert_eq!(n, 8192);
        }
    }
    let mut kernel = Kernel::new();
    kernel.vfs_mut().add_file("/data/file", 16 * 1024, 9);
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(pid, "main", Box::new(Reader));
    kernel.send(tid, Message::new(0));
    kernel.run_to_idle();
    assert_eq!(kernel.io_pages(), 2); // two 4 KiB pages, each missed once
    let s = kernel.tracer().summarize("t");
    assert!(s.instr_by_process["ata_sff/0"] > 0);
    assert!(s.data_by_process["ata_sff/0"] > 0);
}

#[test]
fn fork_inherits_memory_contents() {
    let mut kernel = Kernel::new();
    let zygote = kernel.spawn_process("zygote");
    let name = kernel.intern_region("preloaded-classes");
    let addr = {
        let proc = kernel.process_mut(zygote);
        let addr = proc.space.mmap(4096, name, Perms::RW);
        proc.space.write_u32(addr, 0xfeed_f00d);
        addr
    };
    let child = kernel.fork_process(zygote, "benchmark");
    assert_eq!(kernel.process(child).space.read_u32(addr), 0xfeed_f00d);
    // Writes in the child do not affect the parent.
    kernel.process_mut(child).space.write_u32(addr, 1);
    assert_eq!(kernel.process(zygote).space.read_u32(addr), 0xfeed_f00d);
}

#[test]
fn exit_thread_drops_pending_messages() {
    struct OneShot;
    impl Actor for OneShot {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            cx.op(1);
            cx.exit_thread();
        }
    }
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(pid, "main", Box::new(OneShot));
    kernel.send(tid, Message::new(1));
    kernel.send(tid, Message::new(2));
    kernel.send(tid, Message::new(3));
    kernel.run_to_idle();
    let s = kernel.tracer().summarize("t");
    assert_eq!(s.instr_by_process["bench"], 1);
    assert!(!kernel.thread(tid).is_alive());
}

#[test]
fn memcpy_attributes_reads_and_writes_to_distinct_regions() {
    struct Copier;
    impl Actor for Copier {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let src_name = cx.intern_region("src-region");
            let dst_name = cx.intern_region("dst-region");
            let src = cx.mmap_region(4096, src_name, Perms::RW);
            let dst = cx.mmap_region(4096, dst_name, Perms::RW);
            cx.write_buf(src, &[7u8; 1024]);
            cx.memcpy(dst, src, 1024);
            assert_eq!(cx.load_u8(dst + 1023u64), 7);
        }
    }
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(pid, "main", Box::new(Copier));
    kernel.send(tid, Message::new(0));
    kernel.run_to_idle();
    let s = kernel.tracer().summarize("t");
    // 256 word reads from src (memcpy), 256+256 word writes to dst+src setup.
    assert_eq!(s.data_by_region["src-region"], 256 + 256);
    assert_eq!(s.data_by_region["dst-region"], 256 + 1);
}

#[test]
fn shm_copy_moves_real_bytes_and_charges_both_sides() {
    struct Compositor;
    impl Actor for Compositor {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let wk = cx.well_known();
            let gralloc = cx.shm_create(wk.gralloc, 4096);
            let fb = cx.shm_create(wk.fb0, 4096);
            cx.shm_fill(gralloc, 0, 4096, 0x2a);
            cx.shm_copy(fb, 0, gralloc, 0, 4096);
            let mut check = [0u8; 8];
            cx.shm_read(fb, 100, &mut check);
            assert_eq!(check, [0x2a; 8]);
        }
    }
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("system_server");
    let tid = kernel.spawn_thread(pid, "SurfaceFlinger", Box::new(Compositor));
    kernel.send(tid, Message::new(0));
    kernel.run_to_idle();
    let s = kernel.tracer().summarize("t");
    assert!(s.data_by_region["gralloc-buffer"] >= 2048);
    assert!(s.data_by_region["fb0 (frame buffer)"] >= 1024);
    assert!(s.refs_by_thread.keys().any(|k| k == "SurfaceFlinger"));
}

#[test]
fn time_advances_with_charged_references() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(
        pid,
        "main",
        Box::new(util::Worker {
            fetches_per_msg: 5_000,
            handled: 0,
        }),
    );
    let before = kernel.now();
    kernel.send(tid, Message::new(0));
    kernel.run_to_idle();
    assert!(kernel.now() >= before + 5_000);
}

#[test]
fn stacks_are_mapped_per_thread() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let t1 = kernel.spawn_thread(
        pid,
        "main",
        Box::new(util::Worker {
            fetches_per_msg: 0,
            handled: 0,
        }),
    );
    let t2 = kernel.spawn_thread(
        pid,
        "Thread-1",
        Box::new(util::Worker {
            fetches_per_msg: 0,
            handled: 0,
        }),
    );
    assert_ne!(t1, t2);
    let stacks = kernel
        .process(pid)
        .space
        .vmas()
        .filter(|v| kernel.tracer().resolve(v.name()) == "stack")
        .count();
    assert_eq!(stacks, 2);
    let _ = Addr::NULL; // keep the import honest
}

#[test]
fn fs_write_round_trips_and_bills_writeback() {
    struct Writer;
    impl Actor for Writer {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            cx.fs_write("/data/state.bin", 0, b"checkpoint-1");
            let mut buf = [0u8; 12];
            assert_eq!(cx.fs_read("/data/state.bin", 0, &mut buf), 12);
            assert_eq!(&buf, b"checkpoint-1");
            // Overwrite part of it.
            cx.fs_write("/data/state.bin", 11, b"2");
            let mut buf = [0u8; 12];
            cx.fs_read("/data/state.bin", 0, &mut buf);
            assert_eq!(&buf, b"checkpoint-2");
        }
    }
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let tid = kernel.spawn_thread(pid, "main", Box::new(Writer));
    kernel.send(tid, Message::new(0));
    kernel.run_to_idle();
    let s = kernel.tracer().summarize("t");
    // The write was billed to the file's region and the storage thread.
    assert!(s.data_by_region.contains_key("/data/state.bin"));
    assert!(s.data_by_process["ata_sff/0"] > 0);
}

#[test]
fn cpu_ticks_accumulate_per_thread() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    let busy = kernel.spawn_thread(
        pid,
        "busy",
        Box::new(util::Worker {
            fetches_per_msg: 5_000,
            handled: 0,
        }),
    );
    let idle = kernel.spawn_thread(
        pid,
        "idle",
        Box::new(util::Worker {
            fetches_per_msg: 0,
            handled: 0,
        }),
    );
    kernel.send(busy, Message::new(0));
    kernel.send(idle, Message::new(0));
    kernel.run_to_idle();
    assert_eq!(kernel.thread(busy).cpu_ticks(), 5_000);
    assert_eq!(kernel.thread(idle).cpu_ticks(), 0);
}

#[test]
fn proc_maps_render_like_linux() {
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("bench");
    kernel.map_lib(pid, "libc.so", 64 * 1024, 8 * 1024);
    // Resolve names through the tracer (cloned to Strings first to avoid
    // borrowing the kernel twice).
    let names: Vec<(agave_kernel::NameId, String)> = kernel
        .process(pid)
        .space
        .vmas()
        .map(|v| (v.name(), kernel.tracer().resolve(v.name()).to_owned()))
        .collect();
    let maps = kernel.process(pid).space.render_maps(|id| {
        names
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, s)| s.clone())
            .unwrap_or_default()
    });
    assert!(maps.contains("r-xp app binary"), "{maps}");
    assert!(maps.contains("r-xp libc.so"), "{maps}");
    assert!(maps.contains("rw-p libc.so"), "{maps}");
    // Lines look like "00008000-00088000 r-xp app binary".
    assert!(maps.lines().all(|l| l.contains('-') && l.len() > 20));
}
